//! A dense fixed-capacity bit set used by the dataflow analyses.

/// A dense bit set over `0..capacity`.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for `capacity` elements.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Removes every element of `other` from `self`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// The number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(5);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 69]);
    }

    #[test]
    fn subtract_and_clear() {
        let mut a = BitSet::new(10);
        for i in 0..10 {
            a.insert(i);
        }
        let mut b = BitSet::new(10);
        b.insert(3);
        b.insert(7);
        a.subtract(&b);
        assert!(!a.contains(3) && !a.contains(7) && a.contains(4));
        assert_eq!(a.len(), 8);
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }

    #[test]
    fn iter_order_is_increasing() {
        let mut s = BitSet::new(200);
        for i in [199, 0, 63, 64, 128] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut s = BitSet::new(4);
        s.insert(2);
        assert_eq!(format!("{s:?}"), "{2}");
    }
}
