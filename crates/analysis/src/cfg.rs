//! CFG orderings, dominators, and natural loops.

use ccra_ir::{BlockId, EntityVec, Function};

/// Reverse postorder of the blocks reachable from the entry.
///
/// Unreachable blocks are omitted; every analysis in this crate treats them
/// as dead.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.num_blocks();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    let entry = f.entry();
    visited[entry.index()] = true;
    stack.push((entry, f.successors(entry).collect(), 0));
    while let Some((bb, succs, i)) = stack.last_mut() {
        if let Some(&next) = succs.get(*i) {
            *i += 1;
            if !visited[next.index()] {
                visited[next.index()] = true;
                stack.push((next, f.successors(next).collect(), 0));
            }
        } else {
            postorder.push(*bb);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// The dominator tree of a function, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block; the entry's idom is itself, and
    /// unreachable blocks have `None`.
    idom: EntityVec<BlockId, Option<BlockId>>,
    rpo_index: EntityVec<BlockId, Option<u32>>,
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Computes the dominator tree.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let mut rpo_index: EntityVec<BlockId, Option<u32>> = f.block_ids().map(|_| None).collect();
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_index[bb] = Some(i as u32);
        }
        let preds = f.predecessors();
        let mut idom: EntityVec<BlockId, Option<BlockId>> = f.block_ids().map(|_| None).collect();
        let entry = f.entry();
        idom[entry] = Some(entry);

        let intersect = |idom: &EntityVec<BlockId, Option<BlockId>>,
                         rpo_index: &EntityVec<BlockId, Option<u32>>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while rpo_index[a].unwrap() > rpo_index[b].unwrap() {
                    a = idom[a].unwrap();
                }
                while rpo_index[b].unwrap() > rpo_index[a].unwrap() {
                    b = idom[b].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[bb] {
                    if idom[p].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[bb] != new_idom {
                    idom[bb] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree {
            idom,
            rpo_index,
            rpo,
        }
    }

    /// The immediate dominator of `bb` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        match self.idom[bb] {
            Some(d) if d != bb => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b].is_none() || self.rpo_index[a].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index[bb].is_some()
    }

    /// The reverse postorder used for the computation.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

/// The natural-loop nesting structure of a function.
///
/// Loops are discovered from back edges `latch -> header` where the header
/// dominates the latch; irreducible flow (which our builders never produce)
/// would simply not be recognised as a loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    depth: EntityVec<BlockId, u32>,
    headers: Vec<BlockId>,
}

impl LoopInfo {
    /// Computes loop nesting depths for every block.
    pub fn compute(f: &Function, dom: &DomTree) -> Self {
        let preds = f.predecessors();
        let mut depth: EntityVec<BlockId, u32> = f.block_ids().map(|_| 0).collect();
        let mut headers = Vec::new();
        // For each back edge, walk the natural loop body backwards from the
        // latch and bump every member's depth.
        for (bb, block) in f.blocks() {
            if !dom.is_reachable(bb) {
                continue;
            }
            for succ in block.term.successors() {
                if dom.dominates(succ, bb) {
                    // bb -> succ is a back edge; succ is the header.
                    if !headers.contains(&succ) {
                        headers.push(succ);
                    }
                    let header = succ;
                    let mut body = vec![header];
                    let mut stack = vec![bb];
                    while let Some(x) = stack.pop() {
                        if body.contains(&x) {
                            continue;
                        }
                        body.push(x);
                        for &p in &preds[x] {
                            if dom.is_reachable(p) {
                                stack.push(p);
                            }
                        }
                    }
                    for member in body {
                        depth[member] += 1;
                    }
                }
            }
        }
        LoopInfo { depth, headers }
    }

    /// The loop nesting depth of a block (0 = outside any loop).
    pub fn depth(&self, bb: BlockId) -> u32 {
        self.depth[bb]
    }

    /// All loop headers found.
    pub fn headers(&self) -> &[BlockId] {
        &self.headers
    }

    /// The maximum loop depth in the function.
    pub fn max_depth(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::{CmpOp, FunctionBuilder, RegClass};

    /// entry -> head -> (body -> head | exit)
    fn single_loop() -> Function {
        let mut b = FunctionBuilder::new("loop");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 10);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(ccra_ir::BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = single_loop();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn dominators_of_loop() {
        let f = single_loop();
        let dom = DomTree::compute(&f);
        let entry = f.entry();
        let head = BlockId(1);
        let body = BlockId(2);
        let exit = BlockId(3);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(head), Some(entry));
        assert_eq!(dom.idom(body), Some(head));
        assert_eq!(dom.idom(exit), Some(head));
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(head, body));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(body, body));
    }

    #[test]
    fn loop_depths() {
        let f = single_loop();
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.depth(f.entry()), 0);
        assert_eq!(li.depth(BlockId(1)), 1); // header
        assert_eq!(li.depth(BlockId(2)), 1); // body
        assert_eq!(li.depth(BlockId(3)), 0); // exit
        assert_eq!(li.headers(), &[BlockId(1)]);
        assert_eq!(li.max_depth(), 1);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let mut b = FunctionBuilder::new("nest");
        let c = b.new_vreg(RegClass::Int);
        b.iconst(c, 1);
        let h1 = b.reserve_block();
        let h2 = b.reserve_block();
        let l2 = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(h1);
        b.switch_to(h1);
        b.branch(c, h2, exit);
        b.switch_to(h2);
        b.branch(c, l2, h1);
        b.switch_to(l2);
        b.jump(h2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 0);
        assert_eq!(li.max_depth(), 2);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("straight");
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dom);
        assert_eq!(li.max_depth(), 0);
        assert!(li.headers().is_empty());
    }

    #[test]
    fn unreachable_block_handled() {
        let mut b = FunctionBuilder::new("unreach");
        let dead = b.reserve_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let dom = DomTree::compute(&f);
        assert!(dom.is_reachable(f.entry()));
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(dead, f.entry()));
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 1);
    }
}
