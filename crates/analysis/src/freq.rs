//! Execution-frequency information — the weights of every cost function.
//!
//! The paper evaluates every allocator under two weightings: *static*
//! (compiler estimates from loop structure) and *dynamic* (profiles). Both
//! are represented as a [`FrequencyInfo`]: absolute per-block execution
//! counts plus per-function invocation counts.

use ccra_ir::{BlockId, Callee, EntityVec, FuncId, Function, Inst, Program};

use crate::cfg::{DomTree, LoopInfo};
use crate::interp::{run, InterpConfig, InterpError};

/// How the frequencies were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqMode {
    /// Compiler estimates: loop depth × branch probabilities.
    Static,
    /// Profile counts from actually executing the program.
    Dynamic,
}

impl std::fmt::Display for FreqMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqMode::Static => write!(f, "static"),
            FreqMode::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// Frequencies for one function.
#[derive(Debug, Clone)]
pub struct FuncFreq {
    /// How many times the function is entered over the whole run.
    pub invocations: f64,
    /// Absolute execution count of each block.
    pub block_freq: EntityVec<BlockId, f64>,
}

impl FuncFreq {
    /// The frequency of the block, i.e. of every instruction in it.
    pub fn block(&self, bb: BlockId) -> f64 {
        self.block_freq[bb]
    }
}

/// Whole-program execution frequencies.
#[derive(Debug, Clone)]
pub struct FrequencyInfo {
    mode: FreqMode,
    funcs: EntityVec<FuncId, FuncFreq>,
}

/// Estimated iterations per loop level for static estimates (the classic
/// "a loop runs 10 times" heuristic).
const LOOP_MULTIPLIER: f64 = 10.0;
/// Cap for invocation estimates in (mutually) recursive programs.
const INVOCATION_CAP: f64 = 1e12;

/// Relative per-block frequencies for one function (entry = 1.0):
/// forward propagation on the acyclic CFG with even branch splits and a
/// ×10 boost at every loop header.
fn relative_freqs(f: &Function) -> EntityVec<BlockId, f64> {
    let dom = DomTree::compute(f);
    let loops = LoopInfo::compute(f, &dom);
    let rpo = dom.rpo().to_vec();
    let preds = f.predecessors();

    let mut rel: EntityVec<BlockId, f64> = f.block_ids().map(|_| 0.0).collect();
    for &bb in &rpo {
        let mut incoming = 0.0;
        for &p in &preds[bb] {
            if !dom.is_reachable(p) || dom.dominates(bb, p) {
                continue; // skip back edges (p is inside bb's loop)
            }
            let nsucc = f.successors(p).count().max(1) as f64;
            incoming += rel[p] / nsucc;
        }
        if bb == f.entry() {
            incoming = 1.0;
        }
        if loops.headers().contains(&bb) {
            incoming *= LOOP_MULTIPLIER;
        }
        rel[bb] = incoming;
    }
    rel
}

impl FrequencyInfo {
    /// Static estimates: relative block frequencies from loop structure,
    /// scaled by estimated function invocation counts propagated over the
    /// call graph from `main` (1 invocation).
    pub fn estimate(program: &Program) -> Self {
        let rels: EntityVec<FuncId, EntityVec<BlockId, f64>> = program
            .functions()
            .map(|(_, f)| relative_freqs(f))
            .collect();

        // Relative call-site weight per (caller, callee).
        let mut call_weights: Vec<(FuncId, FuncId, f64)> = Vec::new();
        for (caller, f) in program.functions() {
            for (bb, block) in f.blocks() {
                for inst in &block.insts {
                    if let Inst::Call {
                        callee: Callee::Internal(target),
                        ..
                    } = inst
                    {
                        call_weights.push((caller, *target, rels[caller][bb]));
                    }
                }
            }
        }

        // Fixpoint propagation of invocation counts (bounded for recursion).
        let mut inv: EntityVec<FuncId, f64> = program.func_ids().map(|_| 0.0).collect();
        if let Some(main) = program.main() {
            inv[main] = 1.0;
        }
        for _ in 0..program.num_functions().max(4) {
            let mut next: EntityVec<FuncId, f64> = program.func_ids().map(|_| 0.0).collect();
            if let Some(main) = program.main() {
                next[main] = 1.0;
            }
            for &(caller, callee, w) in &call_weights {
                next[callee] = (next[callee] + inv[caller] * w).min(INVOCATION_CAP);
            }
            if program
                .func_ids()
                .all(|id| (next[id] - inv[id]).abs() <= 1e-9 * inv[id].abs().max(1.0))
            {
                inv = next;
                break;
            }
            inv = next;
        }

        let funcs = program
            .func_ids()
            .map(|id| FuncFreq {
                invocations: inv[id],
                block_freq: rels[id].iter().map(|(_, &r)| r * inv[id]).collect(),
            })
            .collect();
        FrequencyInfo {
            mode: FreqMode::Static,
            funcs,
        }
    }

    /// Dynamic profile: executes the program and uses the observed counts.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] if the program cannot be executed.
    pub fn profile(program: &Program) -> Result<Self, InterpError> {
        Self::profile_with(program, &InterpConfig::default())
    }

    /// Like [`FrequencyInfo::profile`] with explicit interpreter limits.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] if the program cannot be executed.
    pub fn profile_with(program: &Program, config: &InterpConfig) -> Result<Self, InterpError> {
        let stats = run(program, config)?;
        let funcs = program
            .func_ids()
            .map(|id| FuncFreq {
                invocations: stats.entry_counts[id] as f64,
                block_freq: stats.block_counts[id]
                    .iter()
                    .map(|(_, &c)| c as f64)
                    .collect(),
            })
            .collect();
        Ok(FrequencyInfo {
            mode: FreqMode::Dynamic,
            funcs,
        })
    }

    /// How the frequencies were obtained.
    pub fn mode(&self) -> FreqMode {
        self.mode
    }

    /// The frequencies of one function.
    pub fn func(&self, id: FuncId) -> &FuncFreq {
        &self.funcs[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::{BinOp, CmpOp, FunctionBuilder, Program, RegClass};

    fn loop_program(trip: i64) -> (Program, FuncId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("main");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, trip);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        (p, id, head, body)
    }

    #[test]
    fn static_loop_estimate_is_times_ten() {
        let (p, id, head, body) = loop_program(10);
        let fi = FrequencyInfo::estimate(&p);
        assert_eq!(fi.mode(), FreqMode::Static);
        let ff = fi.func(id);
        assert_eq!(ff.invocations, 1.0);
        assert!((ff.block(head) - 10.0).abs() < 1e-9);
        // body gets half of head's outflow (even branch split) — the
        // estimate is deliberately rough; it must just be loop-scaled.
        assert!(ff.block(body) > 1.0);
    }

    #[test]
    fn dynamic_profile_matches_execution() {
        let (p, id, head, body) = loop_program(25);
        let fi = FrequencyInfo::profile(&p).unwrap();
        assert_eq!(fi.mode(), FreqMode::Dynamic);
        let ff = fi.func(id);
        assert_eq!(ff.invocations, 1.0);
        assert_eq!(ff.block(head), 26.0);
        assert_eq!(ff.block(body), 25.0);
    }

    #[test]
    fn invocations_propagate_through_call_graph() {
        // main calls leaf inside a loop: static invocation estimate for
        // leaf should be ≈ the loop frequency of the call block.
        let mut p = Program::new();
        let mut leaf = FunctionBuilder::new("leaf");
        let a = leaf.new_vreg(RegClass::Int);
        leaf.set_params(vec![a]);
        leaf.ret(Some(a));
        let leaf_id = p.add_function(leaf.finish());

        let mut b = FunctionBuilder::new("main");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 5);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::Internal(leaf_id), vec![i], Some(r));
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let main_id = p.add_function(b.finish());
        p.set_main(main_id);

        let fi = FrequencyInfo::estimate(&p);
        let leaf_inv = fi.func(leaf_id).invocations;
        assert!(leaf_inv > 1.0, "leaf called from a loop: {leaf_inv}");

        let dyn_fi = FrequencyInfo::profile(&p).unwrap();
        assert_eq!(dyn_fi.func(leaf_id).invocations, 5.0);
    }

    #[test]
    fn branch_split_halves_flow() {
        let mut b = FunctionBuilder::new("main");
        let c = b.new_vreg(RegClass::Int);
        b.iconst(c, 1);
        let t = b.reserve_block();
        let e = b.reserve_block();
        let j = b.reserve_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let fi = FrequencyInfo::estimate(&p);
        let ff = fi.func(id);
        assert!((ff.block(t) - 0.5).abs() < 1e-9);
        assert!((ff.block(e) - 0.5).abs() < 1e-9);
        assert!((ff.block(j) - 1.0).abs() < 1e-9);
    }
}
