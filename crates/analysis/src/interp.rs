//! A deterministic IR interpreter: the profiler and the overhead meter.
//!
//! The interpreter plays two roles in the reproduction:
//!
//! 1. **Profiling** — executing a program yields per-block execution counts,
//!    the "dynamic information" of the paper's experiments (the paper used
//!    SPEC profiles; we run the synthetic programs themselves).
//! 2. **Measuring** — after register allocation rewrites a function with
//!    explicit [`ccra_ir::Inst::Overhead`] markers, re-running the program
//!    *counts* the overhead operations that the allocator's cost functions
//!    only *estimated*.

use ccra_ir::{
    BinOp, BlockId, Callee, CmpOp, EntityVec, FuncId, Inst, OverheadKind, Program, Terminator,
    UnOp, VReg,
};

/// A runtime value: one machine word of either bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// An integer-bank value.
    Int(i64),
    /// A float-bank value.
    Float(f64),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float (the verifier rules this out for
    /// well-formed programs).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(v) => panic!("expected float value, found int {v}"),
        }
    }
}

/// Interpreter limits.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// Maximum executed instructions before aborting.
    pub step_limit: u64,
    /// Data-memory size in words; addresses wrap modulo this size.
    pub mem_words: usize,
    /// Maximum call depth.
    pub call_depth_limit: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            step_limit: 200_000_000,
            mem_words: 1 << 16,
            call_depth_limit: 512,
        }
    }
}

/// An execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The step limit was exceeded.
    StepLimit,
    /// The call-depth limit was exceeded.
    CallDepth,
    /// A register was read before any write.
    UndefinedRead {
        /// The function in which the read happened.
        func: String,
        /// The register read.
        vreg: VReg,
    },
    /// The program has no main function.
    NoMain,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::CallDepth => write!(f, "call depth limit exceeded"),
            InterpError::UndefinedRead { func, vreg } => {
                write!(f, "read of undefined register {vreg} in `{func}`")
            }
            InterpError::NoMain => write!(f, "program has no main function"),
        }
    }
}

impl std::error::Error for InterpError {}

/// What a run observed.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Executed useful (non-overhead) instructions, terminators included.
    pub steps: u64,
    /// Executed overhead operations, indexed by
    /// [`OverheadKind::ALL`] order (spill, caller-save, callee-save,
    /// shuffle).
    pub overhead_ops: [u64; 4],
    /// Per-function, per-block execution counts.
    pub block_counts: EntityVec<FuncId, EntityVec<BlockId, u64>>,
    /// Per-function invocation counts.
    pub entry_counts: EntityVec<FuncId, u64>,
    /// The value returned by `main`, if any.
    pub result: Option<Value>,
}

impl RunStats {
    /// Total executed overhead operations across all kinds.
    pub fn total_overhead(&self) -> u64 {
        self.overhead_ops.iter().sum()
    }

    /// Executed overhead operations of one kind.
    pub fn overhead(&self, kind: OverheadKind) -> u64 {
        let idx = OverheadKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.overhead_ops[idx]
    }
}

struct Machine<'p> {
    program: &'p Program,
    config: InterpConfig,
    memory: Vec<i64>,
    steps: u64,
    overhead_ops: [u64; 4],
    block_counts: EntityVec<FuncId, EntityVec<BlockId, u64>>,
    entry_counts: EntityVec<FuncId, u64>,
}

/// A cheap deterministic mixer for external-call results.
fn mix(seed: u64, x: u64) -> u64 {
    let mut h = seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h
}

impl<'p> Machine<'p> {
    fn addr(&self, base: i64, offset: i64) -> usize {
        let m = self.config.mem_words as i64;
        (((base.wrapping_add(offset)) % m + m) % m) as usize
    }

    fn call(
        &mut self,
        func: FuncId,
        args: &[Value],
        depth: usize,
    ) -> Result<Option<Value>, InterpError> {
        if depth > self.config.call_depth_limit {
            return Err(InterpError::CallDepth);
        }
        let f = self.program.function(func);
        self.entry_counts[func] += 1;
        let mut regs: Vec<Option<Value>> = vec![None; f.num_vregs()];
        let mut slots: Vec<Option<Value>> = vec![None; f.num_spill_slots() as usize];
        for (i, &p) in f.params().iter().enumerate() {
            let v = args.get(i).copied().unwrap_or(match f.class_of(p) {
                ccra_ir::RegClass::Int => Value::Int(i as i64 + 1),
                ccra_ir::RegClass::Float => Value::Float(i as f64 + 1.0),
            });
            regs[p.index()] = Some(v);
        }

        let read = |regs: &Vec<Option<Value>>, v: VReg| -> Result<Value, InterpError> {
            regs[v.index()].ok_or_else(|| InterpError::UndefinedRead {
                func: f.name().to_string(),
                vreg: v,
            })
        };

        let mut bb = f.entry();
        loop {
            self.block_counts[func][bb] += 1;
            let block = f.block(bb);
            for inst in &block.insts {
                match inst {
                    Inst::Overhead { kind, ops } => {
                        let idx = OverheadKind::ALL.iter().position(|k| k == kind).unwrap();
                        self.overhead_ops[idx] += *ops as u64;
                        continue;
                    }
                    Inst::SpillStore { slot, src } => {
                        slots[slot.index()] = Some(read(&regs, *src)?);
                        self.overhead_ops[0] += 1; // OverheadKind::Spill
                        continue;
                    }
                    Inst::SpillLoad { dst, slot } => {
                        regs[dst.index()] = Some(slots[slot.index()].unwrap_or_else(|| {
                            panic!("spill load from never-written {slot} in `{}`", f.name())
                        }));
                        self.overhead_ops[0] += 1; // OverheadKind::Spill
                        continue;
                    }
                    _ => {
                        self.steps += 1;
                        if self.steps > self.config.step_limit {
                            return Err(InterpError::StepLimit);
                        }
                    }
                }
                match inst {
                    Inst::IConst { dst, value } => regs[dst.index()] = Some(Value::Int(*value)),
                    Inst::FConst { dst, value } => regs[dst.index()] = Some(Value::Float(*value)),
                    Inst::Binary { op, dst, lhs, rhs } => {
                        let result = if op.is_float() {
                            let (a, b) =
                                (read(&regs, *lhs)?.as_float(), read(&regs, *rhs)?.as_float());
                            Value::Float(match op {
                                BinOp::FAdd => a + b,
                                BinOp::FSub => a - b,
                                BinOp::FMul => a * b,
                                BinOp::FDiv => {
                                    if b == 0.0 {
                                        0.0
                                    } else {
                                        a / b
                                    }
                                }
                                _ => unreachable!(),
                            })
                        } else {
                            let (a, b) = (read(&regs, *lhs)?.as_int(), read(&regs, *rhs)?.as_int());
                            Value::Int(match op {
                                BinOp::Add => a.wrapping_add(b),
                                BinOp::Sub => a.wrapping_sub(b),
                                BinOp::Mul => a.wrapping_mul(b),
                                BinOp::Div => {
                                    if b == 0 {
                                        0
                                    } else {
                                        a.wrapping_div(b)
                                    }
                                }
                                BinOp::Rem => {
                                    if b == 0 {
                                        0
                                    } else {
                                        a.wrapping_rem(b)
                                    }
                                }
                                BinOp::And => a & b,
                                BinOp::Or => a | b,
                                BinOp::Xor => a ^ b,
                                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                                _ => unreachable!(),
                            })
                        };
                        regs[dst.index()] = Some(result);
                    }
                    Inst::Unary { op, dst, src } => {
                        let v = read(&regs, *src)?;
                        let result = match op {
                            UnOp::Neg => Value::Int(v.as_int().wrapping_neg()),
                            UnOp::Not => Value::Int(!v.as_int()),
                            UnOp::FNeg => Value::Float(-v.as_float()),
                            UnOp::IntToFloat => Value::Float(v.as_int() as f64),
                            UnOp::FloatToInt => Value::Int(v.as_float() as i64),
                        };
                        regs[dst.index()] = Some(result);
                    }
                    Inst::Cmp { op, dst, lhs, rhs } => {
                        let (a, b) = (read(&regs, *lhs)?.as_int(), read(&regs, *rhs)?.as_int());
                        let r = match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                        };
                        regs[dst.index()] = Some(Value::Int(r as i64));
                    }
                    Inst::Load { dst, addr, offset } => {
                        let a = self.addr(read(&regs, *addr)?.as_int(), *offset);
                        let word = self.memory[a];
                        regs[dst.index()] = Some(match f.class_of(*dst) {
                            ccra_ir::RegClass::Int => Value::Int(word),
                            ccra_ir::RegClass::Float => Value::Float(f64::from_bits(word as u64)),
                        });
                    }
                    Inst::Store { src, addr, offset } => {
                        let a = self.addr(read(&regs, *addr)?.as_int(), *offset);
                        self.memory[a] = match read(&regs, *src)? {
                            Value::Int(v) => v,
                            Value::Float(v) => v.to_bits() as i64,
                        };
                    }
                    Inst::Copy { dst, src } => {
                        regs[dst.index()] = Some(read(&regs, *src)?);
                    }
                    Inst::Call { callee, args, ret } => {
                        let mut vals = Vec::with_capacity(args.len());
                        for &a in args {
                            vals.push(read(&regs, a)?);
                        }
                        let result = match callee {
                            Callee::Internal(id) => self.call(*id, &vals, depth + 1)?,
                            Callee::External(name) => {
                                // Deterministic pseudo-function of the
                                // arguments and the name.
                                let mut h = name
                                    .bytes()
                                    .fold(0xcbf2_9ce4_8422_2325u64, |acc, b| mix(acc, b as u64));
                                for v in &vals {
                                    h = mix(
                                        h,
                                        match v {
                                            Value::Int(x) => *x as u64,
                                            Value::Float(x) => x.to_bits(),
                                        },
                                    );
                                }
                                ret.map(|r| match f.class_of(r) {
                                    ccra_ir::RegClass::Int => Value::Int((h % 1_000_003) as i64),
                                    ccra_ir::RegClass::Float => {
                                        Value::Float((h % 1_000_003) as f64 / 997.0)
                                    }
                                })
                            }
                        };
                        if let Some(r) = ret {
                            regs[r.index()] = result.or(Some(match f.class_of(*r) {
                                ccra_ir::RegClass::Int => Value::Int(0),
                                ccra_ir::RegClass::Float => Value::Float(0.0),
                            }));
                        }
                    }
                    Inst::Overhead { .. } | Inst::SpillStore { .. } | Inst::SpillLoad { .. } => {
                        unreachable!("handled above")
                    }
                }
            }
            self.steps += 1;
            if self.steps > self.config.step_limit {
                return Err(InterpError::StepLimit);
            }
            match &block.term {
                Terminator::Jump(t) => bb = *t,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    bb = if read(&regs, *cond)?.as_int() != 0 {
                        *then_bb
                    } else {
                        *else_bb
                    };
                }
                Terminator::Return(v) => {
                    return Ok(match v {
                        Some(v) => Some(read(&regs, *v)?),
                        None => None,
                    });
                }
            }
        }
    }
}

/// Executes `program` from its main function.
///
/// # Errors
///
/// Returns an [`InterpError`] if the program has no main, exceeds a limit,
/// or reads an undefined register.
pub fn run(program: &Program, config: &InterpConfig) -> Result<RunStats, InterpError> {
    let main = program.main().ok_or(InterpError::NoMain)?;
    let mut machine = Machine {
        program,
        config: *config,
        memory: vec![0; config.mem_words],
        steps: 0,
        overhead_ops: [0; 4],
        block_counts: program
            .functions()
            .map(|(_, f)| f.block_ids().map(|_| 0u64).collect())
            .collect(),
        entry_counts: program.func_ids().map(|_| 0u64).collect(),
    };
    let result = machine.call(main, &[], 0)?;
    Ok(RunStats {
        steps: machine.steps,
        overhead_ops: machine.overhead_ops,
        block_counts: machine.block_counts,
        entry_counts: machine.entry_counts,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::{FunctionBuilder, Program, RegClass};

    fn run_main(f: ccra_ir::Function) -> RunStats {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        run(&p, &InterpConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, 6);
        b.iconst(y, 7);
        b.binary(BinOp::Mul, x, x, y);
        b.ret(Some(x));
        let stats = run_main(b.finish());
        assert_eq!(stats.result, Some(Value::Int(42)));
        assert_eq!(stats.steps, 4); // 3 insts + 1 terminator
    }

    #[test]
    fn counted_loop_executes_n_times() {
        let mut b = FunctionBuilder::new("main");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 10);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let stats = run(&p, &InterpConfig::default()).unwrap();
        assert_eq!(stats.result, Some(Value::Int(10)));
        assert_eq!(stats.block_counts[id][head], 11);
        assert_eq!(stats.block_counts[id][body], 10);
        assert_eq!(stats.block_counts[id][exit], 1);
        assert_eq!(stats.entry_counts[id], 1);
    }

    #[test]
    fn internal_calls_are_counted() {
        let mut p = Program::new();
        let mut leaf = FunctionBuilder::new("leaf");
        let a = leaf.new_vreg(RegClass::Int);
        let r = leaf.new_vreg(RegClass::Int);
        leaf.set_params(vec![a]);
        leaf.binary(BinOp::Add, r, a, a);
        leaf.ret(Some(r));
        let leaf_id = p.add_function(leaf.finish());

        let mut main = FunctionBuilder::new("main");
        let x = main.new_vreg(RegClass::Int);
        let y = main.new_vreg(RegClass::Int);
        main.iconst(x, 21);
        main.call(Callee::Internal(leaf_id), vec![x], Some(y));
        main.ret(Some(y));
        let main_id = p.add_function(main.finish());
        p.set_main(main_id);

        let stats = run(&p, &InterpConfig::default()).unwrap();
        assert_eq!(stats.result, Some(Value::Int(42)));
        assert_eq!(stats.entry_counts[leaf_id], 1);
        assert_eq!(stats.entry_counts[main_id], 1);
    }

    #[test]
    fn external_calls_are_deterministic() {
        let build = || {
            let mut b = FunctionBuilder::new("main");
            let x = b.new_vreg(RegClass::Int);
            let r = b.new_vreg(RegClass::Int);
            b.iconst(x, 5);
            b.call(Callee::External("magic"), vec![x], Some(r));
            b.ret(Some(r));
            b.finish()
        };
        let a = run_main(build()).result;
        let b = run_main(build()).result;
        assert_eq!(a, b);
        assert!(matches!(a, Some(Value::Int(_))));
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = FunctionBuilder::new("main");
        let addr = b.new_vreg(RegClass::Int);
        let v = b.new_vreg(RegClass::Float);
        let out = b.new_vreg(RegClass::Float);
        b.iconst(addr, 100);
        b.fconst(v, 2.5);
        b.store(v, addr, 4);
        b.load(out, addr, 4);
        b.ret(Some(out));
        let stats = run_main(b.finish());
        assert_eq!(stats.result, Some(Value::Float(2.5)));
    }

    #[test]
    fn overhead_markers_counted_not_stepped() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        // Hand-inserted overhead markers as the rewriter would emit.
        let f = {
            b.ret(Some(x));
            let mut f = b.finish();
            let entry = f.entry();
            f.block_mut(entry).insts.insert(
                1,
                Inst::Overhead {
                    kind: OverheadKind::Spill,
                    ops: 3,
                },
            );
            f.block_mut(entry).insts.insert(
                2,
                Inst::Overhead {
                    kind: OverheadKind::CalleeSave,
                    ops: 2,
                },
            );
            f
        };
        let stats = run_main(f);
        assert_eq!(stats.overhead(OverheadKind::Spill), 3);
        assert_eq!(stats.overhead(OverheadKind::CalleeSave), 2);
        assert_eq!(stats.overhead(OverheadKind::CallerSave), 0);
        assert_eq!(stats.total_overhead(), 5);
        assert_eq!(stats.steps, 2); // iconst + ret only
    }

    #[test]
    fn undefined_read_reported() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.ret(Some(x));
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let err = run(&p, &InterpConfig::default()).unwrap_err();
        assert!(matches!(err, InterpError::UndefinedRead { .. }));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = FunctionBuilder::new("main");
        let head = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        b.jump(head);
        let mut p = Program::new();
        let id = p.add_function(b.finish());
        p.set_main(id);
        let cfg = InterpConfig {
            step_limit: 1000,
            ..Default::default()
        };
        assert_eq!(run(&p, &cfg).unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn shift_amounts_are_masked() {
        // Shifting by ≥ 64 must not panic: amounts are taken modulo 64.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let s = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.iconst(s, 65); // 65 & 63 == 1
        b.binary(BinOp::Shl, x, x, s);
        b.ret(Some(x));
        assert_eq!(run_main(b.finish()).result, Some(Value::Int(2)));
    }

    #[test]
    fn negative_addresses_wrap_into_memory() {
        let mut b = FunctionBuilder::new("main");
        let addr = b.new_vreg(RegClass::Int);
        let v = b.new_vreg(RegClass::Int);
        let out = b.new_vreg(RegClass::Int);
        b.iconst(addr, -5);
        b.iconst(v, 99);
        b.store(v, addr, 0);
        b.load(out, addr, 0);
        b.ret(Some(out));
        assert_eq!(run_main(b.finish()).result, Some(Value::Int(99)));
    }

    #[test]
    fn float_int_conversions() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let f = b.new_vreg(RegClass::Float);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, -7);
        b.unary(UnOp::IntToFloat, f, x);
        b.binary(BinOp::FMul, f, f, f); // 49.0
        b.unary(UnOp::FloatToInt, y, f);
        b.ret(Some(y));
        assert_eq!(run_main(b.finish()).result, Some(Value::Int(49)));
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, i64::MAX);
        b.iconst(y, 1);
        b.binary(BinOp::Add, x, x, y); // wraps to i64::MIN
        b.binary(BinOp::Mul, x, x, x);
        b.unary(UnOp::Neg, x, x);
        b.ret(Some(x));
        assert!(matches!(run_main(b.finish()).result, Some(Value::Int(_))));
    }

    #[test]
    fn min_div_minus_one_wraps() {
        // i64::MIN / -1 overflows in Rust; the interpreter must wrap.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, i64::MIN);
        b.iconst(y, -1);
        b.binary(BinOp::Div, x, x, y);
        b.ret(Some(x));
        assert_eq!(run_main(b.finish()).result, Some(Value::Int(i64::MIN)));
    }

    #[test]
    fn call_depth_limit_enforced() {
        // A recursive function blows the depth limit rather than the stack.
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("rec");
        let a = b.new_vreg(RegClass::Int);
        b.set_params(vec![a]);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::Internal(ccra_ir::FuncId(0)), vec![a], Some(r));
        b.ret(Some(r));
        let id = p.add_function(b.finish());
        p.set_main(id);
        let cfg = InterpConfig {
            call_depth_limit: 32,
            ..Default::default()
        };
        assert_eq!(run(&p, &cfg).unwrap_err(), InterpError::CallDepth);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let z = b.new_vreg(RegClass::Int);
        b.iconst(x, 5);
        b.iconst(z, 0);
        b.binary(BinOp::Div, x, x, z);
        b.ret(Some(x));
        assert_eq!(run_main(b.finish()).result, Some(Value::Int(0)));
    }
}
