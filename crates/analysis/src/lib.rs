//! Program analyses for the call-cost register-allocation study.
//!
//! This crate supplies everything the allocators in `ccra-regalloc` consume:
//!
//! * [`mod@cfg`] — reverse postorder, dominators ([`DomTree`]), and natural
//!   loops ([`LoopInfo`]);
//! * [`Liveness`] — classic backward liveness over virtual registers;
//! * [`Webs`] — def-use webs, the live ranges of Chaitin-style allocation;
//! * [`FrequencyInfo`] — static (loop-based) or dynamic (profiled)
//!   execution frequencies, the weights of every benefit/cost function in
//!   the paper;
//! * [`interp`] — a deterministic interpreter used both as the profiler and
//!   as the post-allocation overhead meter.
//!
//! # Example
//!
//! ```
//! use ccra_ir::{FunctionBuilder, Program, RegClass};
//! use ccra_analysis::{FrequencyInfo, Liveness, Webs};
//!
//! let mut b = FunctionBuilder::new("main");
//! let x = b.new_vreg(RegClass::Int);
//! b.iconst(x, 3);
//! b.ret(Some(x));
//! let f = b.finish();
//!
//! let live = Liveness::compute(&f);
//! let webs = Webs::compute(&f);
//! assert_eq!(webs.len(), 1);
//! assert!(live.live_in(f.entry()).is_empty());
//!
//! let mut p = Program::new();
//! let id = p.add_function(f);
//! p.set_main(id);
//! let freq = FrequencyInfo::profile(&p)?;
//! assert_eq!(freq.func(id).invocations, 1.0);
//! # Ok::<(), ccra_analysis::InterpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod cfg;
mod freq;
pub mod interp;
mod liveness;
#[cfg(test)]
mod tests_props;
mod webs;

pub use bitset::BitSet;
pub use cfg::{reverse_postorder, DomTree, LoopInfo};
pub use freq::{FreqMode, FrequencyInfo, FuncFreq};
pub use interp::{run, InterpConfig, InterpError, RunStats, Value};
pub use liveness::Liveness;
pub use webs::{InstIdx, WebData, WebId, Webs};
