//! Backward liveness dataflow over virtual registers.

use crate::bitset::BitSet;
use ccra_ir::{BlockId, EntityVec, Function, VReg};

/// Per-block live-in/live-out sets of virtual registers.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: EntityVec<BlockId, BitSet>,
    live_out: EntityVec<BlockId, BitSet>,
    num_vregs: usize,
    iterations: u32,
}

impl Liveness {
    /// Computes liveness for a function with the classic backward fixpoint.
    pub fn compute(f: &Function) -> Self {
        let nv = f.num_vregs();
        let mut use_set: EntityVec<BlockId, BitSet> =
            f.block_ids().map(|_| BitSet::new(nv)).collect();
        let mut def_set: EntityVec<BlockId, BitSet> =
            f.block_ids().map(|_| BitSet::new(nv)).collect();

        let mut uses_buf = Vec::new();
        for (bb, block) in f.blocks() {
            let (us, ds) = (&mut use_set[bb], &mut def_set[bb]);
            for inst in &block.insts {
                uses_buf.clear();
                inst.collect_uses(&mut uses_buf);
                for &u in &uses_buf {
                    if !ds.contains(u.index()) {
                        us.insert(u.index());
                    }
                }
                if let Some(d) = inst.def() {
                    ds.insert(d.index());
                }
            }
            if let Some(u) = block.term.use_reg() {
                if !ds.contains(u.index()) {
                    us.insert(u.index());
                }
            }
        }

        let mut live_in: EntityVec<BlockId, BitSet> =
            f.block_ids().map(|_| BitSet::new(nv)).collect();
        let mut live_out: EntityVec<BlockId, BitSet> =
            f.block_ids().map(|_| BitSet::new(nv)).collect();

        // Iterate to fixpoint, visiting blocks in reverse id order (a decent
        // approximation of postorder for builder-generated CFGs).
        let ids: Vec<BlockId> = f.block_ids().collect();
        let mut changed = true;
        let mut iterations = 0u32;
        let mut out_buf = BitSet::new(nv);
        while changed {
            changed = false;
            iterations += 1;
            for &bb in ids.iter().rev() {
                out_buf.clear();
                for succ in f.successors(bb) {
                    out_buf.union_with(&live_in[succ]);
                }
                if out_buf != live_out[bb] {
                    live_out[bb] = out_buf.clone();
                }
                // in = use ∪ (out − def)
                let mut new_in = live_out[bb].clone();
                new_in.subtract(&def_set[bb]);
                new_in.union_with(&use_set[bb]);
                if new_in != live_in[bb] {
                    live_in[bb] = new_in;
                    changed = true;
                }
            }
        }

        Liveness {
            live_in,
            live_out,
            num_vregs: nv,
            iterations,
        }
    }

    /// How many sweeps the backward fixpoint took to converge (at least 1;
    /// the final sweep is the one that observes no change).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// The registers live on entry to `bb`.
    pub fn live_in(&self, bb: BlockId) -> &BitSet {
        &self.live_in[bb]
    }

    /// The registers live on exit from `bb`.
    pub fn live_out(&self, bb: BlockId) -> &BitSet {
        &self.live_out[bb]
    }

    /// Whether `v` is live on entry to `bb`.
    pub fn is_live_in(&self, bb: BlockId, v: VReg) -> bool {
        self.live_in[bb].contains(v.index())
    }

    /// Whether `v` is live on exit from `bb`.
    pub fn is_live_out(&self, bb: BlockId, v: VReg) -> bool {
        self.live_out[bb].contains(v.index())
    }

    /// The number of virtual registers this analysis covers.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, RegClass};

    #[test]
    fn straight_line_liveness() {
        // x = 1; y = x + x; ret y
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.binary(BinOp::Add, y, x, x);
        b.ret(Some(y));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        assert!(!lv.is_live_in(f.entry(), x));
        assert!(!lv.is_live_out(f.entry(), y));
        assert!(lv.live_in(f.entry()).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live_around_loop() {
        // acc is defined before the loop, updated in the body, used after.
        let mut b = FunctionBuilder::new("f");
        let acc = b.new_vreg(RegClass::Int);
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(acc, 0);
        b.iconst(i, 0);
        b.iconst(n, 10);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(BinOp::Add, acc, acc, i);
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // acc is live through head, body, and into exit.
        assert!(lv.is_live_in(head, acc));
        assert!(lv.is_live_out(head, acc));
        assert!(lv.is_live_in(body, acc));
        assert!(lv.is_live_in(exit, acc));
        // the condition is consumed by the branch, dead after head.
        assert!(!lv.is_live_out(head, c));
        // i is loop-carried too.
        assert!(lv.is_live_out(body, i));
    }

    #[test]
    fn call_args_and_results() {
        let mut b = FunctionBuilder::new("f");
        let a = b.new_vreg(RegClass::Int);
        let r = b.new_vreg(RegClass::Int);
        b.iconst(a, 3);
        b.call(Callee::External("g"), vec![a], Some(r));
        b.ret(Some(r));
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // Single block: nothing live at boundaries.
        assert!(lv.live_in(f.entry()).is_empty());
        assert!(lv.live_out(f.entry()).is_empty());
        assert_eq!(lv.num_vregs(), 2);
    }

    #[test]
    fn branch_condition_live_into_block_when_defined_earlier() {
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg(RegClass::Int);
        b.iconst(c, 1);
        let mid = b.reserve_block();
        let t = b.reserve_block();
        let e = b.reserve_block();
        b.jump(mid);
        b.switch_to(mid);
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        assert!(lv.is_live_in(mid, c));
        assert!(lv.is_live_out(f.entry(), c));
        assert!(!lv.is_live_in(t, c));
    }
}
