//! Property tests for [`crate::BitSet`] against a `HashSet` model.

#![cfg(test)]

use crate::BitSet;
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Clear,
}

fn op_strategy(cap: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..cap).prop_map(Op::Insert),
        4 => (0..cap).prop_map(Op::Remove),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    /// A BitSet behaves exactly like a HashSet under arbitrary operation
    /// sequences.
    #[test]
    fn bitset_matches_hashset(ops in proptest::collection::vec(op_strategy(200), 1..120)) {
        let mut bs = BitSet::new(200);
        let mut model: HashSet<usize> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(i) => {
                    prop_assert_eq!(bs.insert(i), model.insert(i));
                }
                Op::Remove(i) => {
                    prop_assert_eq!(bs.remove(i), model.remove(&i));
                }
                Op::Clear => {
                    bs.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(bs.len(), model.len());
            prop_assert_eq!(bs.is_empty(), model.is_empty());
        }
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_model.sort_unstable();
        from_bs.sort_unstable();
        prop_assert_eq!(from_bs, from_model);
    }

    /// Union matches the model and reports change correctly.
    #[test]
    fn union_matches_model(
        a in proptest::collection::hash_set(0usize..150, 0..60),
        b in proptest::collection::hash_set(0usize..150, 0..60),
    ) {
        let mut ba = BitSet::new(150);
        let mut bb = BitSet::new(150);
        for &i in &a { ba.insert(i); }
        for &i in &b { bb.insert(i); }
        let grows = !b.is_subset(&a);
        prop_assert_eq!(ba.union_with(&bb), grows);
        let union: HashSet<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(ba.iter().collect::<HashSet<_>>(), union);
    }

    /// Subtraction matches set difference.
    #[test]
    fn subtract_matches_model(
        a in proptest::collection::hash_set(0usize..150, 0..60),
        b in proptest::collection::hash_set(0usize..150, 0..60),
    ) {
        let mut ba = BitSet::new(150);
        let mut bb = BitSet::new(150);
        for &i in &a { ba.insert(i); }
        for &i in &b { bb.insert(i); }
        ba.subtract(&bb);
        let diff: HashSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(ba.iter().collect::<HashSet<_>>(), diff);
    }
}
