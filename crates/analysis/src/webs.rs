//! Def-use webs: the live-range construction of Chaitin-style allocators.
//!
//! A *web* groups together the defs and uses of a virtual register that must
//! share a storage location: a use belongs with every def that reaches it,
//! and defs reaching a common use are transitively merged. Webs are the unit
//! of register allocation — two disjoint lifetimes of the same virtual
//! register become two independently allocatable live ranges.

use std::collections::HashMap;

use crate::bitset::BitSet;
use ccra_ir::{BlockId, EntityVec, Function, VReg};

/// Identifies a live range (web) within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WebId(pub u32);

impl WebId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WebId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lr{}", self.0)
    }
}

/// A position inside a block: instruction index, or the terminator.
///
/// Terminators are represented as index `block.insts.len()`; [`Webs`] uses
/// plain `u32` indices with that convention.
pub type InstIdx = u32;

/// Per-web reference information.
#[derive(Debug, Clone)]
pub struct WebData {
    /// The virtual register this web belongs to.
    pub vreg: VReg,
    /// Instructions (deduplicated) that define the web.
    pub defs: Vec<(BlockId, InstIdx)>,
    /// Instructions (deduplicated) that use the web; the terminator counts
    /// as index `insts.len()`.
    pub uses: Vec<(BlockId, InstIdx)>,
    /// Whether this web is defined by a function parameter.
    pub is_param: bool,
}

impl WebData {
    fn new(vreg: VReg) -> Self {
        WebData {
            vreg,
            defs: Vec::new(),
            uses: Vec::new(),
            is_param: false,
        }
    }

    /// Total number of referencing instructions (defs + uses).
    pub fn ref_count(&self) -> usize {
        self.defs.len() + self.uses.len()
    }
}

/// The webs (live ranges) of one function.
#[derive(Debug, Clone)]
pub struct Webs {
    webs: Vec<WebData>,
    def_web: HashMap<(BlockId, InstIdx, VReg), WebId>,
    use_web: HashMap<(BlockId, InstIdx, VReg), WebId>,
    param_web: HashMap<VReg, WebId>,
    live_in_web: HashMap<(BlockId, VReg), WebId>,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

/// A def site of some vreg: a parameter, or an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DefSite {
    Param,
    Inst(BlockId, InstIdx),
}

impl Webs {
    /// Builds the webs of `f` using per-vreg reaching-definitions.
    pub fn compute(f: &Function) -> Self {
        // Enumerate all def sites globally so one union-find covers them.
        let mut defs_of: EntityVec<VReg, Vec<u32>> = f.vreg_ids().map(|_| Vec::new()).collect();
        let mut def_sites: Vec<(VReg, DefSite)> = Vec::new();
        for &p in f.params() {
            defs_of[p].push(def_sites.len() as u32);
            def_sites.push((p, DefSite::Param));
        }
        for (bb, block) in f.blocks() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    defs_of[d].push(def_sites.len() as u32);
                    def_sites.push((d, DefSite::Inst(bb, i as InstIdx)));
                }
            }
        }

        let mut uf = UnionFind::new(def_sites.len());
        // use site -> a representative def id (or None if undefined use)
        let mut use_reaching: HashMap<(BlockId, InstIdx, VReg), Option<u32>> = HashMap::new();
        // (block, vreg) -> representative def id reaching block entry
        let mut entry_reaching: HashMap<(BlockId, VReg), u32> = HashMap::new();

        let block_ids: Vec<BlockId> = f.block_ids().collect();
        let preds = f.predecessors();

        let mut uses_buf = Vec::new();
        for v in f.vreg_ids() {
            let my_defs = &defs_of[v];
            let nd = my_defs.len();
            // Map global def id -> local index for the bitset.
            let local_of: HashMap<u32, usize> =
                my_defs.iter().enumerate().map(|(i, &g)| (g, i)).collect();

            // Per-block gen/kill for this vreg: the *last* def in the block
            // wins; a block with any def kills everything incoming.
            let mut last_def: EntityVec<BlockId, Option<u32>> =
                f.block_ids().map(|_| None).collect();
            for &g in my_defs {
                if let (_, DefSite::Inst(bb, _)) = def_sites[g as usize] {
                    // Defs are enumerated in block order, so later wins.
                    last_def[bb] = Some(g);
                }
            }
            let param_def: Option<u32> = my_defs
                .iter()
                .copied()
                .find(|&g| matches!(def_sites[g as usize].1, DefSite::Param));

            let mut reach_in: EntityVec<BlockId, BitSet> =
                f.block_ids().map(|_| BitSet::new(nd)).collect();
            let mut reach_out: EntityVec<BlockId, BitSet> =
                f.block_ids().map(|_| BitSet::new(nd)).collect();

            // Seed: param def reaches entry's reach_in.
            if let Some(pd) = param_def {
                reach_in[f.entry()].insert(local_of[&pd]);
            }

            let mut changed = true;
            while changed {
                changed = false;
                for &bb in &block_ids {
                    let mut rin = reach_in[bb].clone();
                    for &p in &preds[bb] {
                        rin.union_with(&reach_out[p]);
                    }
                    if rin != reach_in[bb] {
                        reach_in[bb] = rin;
                    }
                    let rout = match last_def[bb] {
                        Some(g) => {
                            let mut s = BitSet::new(nd);
                            s.insert(local_of[&g]);
                            s
                        }
                        None => reach_in[bb].clone(),
                    };
                    if rout != reach_out[bb] {
                        reach_out[bb] = rout;
                        changed = true;
                    }
                }
            }

            // Record entry-reaching representative and resolve uses.
            for &bb in &block_ids {
                if let Some(local) = reach_in[bb].iter().next() {
                    entry_reaching.insert((bb, v), my_defs[local]);
                    // All defs reaching a block entry where v may be used
                    // downstream could belong together; they merge only via
                    // actual uses below.
                }
                // Walk the block tracking the current reaching set.
                let mut current: Vec<u32> = reach_in[bb].iter().map(|l| my_defs[l]).collect();
                let block = f.block(bb);
                for (i, inst) in block.insts.iter().enumerate() {
                    uses_buf.clear();
                    inst.collect_uses(&mut uses_buf);
                    if uses_buf.contains(&v) {
                        let rep = current.first().copied();
                        for w in current.windows(2) {
                            uf.union(w[0], w[1]);
                        }
                        use_reaching.insert((bb, i as InstIdx, v), rep);
                    }
                    if inst.def() == Some(v) {
                        if let Some(g) = my_defs
                            .iter()
                            .copied()
                            .find(|&g| def_sites[g as usize].1 == DefSite::Inst(bb, i as InstIdx))
                        {
                            current = vec![g];
                        }
                    }
                }
                if block.term.use_reg() == Some(v) {
                    let rep = current.first().copied();
                    for w in current.windows(2) {
                        uf.union(w[0], w[1]);
                    }
                    use_reaching.insert((bb, block.insts.len() as InstIdx, v), rep);
                }
            }
        }

        // Assign dense web ids to union-find roots (and to undefined uses).
        let mut web_of_root: HashMap<u32, WebId> = HashMap::new();
        let mut webs: Vec<WebData> = Vec::new();
        let mut def_web = HashMap::new();
        let mut use_web = HashMap::new();
        let mut param_web = HashMap::new();

        let mut web_for = |root: u32, vreg: VReg, webs: &mut Vec<WebData>| -> WebId {
            *web_of_root.entry(root).or_insert_with(|| {
                let id = WebId(webs.len() as u32);
                webs.push(WebData::new(vreg));
                id
            })
        };

        for (g, &(v, site)) in def_sites.iter().enumerate() {
            let root = uf.find(g as u32);
            let id = web_for(root, v, &mut webs);
            match site {
                DefSite::Param => {
                    webs[id.index()].is_param = true;
                    param_web.insert(v, id);
                }
                DefSite::Inst(bb, i) => {
                    if !webs[id.index()].defs.contains(&(bb, i)) {
                        webs[id.index()].defs.push((bb, i));
                    }
                    def_web.insert((bb, i, v), id);
                }
            }
        }
        // Site order, not hash order: fresh web ids are allocated inside
        // this loop, so its iteration order decides the WebId numbering —
        // and everything downstream (node ids, spill-slot numbering) keys
        // off that. Sorting keeps Webs::compute a pure function of the IR.
        let mut use_sites: Vec<((BlockId, InstIdx, VReg), Option<u32>)> =
            use_reaching.iter().map(|(&k, &r)| (k, r)).collect();
        use_sites.sort_unstable_by_key(|&((bb, i, v), _)| (bb, i, v));
        for ((bb, i, v), rep) in use_sites {
            let id = match rep {
                Some(g) => {
                    let root = uf.find(g);
                    web_for(root, v, &mut webs)
                }
                None => {
                    // Undefined use: give it a fresh singleton web.
                    let id = WebId(webs.len() as u32);
                    webs.push(WebData::new(v));
                    id
                }
            };
            if !webs[id.index()].uses.contains(&(bb, i)) {
                webs[id.index()].uses.push((bb, i));
            }
            use_web.insert((bb, i, v), id);
        }

        // Map entry-reaching defs to final web ids for live-in queries.
        let mut live_in_web = HashMap::new();
        for (&(bb, v), &g) in &entry_reaching {
            let root = uf.find(g);
            if let Some(&id) = web_of_root.get(&root) {
                live_in_web.insert((bb, v), id);
            }
        }

        Webs {
            webs,
            def_web,
            use_web,
            param_web,
            live_in_web,
        }
    }

    /// The number of webs.
    pub fn len(&self) -> usize {
        self.webs.len()
    }

    /// Whether there are no webs.
    pub fn is_empty(&self) -> bool {
        self.webs.is_empty()
    }

    /// Total def+use references across all webs — the size of the
    /// allocation problem, as self-profiling reports it.
    pub fn total_refs(&self) -> usize {
        self.webs.iter().map(WebData::ref_count).sum()
    }

    /// The data of web `id`.
    pub fn web(&self, id: WebId) -> &WebData {
        &self.webs[id.index()]
    }

    /// Iterates over `(id, data)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WebId, &WebData)> {
        self.webs
            .iter()
            .enumerate()
            .map(|(i, w)| (WebId(i as u32), w))
    }

    /// The web defined by instruction `(bb, idx)` writing `v`, if any.
    pub fn def_web(&self, bb: BlockId, idx: InstIdx, v: VReg) -> Option<WebId> {
        self.def_web.get(&(bb, idx, v)).copied()
    }

    /// The web read by instruction `(bb, idx)` (terminator = `insts.len()`)
    /// through register `v`, if any.
    pub fn use_web(&self, bb: BlockId, idx: InstIdx, v: VReg) -> Option<WebId> {
        self.use_web.get(&(bb, idx, v)).copied()
    }

    /// The web of parameter `v`, if `v` is a parameter.
    pub fn param_web(&self, v: VReg) -> Option<WebId> {
        self.param_web.get(&v).copied()
    }

    /// The web of `v` live on entry to `bb`, if a definition reaches there.
    pub fn live_in_web(&self, bb: BlockId, v: VReg) -> Option<WebId> {
        self.live_in_web.get(&(bb, v)).copied()
    }

    /// Remaps every recorded instruction index through `map(bb, old_idx)`.
    ///
    /// Used by incremental graph reconstruction after spill-code insertion
    /// shifts instructions within blocks. Terminator indices (recorded as
    /// the original block length) must be remapped to the new block length
    /// by the supplied function.
    pub fn remap_indices(&mut self, map: impl Fn(BlockId, InstIdx) -> InstIdx) {
        for web in &mut self.webs {
            for (bb, i) in web.defs.iter_mut().chain(web.uses.iter_mut()) {
                *i = map(*bb, *i);
            }
        }
        self.def_web = self
            .def_web
            .drain()
            .map(|((bb, i, v), w)| ((bb, map(bb, i), v), w))
            .collect();
        self.use_web = self
            .use_web
            .drain()
            .map(|((bb, i, v), w)| ((bb, map(bb, i), v), w))
            .collect();
    }

    /// Registers a synthetic single-reference web (a spill temporary) and
    /// returns its id. `site` uses the same `(block, index)` convention as
    /// the rest of the structure.
    pub fn add_synthetic(&mut self, vreg: VReg, site: (BlockId, InstIdx), is_def: bool) -> WebId {
        let id = WebId(self.webs.len() as u32);
        let mut data = WebData::new(vreg);
        if is_def {
            data.defs.push(site);
            self.def_web.insert((site.0, site.1, vreg), id);
        } else {
            data.uses.push(site);
            self.use_web.insert((site.0, site.1, vreg), id);
        }
        self.webs.push(data);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};

    #[test]
    fn disjoint_lifetimes_split_into_two_webs() {
        // v is used as two unrelated temporaries.
        let mut b = FunctionBuilder::new("f");
        let v = b.new_vreg(RegClass::Int);
        let s = b.new_vreg(RegClass::Int);
        b.iconst(v, 1); // def A
        b.copy(s, v); // use of A
        b.iconst(v, 2); // def B (kills A)
        b.binary(BinOp::Add, s, s, v); // use of B
        b.ret(Some(s));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let wa = webs.def_web(f.entry(), 0, v).unwrap();
        let wb = webs.def_web(f.entry(), 2, v).unwrap();
        assert_ne!(wa, wb, "disjoint lifetimes must be separate webs");
        assert_eq!(webs.use_web(f.entry(), 1, v), Some(wa));
        assert_eq!(webs.use_web(f.entry(), 3, v), Some(wb));
    }

    #[test]
    fn defs_merging_at_join_are_one_web() {
        // if (c) v = 1 else v = 2; use v  -> single web with two defs
        let mut b = FunctionBuilder::new("f");
        let c = b.new_vreg(RegClass::Int);
        let v = b.new_vreg(RegClass::Int);
        b.iconst(c, 1);
        let t = b.reserve_block();
        let e = b.reserve_block();
        let j = b.reserve_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.iconst(v, 1);
        b.jump(j);
        b.switch_to(e);
        b.iconst(v, 2);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(v));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let wt = webs.def_web(t, 0, v).unwrap();
        let we = webs.def_web(e, 0, v).unwrap();
        assert_eq!(wt, we, "defs joining at a common use are one web");
        assert_eq!(webs.use_web(j, 0, v), Some(wt));
        assert_eq!(webs.live_in_web(j, v), Some(wt));
    }

    #[test]
    fn params_are_defs() {
        let mut b = FunctionBuilder::new("f");
        let p = b.new_vreg(RegClass::Int);
        b.set_params(vec![p]);
        let r = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Add, r, p, p);
        b.ret(Some(r));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let pw = webs.param_web(p).unwrap();
        assert!(webs.web(pw).is_param);
        assert_eq!(webs.use_web(f.entry(), 0, p), Some(pw));
    }

    #[test]
    fn loop_carried_web_spans_loop() {
        let mut b = FunctionBuilder::new("f");
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 3);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(BinOp::Add, i, i, one); // def of i merges with initial def
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let init = webs.def_web(f.entry(), 0, i).unwrap();
        let upd = webs.def_web(body, 0, i).unwrap();
        assert_eq!(init, upd, "loop-carried variable is one web");
        assert_eq!(webs.live_in_web(head, i), Some(init));
        assert_eq!(webs.live_in_web(exit, i), Some(init));
        assert_eq!(webs.web(init).defs.len(), 2);
    }

    #[test]
    fn ref_counts_dedupe_per_instruction() {
        let mut b = FunctionBuilder::new("f");
        let v = b.new_vreg(RegClass::Int);
        let r = b.new_vreg(RegClass::Int);
        b.iconst(v, 2);
        b.binary(BinOp::Mul, r, v, v); // v used twice by one instruction
        b.ret(Some(r));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let w = webs.def_web(f.entry(), 0, v).unwrap();
        assert_eq!(webs.web(w).uses.len(), 1, "one referencing instruction");
        assert_eq!(webs.web(w).ref_count(), 2); // 1 def + 1 use
    }

    #[test]
    fn terminator_use_is_recorded() {
        let mut b = FunctionBuilder::new("f");
        let v = b.new_vreg(RegClass::Int);
        b.iconst(v, 9);
        b.ret(Some(v));
        let f = b.finish();
        let webs = Webs::compute(&f);
        let w = webs.def_web(f.entry(), 0, v).unwrap();
        // Terminator index = insts.len() = 1.
        assert_eq!(webs.use_web(f.entry(), 1, v), Some(w));
    }
}
