//! Allocator throughput: time one full `allocate_program` per allocator
//! family on representative workloads (call-heavy int, pressure-heavy FP).

use ccra_analysis::FrequencyInfo;
use ccra_bench::BENCH_SCALE;
use ccra_machine::RegisterFile;
use ccra_regalloc::{allocate_program, AllocatorConfig, PriorityOrdering};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocators");
    g.sample_size(20);
    let file = RegisterFile::new(9, 7, 3, 3);
    let configs = [
        ("base", AllocatorConfig::base()),
        ("improved", AllocatorConfig::improved()),
        ("optimistic", AllocatorConfig::optimistic()),
        (
            "priority",
            AllocatorConfig::priority(PriorityOrdering::Sorting),
        ),
        ("cbh", AllocatorConfig::cbh()),
    ];
    for prog in [SpecProgram::Sc, SpecProgram::Fpppp] {
        let ir = spec_program_scaled(prog, Scale(BENCH_SCALE));
        let freq = FrequencyInfo::profile(&ir).expect("workload runs");
        for (name, config) in &configs {
            g.bench_with_input(
                BenchmarkId::new(*name, prog.name()),
                &(&ir, &freq),
                |b, (ir, freq)| b.iter(|| allocate_program(ir, freq, file, config)),
            );
        }
    }
    g.finish();
}

fn bench_register_pressure_scaling(c: &mut Criterion) {
    // Allocation time vs register count: fewer registers mean more spill
    // rounds, so the sweep's left end is the expensive one.
    let mut g = c.benchmark_group("pressure_scaling");
    g.sample_size(20);
    let ir = spec_program_scaled(SpecProgram::Fpppp, Scale(BENCH_SCALE));
    let freq = FrequencyInfo::profile(&ir).expect("workload runs");
    for file in [
        RegisterFile::minimum(),
        RegisterFile::new(9, 7, 3, 3),
        RegisterFile::mips_full(),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(file), &file, |b, &file| {
            b.iter(|| allocate_program(&ir, &freq, file, &AllocatorConfig::improved()))
        });
    }
    g.finish();
}

fn bench_graph_reconstruction(c: &mut Criterion) {
    // Figure 1's graph-reconstruction phase is a compile-time optimization:
    // compare full rebuilds against incremental updates at moderate
    // pressure (a few spill rounds over a large function). At extreme
    // pressure the conservative temp edges cause extra spill rounds that
    // eat the per-round savings.
    let mut g = c.benchmark_group("reconstruction");
    g.sample_size(20);
    let ir = spec_program_scaled(SpecProgram::Fpppp, Scale(BENCH_SCALE));
    let freq = FrequencyInfo::profile(&ir).expect("workload runs");
    let file = RegisterFile::new(9, 7, 3, 3);
    g.bench_function("rebuild_each_round", |b| {
        b.iter(|| allocate_program(&ir, &freq, file, &AllocatorConfig::improved()))
    });
    g.bench_function("incremental_reconstruction", |b| {
        b.iter(|| {
            allocate_program(
                &ir,
                &freq,
                file,
                &AllocatorConfig::improved().with_reconstruction(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_allocators,
    bench_register_pressure_scaling,
    bench_graph_reconstruction
);
criterion_main!(benches);
