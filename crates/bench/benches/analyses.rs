//! Analysis-substrate micro-benchmarks: liveness, webs, context building
//! (interference + coalescing), frequency estimation, and profiling.

use ccra_analysis::{DomTree, FrequencyInfo, InterpConfig, Liveness, LoopInfo, Webs};
use ccra_bench::BENCH_SCALE;
use ccra_machine::CostModel;
use ccra_regalloc::build_context;
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_analyses(c: &mut Criterion) {
    let ir = spec_program_scaled(SpecProgram::Fpppp, Scale(BENCH_SCALE));
    // The biggest function (twoel) is the interesting one.
    let twoel = ir.function(ir.find("twoel").expect("fpppp has twoel"));
    let freq = FrequencyInfo::profile(&ir).expect("workload runs");
    let twoel_freq = freq.func(ir.find("twoel").unwrap());

    let mut g = c.benchmark_group("analyses");
    g.bench_function("liveness", |b| b.iter(|| Liveness::compute(twoel)));
    g.bench_function("webs", |b| b.iter(|| Webs::compute(twoel)));
    g.bench_function("dominators_loops", |b| {
        b.iter(|| {
            let dom = DomTree::compute(twoel);
            LoopInfo::compute(twoel, &dom)
        })
    });
    g.bench_function("build_context", |b| {
        b.iter(|| build_context(twoel, twoel_freq, &CostModel::paper()))
    });
    g.bench_function("static_frequency_estimate", |b| {
        b.iter(|| FrequencyInfo::estimate(&ir))
    });
    g.finish();

    let mut g = c.benchmark_group("profiling");
    g.sample_size(10);
    let small = spec_program_scaled(SpecProgram::Eqntott, Scale(0.05));
    g.bench_function("interpreter_profile", |b| {
        b.iter(|| ccra_analysis::run(&small, &InterpConfig::default()).expect("runs"))
    });
    g.finish();
}

criterion_group!(benches, bench_analyses);
criterion_main!(benches);
