//! One bench per paper table/figure: times the regeneration of each
//! experiment's full data series at a reduced workload scale. The printed
//! tables themselves come from the `ccra-eval` binaries
//! (`cargo run --release -p ccra-eval --bin fig2`, …).

use ccra_analysis::FreqMode;
use ccra_bench::BENCH_SCALE;
use ccra_eval::experiments::{ablations, fig10, fig11, fig2, fig6, fig7, fig9, tab2_tab3, tab4};
use ccra_workloads::{Scale, SpecProgram};
use criterion::{criterion_group, criterion_main, Criterion};

fn scale() -> Scale {
    Scale(BENCH_SCALE)
}

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("fig2_cost_components", |b| {
        b.iter(|| fig2::run_one(SpecProgram::Eqntott, scale()))
    });
    g.bench_function("fig6_improvement_combinations", |b| {
        b.iter(|| fig6::run_one(SpecProgram::Nasa7, FreqMode::Dynamic, scale()))
    });
    g.bench_function("fig7_improved_overhead", |b| {
        b.iter(|| fig7::run_one(SpecProgram::Ear, scale()))
    });
    g.bench_function("tab2_optimistic_static", |b| {
        b.iter(|| tab2_tab3::run_mode(FreqMode::Static, Scale(0.05)))
    });
    g.bench_function("tab3_optimistic_dynamic", |b| {
        b.iter(|| tab2_tab3::run_mode(FreqMode::Dynamic, Scale(0.05)))
    });
    g.bench_function("fig9_fpppp_optimistic", |b| {
        b.iter(|| fig9::run_one(SpecProgram::Fpppp, FreqMode::Static, scale()))
    });
    g.bench_function("fig10_priority_vs_improved", |b| {
        b.iter(|| fig10::run_one(SpecProgram::Alvinn, scale()))
    });
    g.bench_function("fig11_cbh_vs_improved", |b| {
        b.iter(|| fig11::run_one(SpecProgram::Matrix300, scale()))
    });
    g.bench_function("tab4_cycle_speedup", |b| {
        b.iter(|| tab4::speedup_percent(SpecProgram::Li, Scale(0.05)))
    });
    g.bench_function("ablation_priority_orderings", |b| {
        b.iter(|| ablations::priority_orderings(Scale(0.03)))
    });
    g.bench_function("ablation_callee_cost_models", |b| {
        b.iter(|| ablations::callee_cost_models(Scale(0.03)))
    });
    g.bench_function("ablation_bs_keys", |b| {
        b.iter(|| ablations::bs_keys(Scale(0.03)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
