//! Benchmark support for the call-cost register-allocation study.
//!
//! The Criterion benches live in `benches/`:
//!
//! * `experiments` — one bench per paper table/figure, timing the full
//!   regeneration of its data series at a reduced scale (the printed
//!   tables come from the `ccra-eval` binaries);
//! * `allocators` — allocator throughput on representative workloads;
//! * `analyses` — the analysis substrate (liveness, webs, interference
//!   construction, coalescing) on the largest workload functions.

/// A reduced workload scale that keeps benches brisk while exercising the
/// whole pipeline.
pub const BENCH_SCALE: f64 = 0.1;
