//! Workload loading and allocation helpers shared by all experiments.

use ccra_analysis::{FreqMode, FrequencyInfo};
use ccra_ir::Program;
use ccra_machine::RegisterFile;
use ccra_regalloc::{allocate_program, AllocatorConfig, Overhead};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};

/// A loaded workload: its IR plus both frequency weightings.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Which SPEC92-like program this is.
    pub program: SpecProgram,
    /// The IR.
    pub ir: Program,
    /// Static (loop-estimate) frequencies.
    pub static_freq: FrequencyInfo,
    /// Dynamic (profiled) frequencies.
    pub dynamic_freq: FrequencyInfo,
}

impl Bench {
    /// Builds and profiles a workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to execute — all shipped workloads
    /// terminate deterministically.
    pub fn load(program: SpecProgram, scale: Scale) -> Self {
        let ir = spec_program_scaled(program, scale);
        let static_freq = FrequencyInfo::estimate(&ir);
        let dynamic_freq = FrequencyInfo::profile(&ir)
            .unwrap_or_else(|e| panic!("{program} failed to profile: {e}"));
        Bench {
            program,
            ir,
            static_freq,
            dynamic_freq,
        }
    }

    /// The frequencies for a mode.
    pub fn freq(&self, mode: FreqMode) -> &FrequencyInfo {
        match mode {
            FreqMode::Static => &self.static_freq,
            FreqMode::Dynamic => &self.dynamic_freq,
        }
    }

    /// Allocates the whole program and returns the weighted overhead.
    pub fn overhead(
        &self,
        mode: FreqMode,
        file: RegisterFile,
        config: &AllocatorConfig,
    ) -> Overhead {
        allocate_program(&self.ir, self.freq(mode), file, config)
            .expect("benchmark programs allocate")
            .overhead
    }
}

/// Loads every workload at the given scale.
pub fn load_all(scale: Scale) -> Vec<Bench> {
    SpecProgram::ALL
        .iter()
        .map(|&p| Bench::load(p, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_allocate_one() {
        let bench = Bench::load(SpecProgram::Tomcatv, Scale(0.05));
        let file = RegisterFile::new(8, 6, 2, 2);
        let base = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::base());
        let improved = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved());
        // tomcatv has no calls: zero caller-save cost, and the only call
        // cost possible is the one-off entry/exit save of callee-save
        // registers in the once-invoked main (bounded by the bank size).
        assert_eq!(base.caller_save, 0.0);
        assert_eq!(improved.caller_save, 0.0);
        assert!(base.callee_save <= 2.0 * (2 + 2) as f64);
        assert!(improved.call_cost() <= base.call_cost());
    }

    #[test]
    fn static_and_dynamic_modes_differ() {
        let bench = Bench::load(SpecProgram::Fpppp, Scale(0.05));
        assert_eq!(bench.freq(FreqMode::Static).mode(), FreqMode::Static);
        assert_eq!(bench.freq(FreqMode::Dynamic).mode(), FreqMode::Dynamic);
    }

    #[test]
    fn load_all_covers_every_program() {
        let benches = load_all(Scale(0.02));
        assert_eq!(benches.len(), SpecProgram::ALL.len());
        for (bench, &prog) in benches.iter().zip(SpecProgram::ALL.iter()) {
            assert_eq!(bench.program, prog);
            assert!(bench.ir.verify().is_ok());
        }
    }
}
