//! Runs every experiment of the paper in sequence. Flags: `--scale <f64>`,
//! `--format text|csv|json|chart`.
fn main() {
    let scale = ccra_eval::scale_from_args();
    let format = ccra_eval::format_from_args();
    use ccra_eval::experiments::*;
    let mut tables = Vec::new();
    tables.extend(fig2::run(scale));
    tables.extend(fig6::run(scale));
    tables.extend(fig7::run(scale));
    tables.extend(tab2_tab3::run(scale));
    tables.extend(fig9::run(scale));
    tables.extend(fig10::run(scale));
    tables.extend(fig11::run(scale));
    tables.extend(tab4::run(scale));
    tables.push(ablations::priority_orderings(scale));
    tables.push(ablations::callee_cost_models(scale));
    tables.push(ablations::bs_keys(scale));
    ccra_eval::emit(&tables, format);
}
