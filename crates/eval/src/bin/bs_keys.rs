//! Ablation: the two benefit-driven simplification keys (§5).
fn main() {
    let t = ccra_eval::experiments::ablations::bs_keys(ccra_eval::scale_from_args());
    ccra_eval::emit(&[t], ccra_eval::format_from_args());
}
