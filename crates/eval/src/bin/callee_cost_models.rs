//! Ablation: first-user vs shared callee-save cost models (§4).
fn main() {
    let t = ccra_eval::experiments::ablations::callee_cost_models(ccra_eval::scale_from_args());
    ccra_eval::emit(&[t], ccra_eval::format_from_args());
}
