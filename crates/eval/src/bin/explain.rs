//! Explains one allocation function by function: for every web, the
//! storage-class costs that placed it (benefit_caller vs benefit_callee),
//! the BS key it was simplified under, its preference votes, and a
//! human-readable sentence saying why it ended up colored or spilled.
//!
//! ```text
//! explain <workload> [--config <name>] [--scale <f64>]
//!         [--regs Ri Ei Rf Ef] [--func <name>] [--json]
//! explain --diff <old.json> <new.json> [--json]
//! ```
//!
//! * `<workload>` — a SPEC92-like program name (`eqntott`, `ear`, …).
//! * `--config` — `base`, `improved`, `optimistic`, `improved-optimistic`,
//!   `priority`, or `cbh` (default `improved`).
//! * `--regs` — caller-int, callee-int, caller-float, callee-float bank
//!   sizes (default the full MIPS file).
//! * `--func` — report only the named function.
//! * `--json` — emit the reports (or the diff) as JSON instead of text.
//! * `--diff` — join two previously saved `--json` report files per web
//!   and attribute each function's overhead delta to the webs whose
//!   SC/BS/PR/location decisions flipped between the runs. Exits 0 when
//!   the allocations are quality-equivalent, 1 when anything changed —
//!   so a CI step can use the diff itself as a gate.

use std::process::ExitCode;

use ccra_analysis::FrequencyInfo;
use ccra_eval::explain;
use ccra_machine::RegisterFile;
use ccra_regalloc::{allocate_program_traced, AllocatorConfig, PriorityOrdering, RecordingSink};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};
use serde::{Deserialize, Serialize};

struct Args {
    program: SpecProgram,
    config: AllocatorConfig,
    scale: Scale,
    file: RegisterFile,
    func: Option<String>,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: explain <workload> [--config base|improved|optimistic|\
         improved-optimistic|priority|cbh] [--scale <f64>] \
         [--regs <caller-int> <callee-int> <caller-float> <callee-float>] \
         [--func <name>] [--json]"
    );
    eprintln!("       explain --diff <old.json> <new.json> [--json]");
    eprintln!(
        "workloads: {}",
        SpecProgram::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

fn parse_config(name: &str) -> Option<AllocatorConfig> {
    Some(match name {
        "base" => AllocatorConfig::base(),
        "improved" => AllocatorConfig::improved(),
        "optimistic" => AllocatorConfig::optimistic(),
        "improved-optimistic" => AllocatorConfig::improved_optimistic(),
        "priority" => AllocatorConfig::priority(PriorityOrdering::Sorting),
        "cbh" => AllocatorConfig::cbh(),
        _ => return None,
    })
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut program = None;
    let mut config = AllocatorConfig::improved();
    let mut scale = Scale(1.0);
    let mut file = RegisterFile::mips_full();
    let mut func = None;
    let mut json = false;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--config" => {
                config = parse_config(take(i)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--regs" => {
                let v: Vec<u8> = argv[i + 1..]
                    .iter()
                    .take(4)
                    .filter_map(|s| s.parse().ok())
                    .collect();
                if v.len() != 4 {
                    usage();
                }
                if v[0] < 6 || v[2] < 4 {
                    eprintln!(
                        "error: --regs {} {} {} {} is below the MIPS calling-convention \
                         minimum (caller-int >= 6, caller-float >= 4)",
                        v[0], v[1], v[2], v[3]
                    );
                    std::process::exit(2);
                }
                file = RegisterFile::new(v[0], v[2], v[1], v[3]);
                i += 5;
            }
            "--func" => {
                func = Some(take(i).to_string());
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            name if program.is_none() && !name.starts_with('-') => {
                program = SpecProgram::ALL.into_iter().find(|p| p.name() == name);
                if program.is_none() {
                    eprintln!("unknown workload `{name}`");
                    usage();
                }
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(program) = program else { usage() };
    Args {
        program,
        config,
        scale,
        file,
        func,
        json,
    }
}

fn load_reports(path: &str) -> Result<Vec<explain::FuncReport>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value = serde::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Vec::<explain::FuncReport>::from_value(&value).map_err(|e| format!("{path}: {e}"))
}

fn run_diff(old_path: &str, new_path: &str, json: bool) -> ExitCode {
    let (old, new) = match (load_reports(old_path), load_reports(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let diff = explain::diff_reports(&old, &new);
    if json {
        println!("{}", diff.to_json());
    } else {
        println!("{}", explain::diff_table(&diff));
    }
    let clean = diff.funcs.is_empty() && diff.only_old.is_empty() && diff.only_new.is_empty();
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = argv.iter().position(|a| a == "--diff") {
        let (Some(old_path), Some(new_path)) = (argv.get(i + 1), argv.get(i + 2)) else {
            usage()
        };
        let json = argv.iter().any(|a| a == "--json");
        return run_diff(old_path, new_path, json);
    }
    let args = parse_args();

    let ir = spec_program_scaled(args.program, args.scale);
    let freq = match FrequencyInfo::profile(&ir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}: failed to profile: {e}", args.program);
            return ExitCode::FAILURE;
        }
    };

    let mut sink = RecordingSink::new();
    if let Err(e) = allocate_program_traced(&ir, &freq, args.file, &args.config, &mut sink) {
        eprintln!("{}: allocation failed: {e}", args.program);
        return ExitCode::FAILURE;
    }

    let mut reports = explain::build_reports(&sink.events);
    if let Some(name) = &args.func {
        reports.retain(|r| &r.func == name);
        if reports.is_empty() {
            eprintln!("{}: no function named `{name}`", args.program);
            return ExitCode::FAILURE;
        }
    }

    if args.json {
        println!("{}", explain::reports_to_json(&reports));
    } else {
        for r in &reports {
            println!("{}", explain::report_table(r));
        }
    }
    ExitCode::SUCCESS
}
