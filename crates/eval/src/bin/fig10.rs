//! Regenerates Fig10 of the paper. Flags: `--scale <f64>`,
//! `--format text|csv|json|chart`.
fn main() {
    let tables = ccra_eval::experiments::fig10::run(ccra_eval::scale_from_args());
    ccra_eval::emit(&tables, ccra_eval::format_from_args());
}
