//! Differential fuzz oracle for the register allocators.
//!
//! ```text
//! fuzzcheck [--cases <n>] [--seed <u64>]
//! ```
//!
//! Each case generates a random program ([`ccra_workloads::random_program`]),
//! profiles it, and runs it through the four headline allocators (improved
//! Chaitin, improved optimistic, priority, CBH) on a register file cycled
//! by case index. For every allocation the oracle asserts:
//!
//! * the independent checker ([`ccra_regalloc::check_allocation`]) accepts
//!   every function's allocation;
//! * the rewritten program verifies and computes the **same observable
//!   result** as the original under the interpreter;
//! * the overhead the interpreter *measures* equals the overhead the
//!   allocation *claims* (dynamic profile ⇒ exact match).
//!
//! Exits non-zero on the first divergence, printing the seed, allocator,
//! register file, and violation so the case can be replayed.

use std::process::ExitCode;

use ccra_analysis::{run, FrequencyInfo, InterpConfig};
use ccra_machine::RegisterFile;
use ccra_regalloc::{
    allocate_program, check_allocation, measured_overhead, AllocatorConfig, PriorityOrdering,
};
use ccra_workloads::{random_program, FuzzConfig};

fn usage() -> ! {
    eprintln!("usage: fuzzcheck [--cases <n>] [--seed <u64>]");
    std::process::exit(2);
}

struct Args {
    cases: u64,
    seed: u64,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cases = 200u64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--cases" => {
                cases = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    Args { cases, seed }
}

fn configs() -> [(&'static str, AllocatorConfig); 4] {
    [
        ("improved", AllocatorConfig::improved()),
        (
            "improved-optimistic",
            AllocatorConfig::improved_optimistic(),
        ),
        (
            "priority",
            AllocatorConfig::priority(PriorityOrdering::Sorting),
        ),
        ("cbh", AllocatorConfig::cbh()),
    ]
}

fn files() -> [RegisterFile; 3] {
    [
        RegisterFile::minimum(),
        RegisterFile::new(6, 4, 1, 0),
        RegisterFile::mips_full(),
    ]
}

fn interp() -> InterpConfig {
    InterpConfig {
        step_limit: 5_000_000,
        ..Default::default()
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut checked = 0u64;
    for case in 0..args.cases {
        let seed = args.seed.wrapping_add(case);
        let program = random_program(seed, &FuzzConfig::default());
        let expect = match run(&program, &interp()) {
            Ok(stats) => stats.result,
            Err(e) => {
                eprintln!("case {case} (seed {seed}): original program fails to run: {e}");
                return ExitCode::FAILURE;
            }
        };
        let freq = match FrequencyInfo::profile(&program) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("case {case} (seed {seed}): profiling failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let file = files()[(case % 3) as usize];
        for (label, config) in configs() {
            let out = match allocate_program(&program, &freq, file, &config) {
                Ok(out) => out,
                Err(e) => {
                    eprintln!("case {case} (seed {seed}) {label} @ {file}: allocation error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // 1. The independent checker accepts every function.
            for (id, original) in program.functions() {
                let rewritten = out.program.function(id);
                if let Err(violations) =
                    check_allocation(original, rewritten, freq.func(id), out.func(id))
                {
                    eprintln!(
                        "case {case} (seed {seed}) {label} @ {file}: checker rejected {}:",
                        original.name()
                    );
                    for v in violations {
                        eprintln!("  {v}");
                    }
                    return ExitCode::FAILURE;
                }
            }
            // 2. Observable behavior is unchanged.
            if let Err(e) = out.program.verify() {
                eprintln!("case {case} (seed {seed}) {label} @ {file}: rewrite fails verify: {e}");
                return ExitCode::FAILURE;
            }
            let stats = match run(&out.program, &interp()) {
                Ok(stats) => stats,
                Err(e) => {
                    eprintln!("case {case} (seed {seed}) {label} @ {file}: rewrite fails: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if stats.result != expect {
                eprintln!(
                    "case {case} (seed {seed}) {label} @ {file}: result diverged: \
                     {:?} vs original {:?}",
                    stats.result, expect
                );
                return ExitCode::FAILURE;
            }
            // 3. Claimed overhead matches what execution measures.
            let measured = measured_overhead(&stats);
            if (measured.total() - out.overhead.total()).abs() > 1e-6 {
                eprintln!(
                    "case {case} (seed {seed}) {label} @ {file}: overhead drifted: \
                     measured {} vs claimed {}",
                    measured.total(),
                    out.overhead.total()
                );
                return ExitCode::FAILURE;
            }
            checked += 1;
        }
    }
    println!(
        "fuzzcheck: {} cases x {} allocators = {checked} allocations clean",
        args.cases,
        configs().len()
    );
    ExitCode::SUCCESS
}
