//! Runs the incremental re-allocation sweep ([`ccra_eval::incr`]) and
//! records it into the `cache` section of a `BENCH_*.json` snapshot:
//! per dirty-fraction × worker-count cell, the cold and warm wall-clock
//! times, the memo-cache hit rate, resident bytes, and evictions.
//!
//! ```text
//! incr [--funcs <n>] [--seed <n>] [--workers <n>] [--dirty <pct>]
//!      [--out <file.json>] [--into <bench.json>]
//!      [--check <baseline.json>] [--poison]
//! ```
//!
//! * `--funcs` — functions in the synthetic workload (default 1000).
//! * `--seed` — workload generator seed (default 1997).
//! * `--workers` — restrict the sweep to one worker count (default:
//!   sweep 1, 2, 4, 8).
//! * `--dirty` — restrict the sweep to one dirty fraction, percent
//!   (default: sweep 0, 1, 10, 100).
//! * `--out` — write a standalone schema-versioned snapshot holding only
//!   the measured section (default `BENCH_<version>_cache.json`).
//! * `--into` — merge the measured cells into an existing snapshot
//!   (replacing prior cells at the same coordinates) and rewrite it.
//! * `--check` — after the sweep, gate the hit rates against the given
//!   baseline snapshot's `cache` section ([`ccra_eval::check_cache`]):
//!   exact per-cell match plus the unconditional ≥ 95% floor on 1%-dirty
//!   cells. Exits 1 on any violation.
//! * `--poison` — collapse every cache key
//!   ([`ccra_regalloc::CacheConfig::poison`]): the warm run replays wrong
//!   allocations, the in-sweep byte-identity check must fail, and the run
//!   must exit nonzero. CI runs this to prove the gate fires.
//!
//! Every cell's warm result is compared byte-for-byte against an uncached
//! cold run of the same edited program *before* it is recorded; the run
//! exits 1 on the first difference, so this binary doubles as the
//! cache-correctness oracle at every worker count it sweeps.

use std::process::ExitCode;

use ccra_eval::incr::{run_incr_sweep, IncrConfig};
use ccra_eval::perfsnap::{self, BenchSnapshot, CacheEntry, HostInfo, BENCH_SCHEMA_VERSION};
use ccra_eval::{check_cache, parse_snapshot};
use serde::Serialize;

struct Args {
    cfg: IncrConfig,
    out: String,
    into: Option<String>,
    check: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: incr [--funcs <n>] [--seed <n>] [--workers <n>] [--dirty <pct>] \
         [--out <file.json>] [--into <bench.json>] \
         [--check <baseline.json>] [--poison]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = IncrConfig::default();
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}_cache.json");
    let mut into = None;
    let mut check = None;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--poison" => {
                cfg.poison = true;
                i += 1;
                continue;
            }
            "--funcs" => cfg.funcs = take(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(i).parse().unwrap_or_else(|_| usage()),
            "--workers" => {
                let w: usize = take(i).parse().unwrap_or_else(|_| usage());
                if w == 0 {
                    usage();
                }
                cfg.workers = vec![w];
            }
            "--dirty" => {
                let d: u64 = take(i).parse().unwrap_or_else(|_| usage());
                if d > 100 {
                    usage();
                }
                cfg.dirty_pcts = vec![d];
            }
            "--out" => out = take(i).to_string(),
            "--into" => into = Some(take(i).to_string()),
            "--check" => check = Some(take(i).to_string()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    if cfg.funcs == 0 {
        usage();
    }
    Args {
        cfg,
        out,
        into,
        check,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "incr: {} function(s), seed {}, workers {:?}, dirty {:?}%{}",
        args.cfg.funcs,
        args.cfg.seed,
        args.cfg.workers,
        args.cfg.dirty_pcts,
        if args.cfg.poison { ", POISONED" } else { "" }
    );
    let entries = match run_incr_sweep(&args.cfg, |e| {
        eprintln!(
            "  {:>9} w={} dirty {:>3}%: cold {:>8} us, warm {:>8} us \
             ({:>5.2}x), hit rate {:.3} ({} hit(s), {} miss(es)), \
             {} byte(s), {} eviction(s)",
            e.workload,
            e.workers,
            e.dirty_pct,
            e.cold_micros,
            e.warm_micros,
            e.speedup,
            e.hit_rate,
            e.hits,
            e.misses,
            e.bytes,
            e.evictions
        );
    }) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("ok: every warm result was byte-identical to its uncached cold run");

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| parse_snapshot(&text).map_err(|e| format!("{path}: {e}")))
        {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = check_cache(&baseline.cache, &entries) {
            eprintln!("CACHE GATE FAILED vs {path}:\n{e}");
            return ExitCode::FAILURE;
        }
        eprintln!("cache gate passed vs {path}");
    }

    let write_result = match &args.into {
        Some(path) => merge_cache_into(path, &entries),
        None => {
            let snapshot = BenchSnapshot {
                schema_version: BENCH_SCHEMA_VERSION,
                scale: 0.0,
                iters: 1,
                host: HostInfo::detect(&args.cfg.workers),
                entries: Vec::new(),
                parallel: Vec::new(),
                latency: Vec::new(),
                admission: Vec::new(),
                quality: Vec::new(),
                cache: entries.clone(),
                alerts: Vec::new(),
            };
            std::fs::write(&args.out, snapshot.to_json() + "\n")
                .map(|()| args.out.clone())
                .map_err(|e| format!("cannot write {}: {e}", args.out))
        }
    };
    match write_result {
        Ok(path) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Replaces the cache cells at this run's coordinates inside an existing
/// snapshot and rewrites it.
fn merge_cache_into(path: &str, entries: &[CacheEntry]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot.cache.retain(|c| {
        !entries.iter().any(|e| {
            e.workload == c.workload && e.workers == c.workers && e.dirty_pct == c.dirty_pct
        })
    });
    snapshot.cache.extend_from_slice(entries);
    snapshot.cache.sort_by(|a, b| {
        (&a.workload, a.workers, a.dirty_pct).cmp(&(&b.workload, b.workers, b.dirty_pct))
    });
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}
