//! Drives a live [`ccra_regalloc::BatchService`] open-loop and records
//! the serving-path latency SLOs (queue-wait / service / end-to-end p50,
//! p95, p99) into the `latency` section of a `BENCH_*.json` snapshot —
//! see [`ccra_eval::loadgen`] for the arrival and job-size model.
//!
//! ```text
//! loadgen [--jobs <n>] [--workers <n>] [--shard-workers <n>]
//!         [--queue <n>] [--mean-gap-us <n>] [--seed <n>]
//!         [--out <file.json>] [--into <bench.json>]
//! ```
//!
//! * `--jobs` — submissions (default 64).
//! * `--workers` — service workers (default 2).
//! * `--shard-workers` — per-program driver workers (default 1).
//! * `--queue` — submission-queue capacity (default 16).
//! * `--mean-gap-us` — mean exponential inter-arrival gap (default 500;
//!   0 = submit flat out).
//! * `--seed` — job-stream seed (default 1997).
//! * `--out` — write a standalone schema-versioned snapshot holding only
//!   the latency section (default `BENCH_<version>_latency.json`).
//! * `--into` — instead of a standalone file, merge the measured series
//!   into an existing snapshot's `latency` section (replacing any prior
//!   entries at the same worker count) and rewrite it in place.
//!
//! Exits 1 if any submission id is lost or duplicated — the run doubles
//! as an accounting check on the batch service.

use std::process::ExitCode;

use ccra_eval::loadgen::{run_loadgen, LoadgenConfig};
use ccra_eval::perfsnap::{self, BenchSnapshot, HostInfo, BENCH_SCHEMA_VERSION};
use serde::Serialize;

struct Args {
    cfg: LoadgenConfig,
    out: String,
    into: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--jobs <n>] [--workers <n>] [--shard-workers <n>] \
         [--queue <n>] [--mean-gap-us <n>] [--seed <n>] \
         [--out <file.json>] [--into <bench.json>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}_latency.json");
    let mut into = None;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--jobs" => cfg.jobs = take(i).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = take(i).parse().unwrap_or_else(|_| usage()),
            "--shard-workers" => cfg.shard_workers = take(i).parse().unwrap_or_else(|_| usage()),
            "--queue" => cfg.queue_capacity = take(i).parse().unwrap_or_else(|_| usage()),
            "--mean-gap-us" => cfg.mean_gap_us = take(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = take(i).parse().unwrap_or_else(|_| usage()),
            "--out" => out = take(i).to_string(),
            "--into" => into = Some(take(i).to_string()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    if cfg.jobs == 0 {
        usage();
    }
    Args { cfg, out, into }
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "loadgen: {} job(s), {} worker(s) (shard {}), queue {}, \
         mean gap {} us, seed {}",
        args.cfg.jobs,
        args.cfg.workers,
        args.cfg.shard_workers,
        args.cfg.queue_capacity,
        args.cfg.mean_gap_us,
        args.cfg.seed
    );
    let (report, _results) = run_loadgen(&args.cfg, |submitted, depth| {
        eprintln!("  submitted {submitted:>5}, queue depth {depth}");
    });

    eprintln!(
        "completed {}/{} (ok {}, degraded {}, failed {})",
        report.completed, report.submitted, report.ok, report.degraded, report.failed
    );
    for l in &report.latency {
        eprintln!(
            "  {:>10}: p50 {:>8} us, p95 {:>8} us, p99 {:>8} us \
             (mean {:>10.1} us over {} job(s))",
            l.series, l.p50_us, l.p95_us, l.p99_us, l.mean_us, l.jobs
        );
    }
    if !report.accounting_clean() {
        eprintln!(
            "ACCOUNTING FAILED: lost ids {:?}, duplicated ids {:?}",
            report.lost, report.duplicated
        );
        return ExitCode::FAILURE;
    }
    eprintln!("ok: every submission id came back exactly once");

    let write_result = match &args.into {
        Some(path) => merge_into(path, &report.latency),
        None => {
            let snapshot = BenchSnapshot {
                schema_version: BENCH_SCHEMA_VERSION,
                scale: 0.0,
                iters: 1,
                host: HostInfo::detect(&[args.cfg.workers]),
                entries: Vec::new(),
                parallel: Vec::new(),
                latency: report.latency.clone(),
            };
            std::fs::write(&args.out, snapshot.to_json() + "\n")
                .map(|()| args.out.clone())
                .map_err(|e| format!("cannot write {}: {e}", args.out))
        }
    };
    match write_result {
        Ok(path) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// Replaces the latency entries at this run's worker count inside an
/// existing snapshot and rewrites it.
fn merge_into(path: &str, latency: &[ccra_eval::perfsnap::LatencyEntry]) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    let workers: Vec<u64> = latency.iter().map(|l| l.workers).collect();
    snapshot.latency.retain(|l| !workers.contains(&l.workers));
    snapshot.latency.extend_from_slice(latency);
    snapshot
        .latency
        .sort_by(|a, b| (a.workers, &a.series).cmp(&(b.workers, &b.series)));
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}
