//! Drives a live [`ccra_regalloc::BatchService`] open-loop and records
//! the serving-path latency SLOs (queue-wait / service / end-to-end p50,
//! p95, p99) into the `latency` section of a `BENCH_*.json` snapshot —
//! see [`ccra_eval::loadgen`] for the arrival and job-size model.
//!
//! ```text
//! loadgen [--jobs <n>] [--workers <n>] [--shard-workers <n>]
//!         [--queue <n>] [--mean-gap-us <n>] [--seed <n>] [--rerun <pct>]
//!         [--out <file.json>] [--into <bench.json>]
//!         [--chaos] [--trickle <n>] [--slo-us <n>] [--max-limit <n>]
//!         [--timeout-us <n>] [--spike-us <n>] [--cancel-every <n>]
//!         [--p99-bound-us <n>] [--watchdog-secs <n>] [--dump <file.json>]
//!         [--obsv-dump <file.json>]
//! ```
//!
//! * `--jobs` — submissions (default 64; chaos default 200).
//! * `--workers` — service workers (default 2).
//! * `--shard-workers` — per-program driver workers (default 1).
//! * `--queue` — submission-queue capacity (default 16; chaos 32).
//! * `--mean-gap-us` — mean exponential inter-arrival gap (default 500;
//!   0 = submit flat out; chaos default 0).
//! * `--seed` — job-stream seed (default 1997).
//! * `--rerun` — percentage of submissions that are byte-identical
//!   re-submissions of earlier jobs in the stream (default 0). When > 0
//!   the service gets a memo cache, and the run reports its hit/miss
//!   counters; the rewritten stream is still a pure function of `--seed`.
//!   Applies to the chaos storm too.
//! * `--out` — write a standalone schema-versioned snapshot holding only
//!   the measured section (default `BENCH_<version>_latency.json`).
//! * `--into` — instead of a standalone file, merge the measured series
//!   into an existing snapshot (replacing any prior entries at the same
//!   worker count) and rewrite it in place.
//!
//! Exits 1 if any submission id is lost or duplicated — the run doubles
//! as an accounting check on the batch service.
//!
//! # Chaos mode (`--chaos`)
//!
//! Runs the overload storm of [`ccra_eval::loadgen::run_chaosload`]
//! instead: arrivals outpace capacity, the service has admission control,
//! a per-job timeout, and seeded fault injection (panics, allocator
//! errors, latency spikes) enabled, a subset of queued jobs is cancelled
//! mid-storm, and a closed-loop trickle then verifies recovery. The run
//! asserts, exiting 1 on any violation:
//!
//! * every accepted id resolves exactly once (nothing lost, duplicated,
//!   or invented; shed submissions produce no result);
//! * end-to-end p99 of accepted jobs stays under `--p99-bound-us` while
//!   the limiter sheds;
//! * interactive p99 beats background p99 (priority scheduling works
//!   under overload);
//! * the post-storm limiter regrows to full admission;
//! * the ops observatory's SLO burn-rate alert **fired** during the
//!   storm and stands **resolved** at the end of the run (the alert
//!   cycle is deterministic — the harness ticks the observatory on an
//!   injected manual clock).
//!
//! A watchdog thread exits 3 after `--watchdog-secs` (default 300) — a
//! hang *is* a failed run, not a stuck CI job. On assertion failure the
//! chaos report and the service's flight-recorder dump are written to
//! `--dump` (default `chaos_failure.json`) for upload as a CI artifact.
//! On success the measured `admission` and `alerts` sections are written
//! via `--out`/`--into`. `--obsv-dump <file>` additionally writes the
//! observatory's `/alerts` document and the raw-tier history of every
//! sampled series — the CI alerting job uploads it as an artifact.

use std::process::ExitCode;

use ccra_eval::loadgen::{run_chaosload, run_loadgen, ChaosloadConfig, LoadgenConfig};
use ccra_eval::perfsnap::{self, BenchSnapshot, HostInfo, BENCH_SCHEMA_VERSION};
use serde::json::Value;
use serde::Serialize;

struct Args {
    cfg: LoadgenConfig,
    chaos: bool,
    chaos_cfg: ChaosloadConfig,
    p99_bound_us: u64,
    watchdog_secs: u64,
    dump: String,
    obsv_dump: Option<String>,
    out: String,
    into: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--jobs <n>] [--workers <n>] [--shard-workers <n>] \
         [--queue <n>] [--mean-gap-us <n>] [--seed <n>] [--rerun <pct>] \
         [--out <file.json>] [--into <bench.json>] \
         [--chaos] [--trickle <n>] [--slo-us <n>] [--max-limit <n>] \
         [--timeout-us <n>] [--spike-us <n>] [--cancel-every <n>] \
         [--p99-bound-us <n>] [--watchdog-secs <n>] [--dump <file.json>] \
         [--obsv-dump <file.json>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = LoadgenConfig::default();
    let mut chaos = false;
    let mut chaos_cfg = ChaosloadConfig::default();
    let mut jobs_set = false;
    let mut queue_set = false;
    let mut gap_set = false;
    let mut p99_bound_us = 1_000_000;
    let mut watchdog_secs = 300;
    let mut dump = "chaos_failure.json".to_string();
    let mut obsv_dump = None;
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}_latency.json");
    let mut into = None;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--chaos" => {
                chaos = true;
                i += 1;
                continue;
            }
            "--jobs" => {
                cfg.jobs = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.jobs = cfg.jobs;
                jobs_set = true;
            }
            "--workers" => {
                cfg.workers = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.workers = cfg.workers;
            }
            "--shard-workers" => {
                cfg.shard_workers = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.shard_workers = cfg.shard_workers;
            }
            "--queue" => {
                cfg.queue_capacity = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.queue_capacity = cfg.queue_capacity;
                queue_set = true;
            }
            "--mean-gap-us" => {
                cfg.mean_gap_us = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.mean_gap_us = cfg.mean_gap_us;
                gap_set = true;
            }
            "--seed" => {
                cfg.seed = take(i).parse().unwrap_or_else(|_| usage());
                chaos_cfg.seed = cfg.seed;
            }
            "--rerun" => {
                let pct: u32 = take(i).parse().unwrap_or_else(|_| usage());
                if pct > 100 {
                    usage();
                }
                cfg.rerun_per_mille = pct * 10;
                chaos_cfg.rerun_per_mille = cfg.rerun_per_mille;
            }
            "--trickle" => chaos_cfg.trickle = take(i).parse().unwrap_or_else(|_| usage()),
            "--slo-us" => chaos_cfg.slo_us = take(i).parse().unwrap_or_else(|_| usage()),
            "--max-limit" => chaos_cfg.max_limit = take(i).parse().unwrap_or_else(|_| usage()),
            "--timeout-us" => {
                chaos_cfg.job_timeout_us = take(i).parse().unwrap_or_else(|_| usage())
            }
            "--spike-us" => chaos_cfg.spike_us = take(i).parse().unwrap_or_else(|_| usage()),
            "--cancel-every" => {
                chaos_cfg.cancel_every = take(i).parse().unwrap_or_else(|_| usage())
            }
            "--p99-bound-us" => p99_bound_us = take(i).parse().unwrap_or_else(|_| usage()),
            "--watchdog-secs" => watchdog_secs = take(i).parse().unwrap_or_else(|_| usage()),
            "--dump" => dump = take(i).to_string(),
            "--obsv-dump" => obsv_dump = Some(take(i).to_string()),
            "--out" => out = take(i).to_string(),
            "--into" => into = Some(take(i).to_string()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 2;
    }
    if chaos {
        // The chaos defaults differ from the steady ones: a flood past a
        // wider queue. Only apply them where the user didn't override.
        if !jobs_set {
            chaos_cfg.jobs = ChaosloadConfig::default().jobs;
        }
        if !queue_set {
            chaos_cfg.queue_capacity = ChaosloadConfig::default().queue_capacity;
        }
        if !gap_set {
            chaos_cfg.mean_gap_us = ChaosloadConfig::default().mean_gap_us;
        }
    }
    if cfg.jobs == 0 || (chaos && chaos_cfg.jobs == 0) {
        usage();
    }
    Args {
        cfg,
        chaos,
        chaos_cfg,
        p99_bound_us,
        watchdog_secs,
        dump,
        obsv_dump,
        out,
        into,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.chaos {
        return run_chaos_mode(&args);
    }
    eprintln!(
        "loadgen: {} job(s), {} worker(s) (shard {}), queue {}, \
         mean gap {} us, seed {}",
        args.cfg.jobs,
        args.cfg.workers,
        args.cfg.shard_workers,
        args.cfg.queue_capacity,
        args.cfg.mean_gap_us,
        args.cfg.seed
    );
    let (report, _results) = run_loadgen(&args.cfg, |submitted, depth| {
        eprintln!("  submitted {submitted:>5}, queue depth {depth}");
    });

    eprintln!(
        "completed {}/{} (ok {}, degraded {}, failed {})",
        report.completed, report.submitted, report.ok, report.degraded, report.failed
    );
    for l in &report.latency {
        eprintln!(
            "  {:>10}: p50 {:>8} us, p95 {:>8} us, p99 {:>8} us \
             (mean {:>10.1} us over {} job(s))",
            l.series, l.p50_us, l.p95_us, l.p99_us, l.mean_us, l.jobs
        );
    }
    if args.cfg.rerun_per_mille > 0 {
        eprintln!(
            "  memo cache: {} hit(s), {} miss(es)",
            report.cache_hits, report.cache_misses
        );
    }
    if !report.accounting_clean() {
        eprintln!(
            "ACCOUNTING FAILED: lost ids {:?}, duplicated ids {:?}",
            report.lost, report.duplicated
        );
        return ExitCode::FAILURE;
    }
    eprintln!("ok: every submission id came back exactly once");

    let write_result = match &args.into {
        Some(path) => merge_latency_into(path, &report.latency),
        None => {
            let mut snapshot = empty_snapshot(args.cfg.workers);
            snapshot.latency = report.latency.clone();
            std::fs::write(&args.out, snapshot.to_json() + "\n")
                .map(|()| args.out.clone())
                .map_err(|e| format!("cannot write {}: {e}", args.out))
        }
    };
    finish(write_result)
}

fn run_chaos_mode(args: &Args) -> ExitCode {
    let cfg = args.chaos_cfg;
    eprintln!(
        "loadgen --chaos: {} storm job(s) + {} trickle, {} worker(s) (shard {}), \
         queue {}, slo {} us, window {}, seed {}",
        cfg.jobs,
        cfg.trickle,
        cfg.workers,
        cfg.shard_workers,
        cfg.queue_capacity,
        cfg.slo_us,
        cfg.max_limit,
        cfg.seed
    );
    // A hang is a failed run: bound it, don't let CI time out opaquely.
    let watchdog = args.watchdog_secs;
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(watchdog));
        eprintln!("WATCHDOG: chaos run still not finished after {watchdog}s; aborting");
        std::process::exit(3);
    });
    let stride = (cfg.jobs / 8).max(1);
    let (report, _results) = run_chaosload(&cfg, |submitted, depth| {
        if submitted % stride == 0 {
            eprintln!("  submitted {submitted:>5}, queue depth {depth}");
        }
    });
    eprintln!(
        "accepted {}/{} (shed {}), ok {}, degraded {} ({} timeout), failed {}, \
         expired {}, cancelled {} ({} cancel hits)",
        report.accepted,
        report.submitted,
        report.shed,
        report.ok,
        report.degraded,
        report.timeouts,
        report.failed,
        report.expired,
        report.cancelled,
        report.cancel_hits
    );
    for p in &report.per_priority {
        eprintln!(
            "  {:>12}: p50 {:>8} us, p99 {:>8} us over {} job(s)",
            p.priority, p.p50_us, p.p99_us, p.jobs
        );
    }
    eprintln!(
        "accepted e2e p99 {} us; admission window {:.1}/{:.0} after trickle",
        report.accepted_p99_us, report.final_limit, report.max_limit
    );
    if cfg.rerun_per_mille > 0 {
        eprintln!(
            "  memo cache: {} hit(s), {} miss(es)",
            report.cache_hits, report.cache_misses
        );
    }
    for s in &report.alert_stats {
        if s.fires > 0 {
            eprintln!(
                "  alert {:>20}: {} fire(s), worst {:.2}, cleared in {} us, now {:?}",
                s.rule, s.fires, s.worst_value, s.time_to_clear_us, s.state
            );
        }
    }

    let mut violations = Vec::new();
    if !report.accounting_clean() {
        violations.push(format!(
            "accounting: lost {:?}, duplicated {:?}, phantom {:?}, \
             accepted {} vs resolved {}",
            report.lost,
            report.duplicated,
            report.phantom,
            report.accepted,
            report.ok + report.degraded + report.failed + report.expired + report.cancelled
        ));
    }
    if report.accepted_p99_us >= args.p99_bound_us {
        violations.push(format!(
            "accepted p99 unbounded: {} us >= {} us while shedding",
            report.accepted_p99_us, args.p99_bound_us
        ));
    }
    if !report.priorities_ordered() {
        violations.push("interactive p99 did not beat background p99".to_string());
    }
    if !report.limiter_recovered() {
        violations.push(format!(
            "limiter did not recover: window {:.1} of {:.0} after the trickle",
            report.final_limit, report.max_limit
        ));
    }
    if !report.slo_alert_cycled() {
        violations.push(format!(
            "SLO burn alert did not cycle (fire during the storm, resolve \
             after the tail): {:?}",
            report.alert_stats
        ));
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("CHAOS INVARIANT FAILED: {v}");
        }
        let doc = Value::Obj(vec![
            (
                "violations".to_string(),
                Value::Arr(violations.iter().map(|v| Value::Str(v.clone())).collect()),
            ),
            ("report".to_string(), Value::Str(format!("{report:?}"))),
            ("flightrec".to_string(), report.flight.clone()),
        ]);
        match std::fs::write(&args.dump, doc.to_json() + "\n") {
            Ok(()) => eprintln!("wrote failure dump to {}", args.dump),
            Err(e) => eprintln!("cannot write failure dump {}: {e}", args.dump),
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "ok: every accepted id resolved exactly once; limiter recovered; \
         burn alert fired and resolved"
    );

    if let Some(path) = &args.obsv_dump {
        let doc = Value::Obj(vec![
            ("alerts".to_string(), report.alerts_value.clone()),
            ("history".to_string(), report.obsv_history.clone()),
        ]);
        match std::fs::write(path, doc.to_json() + "\n") {
            Ok(()) => eprintln!("wrote observatory dump to {path}"),
            Err(e) => {
                eprintln!("cannot write observatory dump {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let entry = report.admission_entry();
    let alerts = report.alert_entries();
    let write_result = match &args.into {
        Some(path) => merge_admission_into(path, &entry)
            .and_then(|_| merge_alerts_into(path, cfg.workers as u64, &alerts)),
        None => {
            let mut snapshot = empty_snapshot(cfg.workers);
            snapshot.admission = vec![entry];
            snapshot.alerts = alerts;
            std::fs::write(&args.out, snapshot.to_json() + "\n")
                .map(|()| args.out.clone())
                .map_err(|e| format!("cannot write {}: {e}", args.out))
        }
    };
    finish(write_result)
}

fn finish(write_result: Result<String, String>) -> ExitCode {
    match write_result {
        Ok(path) => {
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn empty_snapshot(workers: usize) -> BenchSnapshot {
    BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        scale: 0.0,
        iters: 1,
        host: HostInfo::detect(&[workers]),
        entries: Vec::new(),
        parallel: Vec::new(),
        latency: Vec::new(),
        admission: Vec::new(),
        quality: Vec::new(),
        cache: Vec::new(),
        alerts: Vec::new(),
    }
}

/// Replaces the latency entries at this run's worker count inside an
/// existing snapshot and rewrites it.
fn merge_latency_into(
    path: &str,
    latency: &[ccra_eval::perfsnap::LatencyEntry],
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    let workers: Vec<u64> = latency.iter().map(|l| l.workers).collect();
    snapshot.latency.retain(|l| !workers.contains(&l.workers));
    snapshot.latency.extend_from_slice(latency);
    snapshot
        .latency
        .sort_by(|a, b| (a.workers, &a.series).cmp(&(b.workers, &b.series)));
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Replaces the alert entries at this run's worker count inside an
/// existing snapshot and rewrites it.
fn merge_alerts_into(
    path: &str,
    workers: u64,
    alerts: &[ccra_eval::perfsnap::AlertEntry],
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot.alerts.retain(|a| a.workers != workers);
    snapshot.alerts.extend_from_slice(alerts);
    snapshot
        .alerts
        .sort_by(|a, b| (a.workers, &a.rule).cmp(&(b.workers, &b.rule)));
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// Replaces the admission entry at this run's worker count inside an
/// existing snapshot and rewrites it.
fn merge_admission_into(
    path: &str,
    entry: &ccra_eval::perfsnap::AdmissionEntry,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    snapshot.admission.retain(|a| a.workers != entry.workers);
    snapshot.admission.push(entry.clone());
    snapshot.admission.sort_by_key(|a| a.workers);
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}
