//! Sweeps the parallel allocation driver over worker counts
//! ([`ccra_eval::SWEEP_WORKER_COUNTS`]), verifies the parallel output is
//! byte-identical to the serial pipeline on every workload, and writes a
//! schema-versioned snapshot with the measurements in its `parallel`
//! section.
//!
//! ```text
//! par [--scale <f64>] [--iters <n>] [--out <file.json>]
//!     [--check <baseline.json>] [--threshold <pct>] [--w1-threshold <pct>]
//! ```
//!
//! * `--scale` — workload scale (default 1.0, or the `BENCH_SCALE`
//!   environment variable; the flag wins).
//! * `--iters` — timed iterations per cell; the fastest is kept
//!   (default 3).
//! * `--out` — snapshot path (default `BENCH_<version>.json`).
//! * `--check` — compare the sweep against a baseline snapshot's
//!   `parallel` section; exit 1 when aggregate throughput drops more than
//!   `--threshold` percent (default 25 — loose, the sweep is
//!   scheduling-sensitive).
//! * `--w1-threshold` — always enforced, baseline or not: the driver at
//!   `workers = 1` must not be slower than the serial pipeline by more
//!   than this many percent (default 10).
//!
//! Speedups are wall-clock honest: on a single-core machine every worker
//! count measures ≈ 1.0×, and that is the number recorded.

use std::process::ExitCode;

use ccra_eval::perfsnap::{self, BenchSnapshot, HostInfo, BENCH_SCHEMA_VERSION};
use ccra_eval::{compare_parallel, parsweep, workers1_gate};
use ccra_workloads::Scale;
use serde::Serialize;

struct Args {
    scale: Scale,
    iters: u32,
    out: String,
    check: Option<String>,
    threshold: f64,
    w1_threshold: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: par [--scale <f64>] [--iters <n>] [--out <file.json>] \
         [--check <baseline.json>] [--threshold <pct>] [--w1-threshold <pct>]"
    );
    eprintln!("the BENCH_SCALE environment variable sets the default scale");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(Scale(1.0), Scale);
    let mut iters = 3u32;
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}.json");
    let mut check = None;
    let mut threshold = 25.0;
    let mut w1_threshold = 10.0;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--iters" => {
                iters = take(i).parse().unwrap_or_else(|_| usage());
                if iters == 0 {
                    usage();
                }
                i += 2;
            }
            "--out" => {
                out = take(i).to_string();
                i += 2;
            }
            "--check" => {
                check = Some(take(i).to_string());
                i += 2;
            }
            "--threshold" => {
                threshold = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--w1-threshold" => {
                w1_threshold = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        scale,
        iters,
        out,
        check,
        threshold,
        w1_threshold,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    eprintln!(
        "par: schema v{BENCH_SCHEMA_VERSION}, scale {}, {} iteration(s) per cell, \
         worker counts {:?}",
        args.scale.0,
        args.iters,
        parsweep::SWEEP_WORKER_COUNTS
    );
    let parallel = parsweep::run_par_sweep(args.scale, args.iters, |e, summary| {
        eprintln!(
            "  {:>8} [{:^10}] w={}: {:>9} instrs in {:>8} us ({:>12.0} instrs/sec, \
             {:.2}x vs serial)",
            e.workload, e.config, e.workers, e.instrs, e.micros, e.instrs_per_sec, e.speedup
        );
        eprintln!("           driver: {summary}");
    });

    let snapshot = BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        scale: args.scale.0,
        iters: args.iters,
        host: HostInfo::detect(&parsweep::SWEEP_WORKER_COUNTS),
        entries: Vec::new(),
        parallel,
        latency: Vec::new(),
        admission: Vec::new(),
        quality: Vec::new(),
        cache: Vec::new(),
        alerts: Vec::new(),
    };
    if let Err(e) = std::fs::write(&args.out, snapshot.to_json() + "\n") {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);

    if let Err(e) = workers1_gate(&snapshot.parallel, args.w1_threshold) {
        eprintln!("GATE FAILED: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "ok: workers=1 within {:.0}% of the serial pipeline on every workload",
        args.w1_threshold
    );

    if let Some(path) = &args.check {
        return check_against(path, &snapshot, args.threshold);
    }
    ExitCode::SUCCESS
}

fn check_against(path: &str, current: &BenchSnapshot, threshold: f64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match perfsnap::parse_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.scale != current.scale {
        eprintln!(
            "baseline {path} is at scale {}, this run is at scale {} — not comparable",
            baseline.scale, current.scale
        );
        return ExitCode::FAILURE;
    }
    let cmp = match compare_parallel(&baseline.parallel, &current.parallel, threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot compare against {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for key in &cmp.missing {
        eprintln!("  {key:<28} missing from this run");
    }
    if cmp.regressed {
        eprintln!(
            "REGRESSION: aggregate {:.0} instrs/sec vs baseline {:.0} \
             ({:+.1}% < -{threshold:.1}% threshold)",
            cmp.current_ips, cmp.baseline_ips, cmp.delta_pct
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "ok: aggregate {:.0} instrs/sec vs baseline {:.0} ({:+.1}%, \
             threshold {threshold:.1}%)",
            cmp.current_ips, cmp.baseline_ips, cmp.delta_pct
        );
        ExitCode::SUCCESS
    }
}
