//! Runs the fixed allocator-performance matrix and writes a
//! schema-versioned snapshot (`BENCH_<version>.json`), optionally gating
//! against a committed baseline.
//!
//! ```text
//! perf [--scale <f64>] [--iters <n>] [--out <file.json>]
//!      [--check <baseline.json>] [--threshold <pct>]
//! ```
//!
//! * `--scale` — workload scale (default 1.0, or the `BENCH_SCALE`
//!   environment variable; the flag wins).
//! * `--iters` — timed iterations per matrix cell; the fastest is kept
//!   (default 3).
//! * `--out` — snapshot path (default `BENCH_1.json`).
//! * `--check` — compare against a baseline snapshot; exit 1 when
//!   aggregate throughput (instructions allocated per second) drops more
//!   than `--threshold` percent (default 15). Scale and schema version
//!   must match the baseline.

use std::process::ExitCode;

use ccra_eval::perfsnap::{self, BenchSnapshot, BENCH_SCHEMA_VERSION};
use ccra_workloads::Scale;
use serde::Serialize;

struct Args {
    scale: Scale,
    iters: u32,
    out: String,
    check: Option<String>,
    threshold: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf [--scale <f64>] [--iters <n>] [--out <file.json>] \
         [--check <baseline.json>] [--threshold <pct>]"
    );
    eprintln!("the BENCH_SCALE environment variable sets the default scale");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(Scale(1.0), Scale);
    let mut iters = 3u32;
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}.json");
    let mut check = None;
    let mut threshold = 15.0;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--iters" => {
                iters = take(i).parse().unwrap_or_else(|_| usage());
                if iters == 0 {
                    usage();
                }
                i += 2;
            }
            "--out" => {
                out = take(i).to_string();
                i += 2;
            }
            "--check" => {
                check = Some(take(i).to_string());
                i += 2;
            }
            "--threshold" => {
                threshold = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        scale,
        iters,
        out,
        check,
        threshold,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    eprintln!(
        "perf: schema v{BENCH_SCHEMA_VERSION}, scale {}, {} iteration(s) per cell",
        args.scale.0, args.iters
    );
    let snapshot = perfsnap::run_matrix(args.scale, args.iters, |e| {
        eprintln!(
            "  {:>8} [{:^10}] {:>5}: {:>9} instrs in {:>8} us ({:>12.0} instrs/sec, \
             {} round(s), {} spill(s))",
            e.workload,
            e.config,
            e.regs,
            e.instrs,
            e.micros,
            e.instrs_per_sec,
            e.rounds,
            e.spilled_ranges
        );
    });
    eprintln!(
        "aggregate: {:.0} instrs/sec over {} cells ({} us total)",
        snapshot.aggregate_instrs_per_sec(),
        snapshot.entries.len(),
        snapshot.total_micros()
    );

    if let Err(e) = std::fs::write(&args.out, snapshot.to_json() + "\n") {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", args.out);

    if let Some(path) = &args.check {
        return check_against(path, &snapshot, args.threshold);
    }
    ExitCode::SUCCESS
}

fn check_against(path: &str, current: &BenchSnapshot, threshold: f64) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match perfsnap::parse_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cmp = match perfsnap::compare_snapshots(&baseline, current, threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot compare against {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &cmp.per_entry {
        let quality = if d.overhead_changed {
            "  [overhead changed!]"
        } else {
            ""
        };
        eprintln!(
            "  {:<28} {:>12.0} -> {:>12.0} instrs/sec ({:+.1}%){}",
            d.key, d.baseline_ips, d.current_ips, d.delta_pct, quality
        );
    }
    for key in &cmp.missing {
        eprintln!("  {key:<28} missing from this run");
    }
    if cmp.regressed {
        eprintln!(
            "REGRESSION: aggregate {:.0} instrs/sec vs baseline {:.0} \
             ({:+.1}% < -{threshold:.1}% threshold)",
            cmp.current_ips, cmp.baseline_ips, cmp.delta_pct
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "ok: aggregate {:.0} instrs/sec vs baseline {:.0} ({:+.1}%, \
             threshold {threshold:.1}%)",
            cmp.current_ips, cmp.baseline_ips, cmp.delta_pct
        );
        ExitCode::SUCCESS
    }
}
