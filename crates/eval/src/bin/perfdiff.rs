//! Diffs two `BENCH_*.json` snapshots section by section.
//!
//! ```text
//! perfdiff <baseline.json> <current.json> [--json] [--gate <pct>] [--all]
//! ```
//!
//! * positional — the baseline and current snapshot files. Both must be
//!   the current schema version and the same workload scale.
//! * `--json` — emit the full diff as one JSON document instead of the
//!   aligned text table.
//! * `--gate <pct>` — exit 1 when any metric moved in its *bad*
//!   direction (per-metric polarity: latency up, throughput down, …) by
//!   more than `<pct>` percent of the baseline. Informational metrics
//!   (alert fire counts, resident bytes) never gate.
//! * `--all` — include unchanged metrics in the table (by default only
//!   changed rows print).
//!
//! Unlike the `perf` / `par` / `quality` gates — which each watch one
//! section with a purpose-built threshold — this is the general tool:
//! *everything* that differs between the two files, with direction.

use std::process::ExitCode;

use ccra_eval::perfdiff::diff_snapshots;
use ccra_eval::perfsnap::parse_snapshot;

struct Args {
    baseline: String,
    current: String,
    json: bool,
    gate: Option<f64>,
    all: bool,
}

fn usage() -> ! {
    eprintln!("usage: perfdiff <baseline.json> <current.json> [--json] [--gate <pct>] [--all]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut json = false;
    let mut gate = None;
    let mut all = false;

    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--all" => {
                all = true;
                i += 1;
            }
            "--gate" => {
                let pct: f64 = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if pct.is_nan() || pct < 0.0 {
                    usage();
                }
                gate = Some(pct);
                i += 2;
            }
            flag if flag.starts_with("--") => usage(),
            _ => {
                positional.push(argv[i].clone());
                i += 1;
            }
        }
    }
    if positional.len() != 2 {
        usage();
    }
    let mut it = positional.into_iter();
    Args {
        baseline: it.next().unwrap(),
        current: it.next().unwrap(),
        json,
        gate,
        all,
    }
}

fn load(path: &str) -> Result<ccra_eval::perfsnap::BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = parse_args();
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perfdiff: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = match diff_snapshots(&baseline, &current) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perfdiff: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", diff.to_value().to_json());
    } else {
        print!("{}", diff.render(args.all));
    }

    if let Some(pct) = args.gate {
        let regressions = diff.regressions(pct);
        if !regressions.is_empty() {
            eprintln!(
                "perfdiff: {} metric(s) regressed beyond {pct}%:",
                regressions.len()
            );
            for r in regressions {
                eprintln!(
                    "  {} {} {}: {:.3} -> {:.3} ({:+.2}%)",
                    r.section, r.key, r.metric, r.baseline, r.current, r.delta_pct
                );
            }
            return ExitCode::FAILURE;
        }
        println!("perfdiff: no regressions beyond {pct}%");
    }
    ExitCode::SUCCESS
}
