//! Ablation: the three priority-based color orderings (§9.1).
fn main() {
    let t = ccra_eval::experiments::ablations::priority_orderings(ccra_eval::scale_from_args());
    ccra_eval::emit(&[t], ccra_eval::format_from_args());
}
