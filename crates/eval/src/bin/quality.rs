//! Runs the fixed allocation-quality matrix and writes its scores into a
//! schema-versioned snapshot's `quality` section, optionally gating
//! against a committed baseline.
//!
//! ```text
//! quality [--scale <f64>] [--out <file.json>] [--into <file.json>]
//!         [--check <baseline.json>] [--threshold <pct>]
//!         [--degrade <workload>]
//! ```
//!
//! * `--scale` — workload scale (default 1.0, or the `BENCH_SCALE`
//!   environment variable; the flag wins).
//! * `--out` — write a standalone snapshot here (default
//!   `BENCH_<version>_quality.json`).
//! * `--into` — instead of a standalone snapshot, replace the `quality`
//!   section of an existing snapshot and rewrite it in place (the way a
//!   CI run folds quality scores into the `perf` snapshot).
//! * `--check` — compare against a baseline snapshot's `quality`
//!   section; exit 1 when any cell (or the aggregate) estimates more
//!   than `--threshold` percent more execution cycles (default 10).
//!   Scale and schema version must match the baseline.
//! * `--degrade` — allocate the named workload with the spill-everything
//!   fallback: an injected regression that must make `--check` fail
//!   (proving the gate fires; see the CI `quality` job).

use std::process::ExitCode;

use ccra_eval::perfsnap::{self, BenchSnapshot, HostInfo, BENCH_SCHEMA_VERSION};
use ccra_eval::quality::{compare_quality, run_quality_matrix};
use ccra_workloads::Scale;
use serde::Serialize;

struct Args {
    scale: Scale,
    out: String,
    into: Option<String>,
    check: Option<String>,
    threshold: f64,
    degrade: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: quality [--scale <f64>] [--out <file.json>] [--into <file.json>] \
         [--check <baseline.json>] [--threshold <pct>] [--degrade <workload>]"
    );
    eprintln!("the BENCH_SCALE environment variable sets the default scale");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .map_or(Scale(1.0), Scale);
    let mut out = format!("BENCH_{BENCH_SCHEMA_VERSION}_quality.json");
    let mut into = None;
    let mut check = None;
    let mut threshold = 10.0;
    let mut degrade = None;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--out" => {
                out = take(i).to_string();
                i += 2;
            }
            "--into" => {
                into = Some(take(i).to_string());
                i += 2;
            }
            "--check" => {
                check = Some(take(i).to_string());
                i += 2;
            }
            "--threshold" => {
                threshold = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--degrade" => {
                degrade = Some(take(i).to_string());
                i += 2;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        scale,
        out,
        into,
        check,
        threshold,
        degrade,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    eprintln!(
        "quality: schema v{BENCH_SCHEMA_VERSION}, scale {}{}",
        args.scale.0,
        args.degrade
            .as_deref()
            .map(|w| format!(", degrading {w} (injected regression)"))
            .unwrap_or_default()
    );
    let entries = match run_quality_matrix(args.scale, args.degrade.as_deref(), |e| {
        eprintln!(
            "  {:>8} [{:^10}] {:>5}: {:>12.0} est cycles, {:>10.0} measured overhead ops, \
             drift {:>+7.1}%{}",
            e.workload,
            e.config,
            e.regs,
            e.estimated_cycles,
            e.measured_overhead_ops,
            e.drift_pct,
            if e.replay_ok { "" } else { "  [replay failed]" }
        );
    }) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("allocation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total: f64 = entries.iter().map(|e| e.estimated_cycles).sum();
    eprintln!(
        "aggregate: {:.0} estimated cycles over {} cells",
        total,
        entries.len()
    );

    let write_result = match &args.into {
        Some(path) => merge_into(path, &entries, args.scale),
        None => {
            let snapshot = BenchSnapshot {
                schema_version: BENCH_SCHEMA_VERSION,
                scale: args.scale.0,
                iters: 1,
                host: HostInfo::detect(&[]),
                entries: Vec::new(),
                parallel: Vec::new(),
                latency: Vec::new(),
                admission: Vec::new(),
                quality: entries.clone(),
                cache: Vec::new(),
                alerts: Vec::new(),
            };
            std::fs::write(&args.out, snapshot.to_json() + "\n")
                .map(|()| args.out.clone())
                .map_err(|e| format!("cannot write {}: {e}", args.out))
        }
    };
    let written = match write_result {
        Ok(path) => {
            eprintln!("wrote {path}");
            path
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.check {
        return check_against(path, &entries, args.scale, args.threshold, &written);
    }
    ExitCode::SUCCESS
}

/// Replaces the `quality` section of an existing snapshot in place.
fn merge_into(
    path: &str,
    entries: &[perfsnap::QualityEntry],
    scale: Scale,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshot = perfsnap::parse_snapshot(&text).map_err(|e| format!("{path}: {e}"))?;
    if snapshot.scale != scale.0 {
        return Err(format!(
            "scale mismatch: {path} was run at scale {}, this run is {}",
            snapshot.scale, scale.0
        ));
    }
    snapshot.quality = entries.to_vec();
    std::fs::write(path, snapshot.to_json() + "\n")
        .map(|()| path.to_string())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

fn check_against(
    path: &str,
    entries: &[perfsnap::QualityEntry],
    scale: Scale,
    threshold: f64,
    written: &str,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match perfsnap::parse_snapshot(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if baseline.scale != scale.0 {
        eprintln!(
            "scale mismatch: baseline {path} was run at scale {}, this run is {}",
            baseline.scale, scale.0
        );
        return ExitCode::FAILURE;
    }
    let cmp = match compare_quality(&baseline.quality, entries, threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot compare against {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &cmp.per_entry {
        eprintln!(
            "  {:<28} {:>12.0} -> {:>12.0} est cycles ({:+.1}%){}",
            d.key,
            d.baseline_cycles,
            d.current_cycles,
            d.delta_pct,
            if d.exceeded { "  [regressed!]" } else { "" }
        );
    }
    for key in &cmp.missing {
        eprintln!("  {key:<28} missing from this run");
    }
    if cmp.regressed {
        eprintln!(
            "QUALITY REGRESSION: aggregate {:.0} est cycles vs baseline {:.0} \
             ({:+.1}%, threshold {threshold:.1}%); snapshot at {written}",
            cmp.current_cycles, cmp.baseline_cycles, cmp.delta_pct
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "ok: aggregate {:.0} est cycles vs baseline {:.0} ({:+.1}%, \
             threshold {threshold:.1}%)",
            cmp.current_cycles, cmp.baseline_cycles, cmp.delta_pct
        );
        ExitCode::SUCCESS
    }
}
