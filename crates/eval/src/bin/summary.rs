//! The paper's headline claims, recomputed live: one condensed
//! claim-vs-measured report (the executable companion of EXPERIMENTS.md).
//!
//! Flags: `--scale <f64>`.

use ccra_analysis::FreqMode;
use ccra_eval::{Bench, Table};
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::SpecProgram;

fn main() {
    let scale = ccra_eval::scale_from_args();
    let full = RegisterFile::mips_full();
    let mut t = Table::new(
        "Headline claims of Lueh & Gross (PLDI 1997), recomputed on the synthetic workloads",
        vec!["claim".into(), "paper".into(), "measured".into()],
    );

    // Claim 1: improved Chaitin cuts ear/eqntott overhead by a large factor.
    for (prog, paper) in [
        (SpecProgram::Ear, "45x (55x)"),
        (SpecProgram::Eqntott, "66x"),
    ] {
        let b = Bench::load(prog, scale);
        let base = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::base())
            .total();
        let imp = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::improved())
            .total();
        t.push_row(vec![
            format!("{prog}: base/improved at full machine"),
            paper.into(),
            format!("{:.1}x", base / imp.max(1e-9)),
        ]);
    }

    // Claim 2: more registers can worsen the base allocator (Figure 2).
    {
        let b = Bench::load(SpecProgram::Eqntott, scale);
        let totals: Vec<f64> = RegisterFile::paper_sweep()
            .iter()
            .map(|&f| {
                b.overhead(FreqMode::Dynamic, f, &AllocatorConfig::base())
                    .total()
            })
            .collect();
        let worsens = totals.windows(2).any(|w| w[1] > w[0] * 1.001);
        t.push_row(vec![
            "eqntott: adding registers can increase base cost".into(),
            "yes".into(),
            if worsens { "yes".into() } else { "no".into() },
        ]);
    }

    // Claim 3: call cost dominates once spilling vanishes.
    {
        let b = Bench::load(SpecProgram::Ear, scale);
        let o = b.overhead(FreqMode::Dynamic, full, &AllocatorConfig::base());
        t.push_row(vec![
            "ear: call-cost share of base overhead at full machine".into(),
            "dominant".into(),
            format!("{:.0}%", 100.0 * o.call_cost() / o.total().max(1e-9)),
        ]);
    }

    // Claim 4: optimistic coloring changes little under the call-cost model.
    {
        let b = Bench::load(SpecProgram::Li, scale);
        let base = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::base())
            .total();
        let opt = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::optimistic())
            .total();
        t.push_row(vec![
            "li: base/optimistic at full machine".into(),
            "~1.00".into(),
            format!("{:.2}", base / opt.max(1e-9)),
        ]);
    }

    // Claim 5: tomcatv is untouched by every technique.
    {
        let b = Bench::load(SpecProgram::Tomcatv, scale);
        let base = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::base())
            .total();
        let imp = b
            .overhead(FreqMode::Dynamic, full, &AllocatorConfig::improved())
            .total();
        let ratio = if imp == 0.0 && base == 0.0 {
            1.0
        } else {
            base / imp.max(1e-9)
        };
        t.push_row(vec![
            "tomcatv: base/improved (class 4)".into(),
            "1.00".into(),
            format!("{ratio:.2}"),
        ]);
    }

    // Claim 6: CBH starves for callee-save registers.
    {
        let b = Bench::load(SpecProgram::Matrix300, scale);
        let file = RegisterFile::new(7, 5, 1, 1);
        let base = b
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let cbh = b
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::cbh())
            .total();
        t.push_row(vec![
            "matrix300: base/CBH with scarce callee-saves".into(),
            "< 1.00".into(),
            format!("{:.2}", base / cbh.max(1e-9)),
        ]);
    }

    // Claim 7: execution-time speedups are single-digit percentages.
    {
        let pct = ccra_eval::experiments::tab4::speedup_percent(SpecProgram::Sc, scale);
        t.push_row(vec![
            "sc: cycle-model speedup, improved vs optimistic".into(),
            "4.4%".into(),
            format!("{pct:.1}%"),
        ]);
    }

    ccra_eval::emit(&[t], ccra_eval::format_from_args());
}
