//! Regenerates Table 3 of the paper (dynamic information). Flags:
//! `--scale <f64>`, `--format text|csv|json|chart`.
fn main() {
    let t = ccra_eval::experiments::tab2_tab3::run_mode(
        ccra_analysis::FreqMode::Dynamic,
        ccra_eval::scale_from_args(),
    );
    ccra_eval::emit(&[t], ccra_eval::format_from_args());
}
