//! Captures a driver timeline: runs one workload through
//! [`ccra_regalloc::ParallelDriver`] with timeline collection enabled and
//! writes the merged per-worker schedule as Chrome Trace Event Format
//! JSON — load the file in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` to see one lane per worker, job spans with nested
//! pipeline phases, steal instants, and queue-depth counter tracks.
//!
//! ```text
//! timeline [<workload>] [--workers <n>] [--config <name>] [--scale <f64>]
//!          [--out <trace.json>] [--stats]
//! ```
//!
//! * `<workload>` — a SPEC92-like program name, or `fuzzN` for a
//!   deterministic N-function program (default `li`, the widest fig-7
//!   workload: 4 functions, so 4 workers all get a job).
//! * `--workers` — driver threads (default 4; clamped to the function
//!   count, and the validation tracks the actual count used).
//! * `--config` — allocator configuration label (default `improved`).
//! * `--scale` — workload scale (default 1.0).
//! * `--out` — where to write the trace JSON (default `trace.json`).
//! * `--stats` — print the per-worker busy/idle/steal breakdown and the
//!   slowest job (the batch's tail latency) on stderr.
//!
//! The binary validates its own output before exiting — the written file
//! is re-read, parsed, and checked for one lane per worker plus the
//! driver lane, job spans, nested phase spans, and a queue-depth counter
//! track — so CI's smoke step is just running it.

use std::process::ExitCode;

use ccra_eval::timeline::{build_workload, run_traced, validate_chrome_trace, DEFAULT_WORKLOAD};
use ccra_regalloc::trace::chrometrace::to_chrome_trace_json;
use ccra_regalloc::{AllocatorConfig, PriorityOrdering};
use ccra_workloads::{Scale, SpecProgram};

struct Args {
    workload: String,
    workers: usize,
    config: AllocatorConfig,
    scale: Scale,
    out: String,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: timeline [<workload>] [--workers <n>] [--config base|improved|optimistic|\
         improved-optimistic|priority|cbh] [--scale <f64>] [--out <trace.json>] [--stats]"
    );
    eprintln!(
        "workloads: {}, fuzzN (default {DEFAULT_WORKLOAD})",
        SpecProgram::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

fn parse_config(name: &str) -> Option<AllocatorConfig> {
    Some(match name {
        "base" => AllocatorConfig::base(),
        "improved" => AllocatorConfig::improved(),
        "optimistic" => AllocatorConfig::optimistic(),
        "improved-optimistic" => AllocatorConfig::improved_optimistic(),
        "priority" => AllocatorConfig::priority(PriorityOrdering::Sorting),
        "cbh" => AllocatorConfig::cbh(),
        _ => return None,
    })
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut workers = 4usize;
    let mut config = AllocatorConfig::improved();
    let mut scale = Scale(1.0);
    let mut out = "trace.json".to_string();
    let mut stats = false;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--workers" => {
                workers = take(i).parse().unwrap_or_else(|_| usage());
                if workers == 0 {
                    usage();
                }
                i += 2;
            }
            "--config" => {
                config = parse_config(take(i)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--out" => {
                out = take(i).to_string();
                i += 2;
            }
            "--stats" => {
                stats = true;
                i += 1;
            }
            "--help" | "-h" => usage(),
            name if workload.is_none() && !name.starts_with('-') => {
                workload = Some(name.to_string());
                i += 1;
            }
            _ => usage(),
        }
    }
    Args {
        workload: workload.unwrap_or_else(|| DEFAULT_WORKLOAD.to_string()),
        workers,
        config,
        scale,
        out,
        stats,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    let Some(program) = build_workload(&args.workload, args.scale) else {
        eprintln!("unknown workload `{}`", args.workload);
        usage();
    };
    let (timeline, report) = match run_traced(&program, args.workers, &args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", args.workload);
            return ExitCode::FAILURE;
        }
    };
    if report.workers != args.workers {
        eprintln!(
            "note: {} has {} function(s); using {} worker(s)",
            args.workload,
            report.statuses.len(),
            report.workers
        );
    }

    let json = to_chrome_trace_json(&timeline);
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    // Validate what actually landed on disk, so CI can trust the file by
    // trusting the exit code.
    let written = match std::fs::read_to_string(&args.out) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot re-read {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate_chrome_trace(&written, report.workers) {
        eprintln!("{}: invalid trace: {e}", args.out);
        return ExitCode::FAILURE;
    }

    eprintln!(
        "{} [{}] @ scale {}: {} timeline event(s) -> {}",
        args.workload,
        args.config.label(),
        args.scale.0,
        timeline.events.len(),
        args.out
    );
    eprintln!("driver: {}", report.summary());
    if args.stats {
        eprintln!("{}", timeline.summary());
    }
    ExitCode::SUCCESS
}
