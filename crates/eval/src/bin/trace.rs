//! Runs one allocation with telemetry enabled and emits the event stream
//! as JSON Lines: phase timings, per-round graph stats, per-range decision
//! records, spill stats, and function/program summaries.
//!
//! ```text
//! trace <workload> [--config <name>] [--scale <f64>] [--regs Ri Ei Rf Ef]
//!       [--out <file.jsonl>] [--check <baseline.jsonl>] [--threshold <pct>]
//! ```
//!
//! * `<workload>` — a SPEC92-like program name (`eqntott`, `ear`, …).
//! * `--config` — `base`, `improved`, `optimistic`, `improved-optimistic`,
//!   `priority`, or `cbh` (default `improved`).
//! * `--regs` — caller-int, callee-int, caller-float, callee-float bank
//!   sizes (default the full MIPS file).
//! * `--out` — write the JSONL stream to a file instead of stdout.
//! * `--check` — diff this run against a baseline JSONL; exit 1 when total
//!   weighted overhead regresses beyond `--threshold` percent (default 5).
//!   Wall-clock changes only warn: they are machine-dependent.

use std::process::ExitCode;

use ccra_analysis::FrequencyInfo;
use ccra_eval::telemetry;
use ccra_machine::RegisterFile;
use ccra_regalloc::{
    allocate_program_traced, trace::parse_jsonl, AllocSink, AllocatorConfig, JsonlSink,
    PriorityOrdering, RecordingSink,
};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};
use serde::Serialize;

struct Args {
    program: SpecProgram,
    config: AllocatorConfig,
    scale: Scale,
    file: RegisterFile,
    out: Option<String>,
    check: Option<String>,
    threshold: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace <workload> [--config base|improved|optimistic|improved-optimistic|\
         priority|cbh] [--scale <f64>] [--regs <caller-int> <callee-int> \
         <caller-float> <callee-float>] [--out <file>] \
         [--check <baseline.jsonl>] [--threshold <pct>]"
    );
    eprintln!(
        "workloads: {}",
        SpecProgram::ALL.map(|p| p.name()).join(", ")
    );
    std::process::exit(2);
}

fn parse_config(name: &str) -> Option<AllocatorConfig> {
    Some(match name {
        "base" => AllocatorConfig::base(),
        "improved" => AllocatorConfig::improved(),
        "optimistic" => AllocatorConfig::optimistic(),
        "improved-optimistic" => AllocatorConfig::improved_optimistic(),
        "priority" => AllocatorConfig::priority(PriorityOrdering::Sorting),
        "cbh" => AllocatorConfig::cbh(),
        _ => return None,
    })
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut program = None;
    let mut config = AllocatorConfig::improved();
    let mut scale = Scale(1.0);
    let mut file = RegisterFile::mips_full();
    let mut out = None;
    let mut check = None;
    let mut threshold = 5.0;

    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| -> &str {
            argv.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--config" => {
                config = parse_config(take(i)).unwrap_or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                scale = Scale(take(i).parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--regs" => {
                let v: Vec<u8> = argv[i + 1..]
                    .iter()
                    .take(4)
                    .filter_map(|s| s.parse().ok())
                    .collect();
                if v.len() != 4 {
                    usage();
                }
                if v[0] < 6 || v[2] < 4 {
                    eprintln!(
                        "error: --regs {} {} {} {} is below the MIPS calling-convention \
                         minimum (caller-int >= 6, caller-float >= 4)",
                        v[0], v[1], v[2], v[3]
                    );
                    std::process::exit(2);
                }
                file = RegisterFile::new(v[0], v[2], v[1], v[3]);
                i += 5;
            }
            "--out" => {
                out = Some(take(i).to_string());
                i += 2;
            }
            "--check" => {
                check = Some(take(i).to_string());
                i += 2;
            }
            "--threshold" => {
                threshold = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            name if program.is_none() && !name.starts_with('-') => {
                program = SpecProgram::ALL.into_iter().find(|p| p.name() == name);
                if program.is_none() {
                    eprintln!("unknown workload `{name}`");
                    usage();
                }
                i += 1;
            }
            _ => usage(),
        }
    }
    let Some(program) = program else { usage() };
    Args {
        program,
        config,
        scale,
        file,
        out,
        check,
        threshold,
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    let ir = spec_program_scaled(args.program, args.scale);
    let freq = match FrequencyInfo::profile(&ir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}: failed to profile: {e}", args.program);
            return ExitCode::FAILURE;
        }
    };

    let mut sink = RecordingSink::new();
    let result = match allocate_program_traced(&ir, &freq, args.file, &args.config, &mut sink) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: allocation failed: {e}", args.program);
            return ExitCode::FAILURE;
        }
    };

    // Emit the stream.
    match &args.out {
        Some(path) => {
            let mut jsonl = match JsonlSink::create(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for e in &sink.events {
                jsonl.emit(e.clone());
            }
            if let Err(e) = jsonl.finish() {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            for e in &sink.events {
                println!("{}", e.to_json());
            }
        }
    }

    // A quick human-readable footer on stderr so the JSONL on stdout stays
    // machine-clean.
    eprintln!(
        "{} [{}] @ scale {}: {} events, total overhead {:.2}",
        args.program,
        args.config.label(),
        args.scale.0,
        sink.events.len(),
        result.overhead.total()
    );
    for (phase, micros) in telemetry::phase_totals(&sink.events) {
        eprintln!("  {phase:<13} {micros:>8} us");
    }

    // Baseline comparison.
    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_jsonl(&text) {
            Ok(events) => events,
            Err(e) => {
                eprintln!("cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match telemetry::compare(&baseline, &sink.events, args.threshold) {
            Ok(c) => {
                eprintln!("{}", c.verdict(args.threshold));
                eprintln!(
                    "  wall-clock {} us vs baseline {} us ({:+.1}%, informational)",
                    c.current_micros, c.baseline_micros, c.time_delta_pct
                );
                if c.regressed {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
