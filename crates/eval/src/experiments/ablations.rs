//! Ablations the paper discusses in prose rather than in a numbered
//! figure:
//!
//! * Section 9.1 — the three color orderings of priority-based coloring
//!   (nearly identical for most programs; "sorting" wins for ear and
//!   espresso);
//! * Section 4 — first-user vs shared callee-save cost attribution in
//!   storage-class analysis (shared is never worse);
//! * Section 5 — the two benefit-driven simplification keys (the delta key
//!   beats the priority-style max key for Chaitin-style coloring).

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::{AllocatorConfig, BsKey, CalleeCostModel, PriorityOrdering};
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// §9.1: compare the three priority-based color orderings.
pub fn priority_orderings(scale: Scale) -> Table {
    let mut table = Table::new(
        "§9.1 — priority-based color orderings (cells are base/X, geometric mean over sweep)",
        vec![
            "program".into(),
            "removing-unconstrained".into(),
            "sorting-unconstrained".into(),
            "sorting".into(),
        ],
    );
    let sweep = RegisterFile::paper_sweep();
    for prog in SpecProgram::ALL {
        let bench = Bench::load(prog, scale);
        let mut row = vec![prog.to_string()];
        for ordering in [
            PriorityOrdering::RemovingUnconstrained,
            PriorityOrdering::SortingUnconstrained,
            PriorityOrdering::Sorting,
        ] {
            let config = AllocatorConfig::priority(ordering);
            let mut log_sum = 0.0;
            let mut count = 0usize;
            for &file in &sweep {
                let base = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::base());
                let x = bench.overhead(FreqMode::Dynamic, file, &config);
                if x.total() > 0.0 && base.total() > 0.0 {
                    log_sum += (base.total() / x.total()).ln();
                    count += 1;
                }
            }
            let gm = if count > 0 {
                (log_sum / count as f64).exp()
            } else {
                1.0
            };
            row.push(format!("{gm:.2}"));
        }
        table.push_row(row);
    }
    table
}

/// §4: first-user vs shared callee-save cost model.
pub fn callee_cost_models(scale: Scale) -> Table {
    let mut table = Table::new(
        "§4 — callee-save cost models under SC (cells are base/X at (10,8,4,4), dynamic)",
        vec!["program".into(), "first-user".into(), "shared".into()],
    );
    let file = RegisterFile::new(10, 8, 4, 4);
    for prog in SpecProgram::ALL {
        let bench = Bench::load(prog, scale);
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let mut row = vec![prog.to_string()];
        for model in [CalleeCostModel::FirstUser, CalleeCostModel::Shared] {
            let config = AllocatorConfig {
                callee_cost_model: model,
                ..AllocatorConfig::with_improvements(true, false, false)
            };
            let x = bench.overhead(FreqMode::Dynamic, file, &config).total();
            row.push(ratio(base, x));
        }
        table.push_row(row);
    }
    table
}

/// §5: the two benefit-driven simplification keys.
pub fn bs_keys(scale: Scale) -> Table {
    let mut table = Table::new(
        "§5 — benefit-driven simplification keys (cells are base/X at (9,7,3,3), dynamic)",
        vec![
            "program".into(),
            "max-benefit".into(),
            "benefit-delta".into(),
        ],
    );
    let file = RegisterFile::new(9, 7, 3, 3);
    for prog in SpecProgram::ALL {
        let bench = Bench::load(prog, scale);
        let base = bench
            .overhead(FreqMode::Dynamic, file, &AllocatorConfig::base())
            .total();
        let mut row = vec![prog.to_string()];
        for key in [BsKey::MaxBenefit, BsKey::BenefitDelta] {
            let config = AllocatorConfig {
                benefit_simplify: Some(key),
                ..AllocatorConfig::with_improvements(true, true, true)
            };
            let x = bench.overhead(FreqMode::Dynamic, file, &config).total();
            row.push(ratio(base, x));
        }
        table.push_row(row);
    }
    table
}
