//! Figure 10: priority-based coloring (Chow, no splitting, sorting order)
//! versus improved Chaitin-style coloring, static and dynamic.
//!
//! Expected shapes: the two tie for alvinn/eqntott/gcc/li; improved
//! Chaitin wins for compress/ear/sc/doduc/nasa7/spice/tomcatv (priority
//! coloring packs live ranges less densely); no clear winner for
//! espresso/matrix300/fpppp.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::{AllocatorConfig, PriorityOrdering};
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// Runs the Figure 10 sweep for one program: both allocators, both modes,
/// every cell `base / X` (bigger = fewer overhead operations).
pub fn run_one(program: SpecProgram, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let mut table = Table::new(
        format!("Figure 10 — {program}: priority-based vs improved Chaitin (cells are base/X)"),
        vec![
            "(Ri,Rf,Ei,Ef)".into(),
            "improved(static)".into(),
            "priority(static)".into(),
            "improved(dynamic)".into(),
            "priority(dynamic)".into(),
        ],
    );
    let priority = AllocatorConfig::priority(PriorityOrdering::Sorting);
    for file in RegisterFile::paper_sweep() {
        let mut row = vec![file.to_string()];
        for mode in [FreqMode::Static, FreqMode::Dynamic] {
            let base = bench.overhead(mode, file, &AllocatorConfig::base()).total();
            let imp = bench
                .overhead(mode, file, &AllocatorConfig::improved())
                .total();
            let pri = bench.overhead(mode, file, &priority).total();
            row.push(ratio(base, imp));
            row.push(ratio(base, pri));
        }
        table.push_row(row);
    }
    table
}

/// Runs Figure 10 for the programs the paper plots.
pub fn run(scale: Scale) -> Vec<Table> {
    [
        SpecProgram::Alvinn,
        SpecProgram::Nasa7,
        SpecProgram::Fpppp,
        SpecProgram::Espresso,
        SpecProgram::Gcc,
    ]
    .iter()
    .map(|&p| run_one(p, scale))
    .collect()
}
