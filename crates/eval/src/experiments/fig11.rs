//! Figure 11: improved Chaitin-style coloring versus the CBH cost model.
//!
//! Expected shapes: CBH over-constrains register allocation when
//! callee-save registers are scarce (call-crossing live ranges may not use
//! caller-save registers at all), catching up only at generous callee-save
//! counts; improved Chaitin stays ahead for most programs because it can
//! pay caller-save cost on occasionally executed paths.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// Runs the Figure 11 sweep for one program: cells are `base / X`.
pub fn run_one(program: SpecProgram, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let mut table = Table::new(
        format!("Figure 11 — {program}: improved Chaitin vs CBH (cells are base/X)"),
        vec![
            "(Ri,Rf,Ei,Ef)".into(),
            "improved(static)".into(),
            "CBH(static)".into(),
            "improved(dynamic)".into(),
            "CBH(dynamic)".into(),
        ],
    );
    for file in RegisterFile::paper_sweep() {
        let mut row = vec![file.to_string()];
        for mode in [FreqMode::Static, FreqMode::Dynamic] {
            let base = bench.overhead(mode, file, &AllocatorConfig::base()).total();
            let imp = bench
                .overhead(mode, file, &AllocatorConfig::improved())
                .total();
            let cbh = bench.overhead(mode, file, &AllocatorConfig::cbh()).total();
            row.push(ratio(base, imp));
            row.push(ratio(base, cbh));
        }
        table.push_row(row);
    }
    table
}

/// Runs Figure 11 for the programs the paper plots.
pub fn run(scale: Scale) -> Vec<Table> {
    [
        SpecProgram::Alvinn,
        SpecProgram::Ear,
        SpecProgram::Li,
        SpecProgram::Matrix300,
        SpecProgram::Nasa7,
        SpecProgram::Gcc,
    ]
    .iter()
    .map(|&p| run_one(p, scale))
    .collect()
}
