//! Figure 2: register-allocation cost for eqntott and ear across register
//! combinations, split into the spill / caller-save / callee-save (and
//! shuffle) components, under the *base* Chaitin-style allocator.
//!
//! The paper's observations this experiment must reproduce:
//! * spill cost collapses once a moderate number of registers is available;
//! * call cost then *dominates* the remaining overhead;
//! * giving the base allocator more (callee-save) registers can make the
//!   total cost *worse*.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::Table;

/// Runs the Figure 2 sweep for one program.
pub fn run_one(program: SpecProgram, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let mut table = Table::new(
        format!(
            "Figure 2 — {} register-allocation cost (base Chaitin, dynamic)",
            program
        ),
        vec![
            "(Ri,Rf,Ei,Ef)".into(),
            "spill".into(),
            "caller-save".into(),
            "callee-save".into(),
            "shuffle".into(),
            "total".into(),
        ],
    );
    for file in RegisterFile::paper_sweep() {
        let o = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::base());
        table.push_row(vec![
            file.to_string(),
            format!("{:.0}", o.spill),
            format!("{:.0}", o.caller_save),
            format!("{:.0}", o.callee_save),
            format!("{:.0}", o.shuffle),
            format!("{:.0}", o.total()),
        ]);
    }
    table
}

/// Runs Figure 2 for both of the paper's programs (eqntott and ear).
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        run_one(SpecProgram::Eqntott, scale),
        run_one(SpecProgram::Ear, scale),
    ]
}
