//! Figure 6: the improvement of each enhancement combination (SC, BS, PR,
//! SC+BS, SC+PR, SC+BS+PR) over the base allocator, as a function of
//! register pressure.
//!
//! Every cell is `overhead(base) / overhead(combination)` — bigger is
//! better, 1.00 means no effect. The paper plots nasa7, ear, li, sc,
//! eqntott, and espresso; tomcatv (class 4) stays flat at 1.0.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// The combinations plotted in Figure 6, with their labels.
pub fn combinations() -> Vec<(String, AllocatorConfig)> {
    let combos = [
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, false),
        (true, false, true),
        (true, true, true),
    ];
    combos
        .iter()
        .map(|&(sc, bs, pr)| {
            let config = AllocatorConfig::with_improvements(sc, bs, pr);
            (config.label(), config)
        })
        .collect()
}

/// Runs the Figure 6 sweep for one program under one frequency mode.
pub fn run_one(program: SpecProgram, mode: FreqMode, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let combos = combinations();
    let mut headers = vec!["(Ri,Rf,Ei,Ef)".into()];
    headers.extend(combos.iter().map(|(l, _)| l.clone()));
    let mut table = Table::new(
        format!("Figure 6 — {program} base/improved overhead ratio ({mode})"),
        headers,
    );
    for file in RegisterFile::paper_sweep() {
        let base = bench.overhead(mode, file, &AllocatorConfig::base()).total();
        let mut row = vec![file.to_string()];
        for (_, config) in &combos {
            let improved = bench.overhead(mode, file, config).total();
            row.push(ratio(base, improved));
        }
        table.push_row(row);
    }
    table
}

/// Runs Figure 6 for the paper's representative programs (dynamic mode, as
/// in the paper's main plots).
pub fn run(scale: Scale) -> Vec<Table> {
    [
        SpecProgram::Nasa7,
        SpecProgram::Ear,
        SpecProgram::Li,
        SpecProgram::Sc,
        SpecProgram::Eqntott,
        SpecProgram::Espresso,
        SpecProgram::Tomcatv,
    ]
    .iter()
    .map(|&p| run_one(p, FreqMode::Dynamic, scale))
    .collect()
}
