//! Figure 7: the register overhead of *improved* register allocation for
//! ear and eqntott — the counterpart of Figure 2, demonstrating the
//! 45–66× reduction the paper reports at generous register counts.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// Runs Figure 7 for one program.
pub fn run_one(program: SpecProgram, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let mut table = Table::new(
        format!("Figure 7 — {program} overhead under improved allocation (dynamic)"),
        vec![
            "(Ri,Rf,Ei,Ef)".into(),
            "spill".into(),
            "caller-save".into(),
            "callee-save".into(),
            "shuffle".into(),
            "total".into(),
            "base/improved".into(),
        ],
    );
    for file in RegisterFile::paper_sweep() {
        let improved = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::improved());
        let base = bench.overhead(FreqMode::Dynamic, file, &AllocatorConfig::base());
        table.push_row(vec![
            file.to_string(),
            format!("{:.0}", improved.spill),
            format!("{:.0}", improved.caller_save),
            format!("{:.0}", improved.callee_save),
            format!("{:.0}", improved.shuffle),
            format!("{:.0}", improved.total()),
            ratio(base.total(), improved.total()),
        ]);
    }
    table
}

/// Runs Figure 7 for ear and eqntott.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        run_one(SpecProgram::Ear, scale),
        run_one(SpecProgram::Eqntott, scale),
    ]
}
