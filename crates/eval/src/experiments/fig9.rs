//! Figure 9: optimistic vs improved vs improved+optimistic coloring for
//! fpppp under static estimates.
//!
//! Expected shape: optimistic coloring helps at *small* register counts
//! (spilling dominates), improved Chaitin-style coloring helps at *large*
//! register counts (call cost dominates), and their combination shows each
//! effect in its regime.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// Runs the Figure 9 sweep.
pub fn run_one(program: SpecProgram, mode: FreqMode, scale: Scale) -> Table {
    let bench = Bench::load(program, scale);
    let mut table = Table::new(
        format!("Figure 9 — {program}: optimistic vs improved ({mode}); cells are base/X"),
        vec![
            "(Ri,Rf,Ei,Ef)".into(),
            "optimistic".into(),
            "improved".into(),
            "improved+optimistic".into(),
        ],
    );
    for file in RegisterFile::paper_sweep() {
        let base = bench.overhead(mode, file, &AllocatorConfig::base()).total();
        let opt = bench
            .overhead(mode, file, &AllocatorConfig::optimistic())
            .total();
        let imp = bench
            .overhead(mode, file, &AllocatorConfig::improved())
            .total();
        let both = bench
            .overhead(mode, file, &AllocatorConfig::improved_optimistic())
            .total();
        table.push_row(vec![
            file.to_string(),
            ratio(base, opt),
            ratio(base, imp),
            ratio(base, both),
        ]);
    }
    table
}

/// Runs Figure 9 as in the paper (fpppp, static information).
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_one(SpecProgram::Fpppp, FreqMode::Static, scale)]
}
