//! One module per table/figure of the paper, plus two ablations.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod tab2_tab3;
pub mod tab4;

mod smoke_tests;
