//! Smoke tests: every experiment driver runs end-to-end at a tiny scale
//! and produces structurally complete tables.

#![cfg(test)]

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_workloads::{Scale, SpecProgram};

use super::*;

const S: Scale = Scale(0.03);

fn assert_full_sweep(table: &crate::Table, cols: usize) {
    assert_eq!(
        table.rows.len(),
        RegisterFile::paper_sweep().len(),
        "{}",
        table.title
    );
    for row in &table.rows {
        assert_eq!(row.len(), cols, "{}: ragged row {row:?}", table.title);
    }
}

#[test]
fn fig2_produces_component_breakdown() {
    let t = fig2::run_one(SpecProgram::Eqntott, S);
    assert_full_sweep(&t, 6);
    // total = sum of components in every row.
    for (i, row) in t.rows.iter().enumerate() {
        let vals = t
            .parse_row_from(i, 1)
            .unwrap_or_else(|e| panic!("malformed table output: {e}"));
        let total: f64 = vals[..4].iter().sum();
        assert!(
            (total - vals[4]).abs() <= 2.0,
            "components don't sum: {row:?}"
        );
    }
}

#[test]
fn fig6_has_six_combinations() {
    let t = fig6::run_one(SpecProgram::Li, FreqMode::Dynamic, S);
    assert_full_sweep(&t, 7);
    assert_eq!(fig6::combinations().len(), 6);
}

#[test]
fn fig7_ratio_column_is_positive() {
    let t = fig7::run_one(SpecProgram::Ear, S);
    assert_full_sweep(&t, 7);
    for i in 0..t.rows.len() {
        let ratio = t
            .parse_cell(i, 6)
            .unwrap_or_else(|e| panic!("malformed table output: {e}"));
        assert!(ratio > 0.0, "{:?}", t.rows[i]);
    }
}

#[test]
fn tables_2_and_3_cover_all_programs() {
    for mode in [FreqMode::Static, FreqMode::Dynamic] {
        let t = tab2_tab3::run_mode(mode, S);
        assert_eq!(t.rows.len(), SpecProgram::ALL.len());
        assert_eq!(t.headers.len(), 1 + RegisterFile::paper_sweep().len());
    }
}

#[test]
fn fig9_to_fig11_run() {
    assert_full_sweep(&fig9::run_one(SpecProgram::Fpppp, FreqMode::Static, S), 4);
    assert_full_sweep(&fig10::run_one(SpecProgram::Alvinn, S), 5);
    assert_full_sweep(&fig11::run_one(SpecProgram::Li, S), 5);
}

#[test]
fn tab4_produces_percentages() {
    let tables = tab4::run(S);
    assert_eq!(tables.len(), 1);
    let row = &tables[0].rows[0];
    assert_eq!(row.len(), 5);
    for cell in row {
        assert!(cell.ends_with('%'), "{cell}");
    }
}

#[test]
fn ablations_cover_all_programs() {
    for t in [
        ablations::priority_orderings(S),
        ablations::callee_cost_models(S),
        ablations::bs_keys(S),
    ] {
        assert_eq!(t.rows.len(), SpecProgram::ALL.len(), "{}", t.title);
    }
}
