//! Tables 2 and 3: base-Chaitin / optimistic overhead ratios for every
//! program across the register sweep, under static (Table 2) and dynamic
//! (Table 3) frequency information.
//!
//! The paper's headline observation: once call cost is part of the cost
//! model, optimistic coloring *often makes things worse* (ratios < 1.00),
//! and even its wins are small except for fpppp under static estimates.

use ccra_analysis::FreqMode;
use ccra_machine::RegisterFile;
use ccra_regalloc::AllocatorConfig;
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::{ratio, Table};

/// Runs one of the two tables.
pub fn run_mode(mode: FreqMode, scale: Scale) -> Table {
    let sweep = RegisterFile::paper_sweep();
    let number = match mode {
        FreqMode::Static => 2,
        FreqMode::Dynamic => 3,
    };
    let mut headers = vec!["program".into()];
    headers.extend(sweep.iter().map(|f| f.to_string()));
    let mut table = Table::new(
        format!("Table {number} — base-Chaitin / optimistic overhead ({mode})"),
        headers,
    );
    for prog in SpecProgram::ALL {
        let bench = Bench::load(prog, scale);
        let mut row = vec![prog.to_string()];
        for &file in &sweep {
            let base = bench.overhead(mode, file, &AllocatorConfig::base()).total();
            let optimistic = bench
                .overhead(mode, file, &AllocatorConfig::optimistic())
                .total();
            row.push(ratio(base, optimistic));
        }
        table.push_row(row);
    }
    table
}

/// Runs both tables.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![
        run_mode(FreqMode::Static, scale),
        run_mode(FreqMode::Dynamic, scale),
    ]
}
