//! Table 4: execution-time speedup of the three enhancements over
//! optimistic coloring with all registers (26 int, 16 float).
//!
//! The paper measured wall-clock time on a DECstation 5000 and reports
//! speedups up to 4.4 %. We reproduce it with the cycle model of
//! [`ccra_machine::CycleModel`]: every useful instruction costs one cycle
//! and every memory-touching overhead operation two; both allocators' fully
//! rewritten programs are *executed* to count events.

use ccra_analysis::{run as interp_run, FreqMode, InterpConfig};
use ccra_ir::OverheadKind;
use ccra_machine::{CycleModel, RegisterFile};
use ccra_regalloc::{allocate_program, AllocatorConfig};
use ccra_workloads::{Scale, SpecProgram};

use crate::bench::Bench;
use crate::table::Table;

/// Simulated cycles of a fully allocated program.
pub fn simulated_cycles(bench: &Bench, config: &AllocatorConfig, file: RegisterFile) -> f64 {
    let out = allocate_program(&bench.ir, bench.freq(FreqMode::Dynamic), file, config)
        .expect("benchmark programs allocate");
    let stats =
        interp_run(&out.program, &InterpConfig::default()).expect("allocated program executes");
    let memory_ops = (stats.overhead(OverheadKind::Spill)
        + stats.overhead(OverheadKind::CallerSave)
        + stats.overhead(OverheadKind::CalleeSave)) as f64;
    // Shuffle copies already execute as (1-cycle) instructions in `steps`,
    // so the move component is not double-counted.
    CycleModel::decstation().cycles(stats.steps as f64, memory_ops, 0.0)
}

/// Runs Table 4 for one program: speedup (%) of improved over optimistic.
pub fn speedup_percent(program: SpecProgram, scale: Scale) -> f64 {
    let bench = Bench::load(program, scale);
    let file = RegisterFile::mips_full();
    let optimistic = simulated_cycles(&bench, &AllocatorConfig::optimistic(), file);
    let improved = simulated_cycles(&bench, &AllocatorConfig::improved(), file);
    (optimistic - improved) / improved * 100.0
}

/// Runs Table 4 for the paper's five programs.
pub fn run(scale: Scale) -> Vec<Table> {
    let programs = [
        SpecProgram::Compress,
        SpecProgram::Eqntott,
        SpecProgram::Li,
        SpecProgram::Sc,
        SpecProgram::Spice,
    ];
    let mut table = Table::new(
        "Table 4 — execution-time speedup of improved over optimistic, all registers (26 int, 16 float)",
        programs.iter().map(|p| p.to_string()).collect(),
    );
    let row = programs
        .iter()
        .map(|&p| format!("{:.1}%", speedup_percent(p, scale)))
        .collect();
    table.push_row(row);
    vec![table]
}
