//! Per-function allocation explanations.
//!
//! The allocator's decision records ([`Decision`]) say *what* happened to
//! each web — its storage class, its caller/callee benefits, its BS key,
//! its preference votes, and its final location. This module turns a
//! recorded event stream into per-function reports that also say *why*, in
//! a sentence a person can read: which cost comparison put the web in the
//! caller- or callee-save bank, and which mechanism colored or spilled it.
//!
//! The `explain` binary renders these reports as aligned text tables or as
//! JSON.

use ccra_regalloc::trace::{AllocEvent, Decision, FuncSummary};
use serde::{Deserialize, Serialize};

use crate::Table;

/// One web's decision record plus its human-readable explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainedDecision {
    /// The build→color→spill round the decision was made in.
    pub round: u32,
    /// The interference-graph node (web) id.
    pub node: u32,
    /// The register class (`"int"` / `"float"`).
    pub class: String,
    /// Estimated save/restore cost if caller-save ([`Decision`]).
    pub benefit_caller: f64,
    /// Estimated save/restore cost if callee-save.
    pub benefit_callee: f64,
    /// The benefit-driven simplification key used, if BS was on.
    pub bs_key: String,
    /// The BS key's value for this web, if BS was on.
    pub bs_value: Option<f64>,
    /// Preference votes this web received (PR).
    pub pref_votes: u32,
    /// Whether preference forced this web caller-save.
    pub pref_forced: bool,
    /// The final location (`"r3"`, `"spilled"`, …).
    pub loc: String,
    /// The allocator's machine-readable reason tag.
    pub reason: String,
    /// The human-readable explanation derived from the record.
    pub why: String,
}

/// One function's allocation, explained web by web.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncReport {
    /// The function's name.
    pub func: String,
    /// Rounds the allocation took (0 when no summary event was present).
    pub rounds: u32,
    /// Live ranges left spilled.
    pub spilled_ranges: u64,
    /// Callee-save registers the function ended up using.
    pub callee_regs_used: u64,
    /// Total weighted overhead of this function's allocation.
    pub overhead_total: f64,
    /// Every decision record, in emission order (final round last — the
    /// last record for a node id is the decision that stuck).
    pub decisions: Vec<ExplainedDecision>,
}

/// The reason-tag → prose mapping behind [`explain_decision`].
fn why(d: &Decision) -> String {
    let bank = if d.benefit_callee < d.benefit_caller {
        format!(
            "callee-save is cheaper ({:.1} vs {:.1})",
            d.benefit_callee, d.benefit_caller
        )
    } else {
        format!(
            "caller-save is cheaper ({:.1} vs {:.1})",
            d.benefit_caller, d.benefit_callee
        )
    };
    let sc = if d.pref_forced {
        format!("forced caller-save by {} preference vote(s)", d.pref_votes)
    } else {
        bank
    };
    match d.reason.as_str() {
        "colored" => format!("colored to {}: {}", d.loc, sc),
        "no_color" => {
            format!("spilled: simplification could not remove it and no color was left ({sc})")
        }
        "pressure_spill" => format!(
            "spilled during simplification: cheapest spill metric ({}={}) under pressure",
            d.bs_key,
            d.bs_value.map_or("-".to_string(), |v| format!("{v:.2}")),
        ),
        "sc_caller_spill" => {
            format!("spilled from the caller-save bank: {sc}, but the bank ran out")
        }
        "sc_callee_first_spill" | "callee_first_spill" => {
            format!("spilled from the callee-save bank before costlier webs: {sc}")
        }
        "sc_shared_spill" => format!("spilled from the shared bank: {sc}"),
        "bank_empty" => "spilled: its bank has no registers at all".to_string(),
        "negative_priority" => {
            "spilled: its priority (benefit per reference) is negative".to_string()
        }
        "no_free_reg" => "spilled: every register in its bank was live across it".to_string(),
        "spilled" => format!("spilled ({sc})"),
        other => format!("{other} ({sc})"),
    }
}

/// Explains one decision record.
pub fn explain_decision(d: &Decision) -> ExplainedDecision {
    ExplainedDecision {
        round: d.round,
        node: d.node,
        class: d.class.clone(),
        benefit_caller: d.benefit_caller,
        benefit_callee: d.benefit_callee,
        bs_key: d.bs_key.clone(),
        bs_value: d.bs_value,
        pref_votes: d.pref_votes,
        pref_forced: d.pref_forced,
        loc: d.loc.clone(),
        reason: d.reason.clone(),
        why: why(d),
    }
}

/// Groups a recorded event stream into per-function reports, in the order
/// functions first appear in the stream.
pub fn build_reports(events: &[AllocEvent]) -> Vec<FuncReport> {
    let mut reports: Vec<FuncReport> = Vec::new();
    let report_for = |func: &str, reports: &mut Vec<FuncReport>| -> usize {
        match reports.iter().position(|r| r.func == func) {
            Some(i) => i,
            None => {
                reports.push(FuncReport {
                    func: func.to_string(),
                    rounds: 0,
                    spilled_ranges: 0,
                    callee_regs_used: 0,
                    overhead_total: 0.0,
                    decisions: Vec::new(),
                });
                reports.len() - 1
            }
        }
    };
    for e in events {
        match e {
            AllocEvent::Decision(d) => {
                let i = report_for(&d.func, &mut reports);
                reports[i].decisions.push(explain_decision(d));
            }
            AllocEvent::Func(FuncSummary {
                func,
                rounds,
                spilled_ranges,
                callee_regs_used,
                spill,
                caller_save,
                callee_save,
                shuffle,
            }) => {
                let i = report_for(func, &mut reports);
                reports[i].rounds = *rounds;
                reports[i].spilled_ranges = *spilled_ranges as u64;
                reports[i].callee_regs_used = *callee_regs_used as u64;
                reports[i].overhead_total = spill + caller_save + callee_save + shuffle;
            }
            _ => {}
        }
    }
    reports
}

/// Renders one report as an aligned text table.
pub fn report_table(r: &FuncReport) -> Table {
    let mut t = Table::new(
        format!(
            "{} — {} round(s), {} spilled range(s), {} callee reg(s), overhead {:.2}",
            r.func, r.rounds, r.spilled_ranges, r.callee_regs_used, r.overhead_total
        ),
        ["round", "node", "class", "loc", "why"]
            .map(String::from)
            .to_vec(),
    );
    for d in &r.decisions {
        t.push_row(vec![
            d.round.to_string(),
            d.node.to_string(),
            d.class.clone(),
            d.loc.clone(),
            d.why.clone(),
        ]);
    }
    t
}

/// Serialises a report set as a JSON array.
pub fn reports_to_json(reports: &[FuncReport]) -> String {
    let items: Vec<String> = reports.iter().map(Serialize::to_json).collect();
    format!("[{}]", items.join(",\n"))
}

/// One web whose final decision differs between two reports, with the
/// decision dimensions that flipped (`"sc"` — the storage-class cost
/// comparison went the other way; `"bs"` — a different
/// benefit-driven-simplification key or value ordered it; `"pr"` — the
/// preference verdict changed; `"loc"` — it landed somewhere else).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionFlip {
    /// The interference-graph node (web) id.
    pub node: u32,
    /// The register class (`"int"` / `"float"`).
    pub class: String,
    /// Which decision dimensions flipped (see the struct docs).
    pub flipped: Vec<String>,
    /// The web's final location in the old report.
    pub old_loc: String,
    /// The web's final location in the new report.
    pub new_loc: String,
    /// The old report's explanation.
    pub old_why: String,
    /// The new report's explanation.
    pub new_why: String,
}

/// One function's quality delta between two reports, attributed to the
/// webs whose decisions flipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncDiff {
    /// The function's name.
    pub func: String,
    /// Old total weighted overhead.
    pub old_overhead: f64,
    /// New total weighted overhead.
    pub new_overhead: f64,
    /// `new_overhead - old_overhead` (positive = got costlier).
    pub delta: f64,
    /// Old spilled-range count.
    pub old_spilled: u64,
    /// New spilled-range count.
    pub new_spilled: u64,
    /// Webs whose final decision differs, in node order.
    pub flips: Vec<DecisionFlip>,
}

/// The join of two report sets (see [`diff_reports`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Functions present in both sets whose overhead or decisions
    /// changed, in old-report order.
    pub funcs: Vec<FuncDiff>,
    /// Functions only the old report has.
    pub only_old: Vec<String>,
    /// Functions only the new report has.
    pub only_new: Vec<String>,
    /// Sum of the per-function overhead deltas.
    pub total_delta: f64,
}

/// The final (last-emitted) decision per `(node, class)` — earlier rounds'
/// records for the same web are superseded.
fn final_decisions(r: &FuncReport) -> Vec<&ExplainedDecision> {
    let mut finals: Vec<&ExplainedDecision> = Vec::new();
    for d in &r.decisions {
        match finals
            .iter()
            .position(|f| f.node == d.node && f.class == d.class)
        {
            Some(i) => finals[i] = d,
            None => finals.push(d),
        }
    }
    finals.sort_by_key(|d| (d.class.clone(), d.node));
    finals
}

fn flip_of(old: &ExplainedDecision, new: &ExplainedDecision) -> Option<DecisionFlip> {
    let mut flipped = Vec::new();
    // SC: the storage-class cost comparison — did the cheaper bank change?
    if (old.benefit_callee < old.benefit_caller) != (new.benefit_callee < new.benefit_caller) {
        flipped.push("sc".to_string());
    }
    // BS: the simplification key or its value ordered the web differently.
    if old.bs_key != new.bs_key || old.bs_value != new.bs_value {
        flipped.push("bs".to_string());
    }
    // PR: the preference verdict changed.
    if old.pref_forced != new.pref_forced || old.pref_votes != new.pref_votes {
        flipped.push("pr".to_string());
    }
    // Location: it landed somewhere else (colored ↔ spilled included).
    if old.loc != new.loc || old.reason != new.reason {
        flipped.push("loc".to_string());
    }
    if flipped.is_empty() {
        return None;
    }
    Some(DecisionFlip {
        node: old.node,
        class: old.class.clone(),
        flipped,
        old_loc: old.loc.clone(),
        new_loc: new.loc.clone(),
        old_why: old.why.clone(),
        new_why: new.why.clone(),
    })
}

/// Joins two report sets per function and per web, attributing each
/// function's overhead delta to the webs whose final SC/BS/PR/location
/// decisions flipped between the runs. Functions whose overhead and
/// decisions are identical are dropped — an empty diff means the two
/// allocations are quality-equivalent.
pub fn diff_reports(old: &[FuncReport], new: &[FuncReport]) -> ReportDiff {
    let mut funcs = Vec::new();
    let mut only_old = Vec::new();
    let mut total_delta = 0.0;
    for o in old {
        let Some(n) = new.iter().find(|n| n.func == o.func) else {
            only_old.push(o.func.clone());
            continue;
        };
        let old_finals = final_decisions(o);
        let new_finals = final_decisions(n);
        let mut flips = Vec::new();
        for od in &old_finals {
            if let Some(nd) = new_finals
                .iter()
                .find(|nd| nd.node == od.node && nd.class == od.class)
            {
                flips.extend(flip_of(od, nd));
            }
        }
        let delta = n.overhead_total - o.overhead_total;
        total_delta += delta;
        if delta != 0.0 || !flips.is_empty() || o.spilled_ranges != n.spilled_ranges {
            funcs.push(FuncDiff {
                func: o.func.clone(),
                old_overhead: o.overhead_total,
                new_overhead: n.overhead_total,
                delta,
                old_spilled: o.spilled_ranges,
                new_spilled: n.spilled_ranges,
                flips,
            });
        }
    }
    let only_new = new
        .iter()
        .filter(|n| old.iter().all(|o| o.func != n.func))
        .map(|n| n.func.clone())
        .collect();
    ReportDiff {
        funcs,
        only_old,
        only_new,
        total_delta,
    }
}

/// Renders a diff as an aligned text table: one row per flipped web,
/// carrying its function's overhead delta on the first row.
pub fn diff_table(diff: &ReportDiff) -> Table {
    let mut t = Table::new(
        format!(
            "quality diff — {} function(s) changed, total overhead delta {:+.2}",
            diff.funcs.len(),
            diff.total_delta
        ),
        ["func", "Δoverhead", "node", "class", "flipped", "old → new"]
            .map(String::from)
            .to_vec(),
    );
    for f in &diff.funcs {
        if f.flips.is_empty() {
            t.push_row(vec![
                f.func.clone(),
                format!("{:+.2}", f.delta),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("(spilled {} → {})", f.old_spilled, f.new_spilled),
            ]);
        }
        for (i, flip) in f.flips.iter().enumerate() {
            t.push_row(vec![
                f.func.clone(),
                if i == 0 {
                    format!("{:+.2}", f.delta)
                } else {
                    String::new()
                },
                flip.node.to_string(),
                flip.class.clone(),
                flip.flipped.join("+"),
                format!("{} → {}", flip.old_loc, flip.new_loc),
            ]);
        }
    }
    for func in &diff.only_old {
        t.push_row(vec![
            func.clone(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "only-old".to_string(),
            String::new(),
        ]);
    }
    for func in &diff.only_new {
        t.push_row(vec![
            func.clone(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "only-new".to_string(),
            String::new(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::FrequencyInfo;
    use ccra_machine::RegisterFile;
    use ccra_regalloc::{allocate_program_traced, AllocatorConfig, RecordingSink};
    use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};

    fn record(config: &AllocatorConfig, file: RegisterFile) -> Vec<AllocEvent> {
        let ir = spec_program_scaled(SpecProgram::Eqntott, Scale(0.03));
        let freq = FrequencyInfo::profile(&ir).expect("profiles");
        let mut sink = RecordingSink::new();
        allocate_program_traced(&ir, &freq, file, config, &mut sink).expect("allocates");
        sink.events
    }

    #[test]
    fn reports_cover_every_function_and_decision() {
        let events = record(&AllocatorConfig::improved(), RegisterFile::new(8, 6, 2, 2));
        let reports = build_reports(&events);
        let funcs = events
            .iter()
            .filter(|e| matches!(e, AllocEvent::Func(_)))
            .count();
        assert_eq!(reports.len(), funcs, "one report per function summary");
        let decisions = events
            .iter()
            .filter(|e| matches!(e, AllocEvent::Decision(_)))
            .count();
        let explained: usize = reports.iter().map(|r| r.decisions.len()).sum();
        assert_eq!(explained, decisions, "every decision is explained");
        for r in &reports {
            assert!(r.rounds > 0, "{}: summary attached", r.func);
            for d in &r.decisions {
                assert!(!d.why.is_empty());
            }
        }
    }

    #[test]
    fn colored_and_spilled_webs_get_distinct_prose() {
        // A tight file forces both outcomes.
        let events = record(&AllocatorConfig::improved(), RegisterFile::new(6, 4, 1, 0));
        let reports = build_reports(&events);
        let all: Vec<&ExplainedDecision> = reports.iter().flat_map(|r| &r.decisions).collect();
        assert!(
            all.iter()
                .any(|d| d.reason == "colored" && d.why.starts_with("colored to")),
            "colored webs explained"
        );
        assert!(
            all.iter()
                .any(|d| d.loc == "spilled" && d.why.contains("spilled")),
            "spilled webs explained"
        );
    }

    #[test]
    fn reports_roundtrip_through_json() {
        let events = record(&AllocatorConfig::improved(), RegisterFile::new(8, 6, 2, 2));
        let reports = build_reports(&events);
        let json = reports_to_json(&reports);
        let value = serde::json::parse(&json).expect("valid JSON");
        let back = Vec::<FuncReport>::from_value(&value).expect("parses back");
        assert_eq!(back, reports);
    }

    #[test]
    fn diff_of_identical_reports_is_empty() {
        let events = record(&AllocatorConfig::improved(), RegisterFile::new(8, 6, 2, 2));
        let reports = build_reports(&events);
        let diff = diff_reports(&reports, &reports);
        assert!(diff.funcs.is_empty());
        assert!(diff.only_old.is_empty() && diff.only_new.is_empty());
        assert_eq!(diff.total_delta, 0.0);
    }

    #[test]
    fn diff_attributes_config_change_to_flipped_webs() {
        // base vs SC+BS+PR on a tight file: decisions genuinely flip.
        let file = RegisterFile::new(6, 4, 1, 0);
        let old = build_reports(&record(&AllocatorConfig::base(), file));
        let new = build_reports(&record(&AllocatorConfig::improved(), file));
        let diff = diff_reports(&old, &new);
        assert!(!diff.funcs.is_empty(), "configs differ somewhere");
        let flips: Vec<&DecisionFlip> = diff.funcs.iter().flat_map(|f| &f.flips).collect();
        assert!(!flips.is_empty(), "deltas are attributed to webs");
        for flip in &flips {
            assert!(!flip.flipped.is_empty());
            for kind in &flip.flipped {
                assert!(
                    ["sc", "bs", "pr", "loc"].contains(&kind.as_str()),
                    "unknown flip kind {kind}"
                );
            }
        }
        // The aggregate delta matches the per-function deltas.
        let sum: f64 = diff.funcs.iter().map(|f| f.delta).sum();
        assert!((sum - diff.total_delta).abs() < 1e-9);
        // And the table renders a row per flip.
        let t = diff_table(&diff);
        assert!(t.rows.len() >= flips.len());
        // A missing function is reported, not silently dropped.
        let partial = diff_reports(&old[..old.len() - 1], &new);
        assert_eq!(partial.only_new.len(), 1);
    }

    #[test]
    fn diff_roundtrips_through_json() {
        let file = RegisterFile::new(6, 4, 1, 0);
        let old = build_reports(&record(&AllocatorConfig::base(), file));
        let new = build_reports(&record(&AllocatorConfig::improved(), file));
        let diff = diff_reports(&old, &new);
        let value = serde::json::parse(&diff.to_json()).expect("valid JSON");
        let back = ReportDiff::from_value(&value).expect("parses back");
        assert_eq!(back, diff);
    }

    #[test]
    fn tables_render_one_row_per_decision() {
        let events = record(&AllocatorConfig::improved(), RegisterFile::new(8, 6, 2, 2));
        let reports = build_reports(&events);
        let r = &reports[0];
        let t = report_table(r);
        assert_eq!(t.rows.len(), r.decisions.len());
        assert!(t.title.contains(&r.func));
    }
}
