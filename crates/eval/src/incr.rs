//! The incremental re-allocation sweep behind the `incr` binary: allocate
//! a wide synthetic program cold, edit a fraction of its functions, and
//! re-allocate through a warm [`AllocCache`] — measuring what the
//! content-addressed memo cache buys and proving it never changes a
//! single output byte.
//!
//! Every cell of the sweep (dirty fraction × worker count) runs three
//! allocations of the *edited* program:
//!
//! 1. an uncached reference run — the cold time, and the oracle;
//! 2. a populate run of the *pre-edit* program into a fresh cache;
//! 3. the warm run through that cache — the measured time.
//!
//! The warm result is compared against the reference **inside the
//! sweep**: [`run_incr_sweep`] returns an error (and the binary exits
//! nonzero) on the first byte that differs, so a warm number for a wrong
//! allocation can never reach a snapshot. `--poison` (see
//! [`ccra_regalloc::CacheConfig::poison`]) collapses every cache key and
//! exists to prove in CI that this gate actually fires.
//!
//! Hit rates are deterministic — an edited function misses, an untouched
//! one hits — so [`check_cache`] gates them exactly against the committed
//! baseline's `cache` section. Wall-clock speedups are recorded for the
//! humans but never gated: they are honest measurements on whatever
//! machine ran the sweep.

use std::time::Instant;

use ccra_analysis::FrequencyInfo;
use ccra_ir::{Inst, Program, RegClass};
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::driver::DefaultJob;
use ccra_regalloc::{
    AllocCache, AllocRequest, AllocatorConfig, CacheConfig, FlightRecorder, MetricsRegistry,
    NoopSink, ParallelDriver, ProgramAllocation, TimelineCollector,
};
use ccra_workloads::{random_program, FuzzConfig};

use crate::parsweep::SWEEP_WORKER_COUNTS;
use crate::perfsnap::CacheEntry;

/// The dirty fractions the default sweep measures, percent of functions
/// edited between the cold and warm runs: fully warm, the incremental
/// sweet spot, a heavy edit, and nothing reusable.
pub const SWEEP_DIRTY_PCTS: [u64; 4] = [0, 1, 10, 100];

/// The default function count of the synthetic workload — wide enough
/// that a 1% edit still dirties a meaningful population (10 functions).
pub const DEFAULT_FUNCS: usize = 1000;

/// The shape of one `incr` run.
#[derive(Debug, Clone)]
pub struct IncrConfig {
    /// Functions in the synthetic workload.
    pub funcs: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Dirty fractions (percent) to sweep.
    pub dirty_pcts: Vec<u64>,
    /// Collapse every cache key ([`CacheConfig::poison`]) — the warm run
    /// replays wrong allocations and the byte-identity gate must fail.
    pub poison: bool,
}

impl Default for IncrConfig {
    fn default() -> Self {
        IncrConfig {
            funcs: DEFAULT_FUNCS,
            seed: 1997,
            workers: SWEEP_WORKER_COUNTS.to_vec(),
            dirty_pcts: SWEEP_DIRTY_PCTS.to_vec(),
            poison: false,
        }
    }
}

/// Builds the sweep's synthetic workload: `funcs` small functions, the
/// same generator the parallel sweep and the traffic model use.
pub fn synth_program(funcs: usize, seed: u64) -> Program {
    random_program(
        seed,
        &FuzzConfig {
            functions: funcs.max(1),
            stmts_per_fn: 8,
            max_loop_depth: 1,
            max_trips: 4,
        },
    )
}

/// Whether function `index` is edited at this dirty fraction. Spreads the
/// dirty set evenly over the id space (every 100th function at 1%, every
/// 10th at 10%) instead of clustering it at the front.
fn is_dirty(index: usize, dirty_pct: u64) -> bool {
    dirty_pct > 0 && (index as u64 * dirty_pct) % 100 < dirty_pct
}

/// Returns a copy of `base` with `dirty_pct` percent of its functions
/// edited, plus the number of functions actually touched. The edit — a
/// fresh dead `iconst` prepended to the entry block — is semantically
/// inert but changes the function's content hash, exactly like a
/// recompile after a trivial source edit.
pub fn dirty_program(base: &Program, dirty_pct: u64) -> (Program, u64) {
    let mut edited = base.clone();
    let mut dirtied = 0u64;
    for (index, id) in base.func_ids().enumerate() {
        if is_dirty(index, dirty_pct) {
            let f = edited.function_mut(id);
            let v = f.new_vreg(RegClass::Int);
            let entry = f.entry();
            f.block_mut(entry)
                .insts
                .insert(0, Inst::IConst { dst: v, value: 42 });
            dirtied += 1;
        }
    }
    (edited, dirtied)
}

/// One driver run, timed. `cache: None` is the uncached reference.
fn timed_run(
    workers: usize,
    program: &Program,
    freq: &FrequencyInfo,
    config: &AllocatorConfig,
    cost: &CostModel,
    file: RegisterFile,
    cache: Option<&AllocCache>,
) -> (ProgramAllocation, u64) {
    let driver = ParallelDriver::new(workers);
    let flight = FlightRecorder::new(workers + 1);
    let collector = TimelineCollector::disabled();
    let req = AllocRequest {
        program,
        freq,
        file,
        config,
        cost,
    };
    let start = Instant::now();
    let (out, _report, _timeline) = driver
        .allocate_program_cached(
            &req,
            &mut NoopSink,
            &mut MetricsRegistry::disabled(),
            &DefaultJob,
            &collector,
            flight.view(0),
            cache,
        )
        .expect("the incr sweep's synthetic workloads allocate");
    (out, start.elapsed().as_micros() as u64)
}

/// Runs the sweep, calling `progress` after each finished cell.
///
/// # Errors
///
/// Returns a message naming the first cell whose warm (cached) result was
/// not byte-identical to the uncached reference — the binary turns this
/// into a nonzero exit. With [`IncrConfig::poison`] set this is the
/// *expected* outcome; a poisoned sweep that returns `Ok` means the gate
/// is dead.
pub fn run_incr_sweep(
    cfg: &IncrConfig,
    mut progress: impl FnMut(&CacheEntry),
) -> Result<Vec<CacheEntry>, String> {
    let config = AllocatorConfig::improved();
    let cost = CostModel::paper();
    let file = RegisterFile::mips_full();
    let workload = format!("synth{}", cfg.funcs);
    let base = synth_program(cfg.funcs, cfg.seed);
    let base_freq = FrequencyInfo::estimate(&base);
    let mut entries = Vec::new();
    for &dirty_pct in &cfg.dirty_pcts {
        let (edited, _) = dirty_program(&base, dirty_pct);
        let edited_freq = FrequencyInfo::estimate(&edited);
        for &workers in &cfg.workers {
            let workers = workers.max(1);
            // The oracle and the cold time: the edited program, no cache.
            let (reference, cold_micros) =
                timed_run(workers, &edited, &edited_freq, &config, &cost, file, None);
            // Populate a fresh cache with the pre-edit program, then
            // re-allocate the edited one through it.
            let cache = AllocCache::new(CacheConfig {
                poison: cfg.poison,
                ..CacheConfig::default()
            });
            let _ = timed_run(
                workers,
                &base,
                &base_freq,
                &config,
                &cost,
                file,
                Some(&cache),
            );
            let before = cache.stats();
            let (warm, warm_micros) = timed_run(
                workers,
                &edited,
                &edited_freq,
                &config,
                &cost,
                file,
                Some(&cache),
            );
            if warm != reference {
                return Err(format!(
                    "BYTE IDENTITY VIOLATED: warm re-allocation of {workload} \
                     (dirty {dirty_pct}%, {workers} worker(s)) differs from the \
                     uncached cold run — the cache changed an allocation"
                ));
            }
            let after = cache.stats();
            let hits = after.hits - before.hits;
            let misses = after.misses - before.misses;
            let entry = CacheEntry {
                workload: workload.clone(),
                workers: workers as u64,
                dirty_pct,
                funcs: cfg.funcs as u64,
                cold_micros,
                warm_micros,
                hit_rate: if hits + misses == 0 {
                    0.0
                } else {
                    hits as f64 / (hits + misses) as f64
                },
                hits,
                misses,
                bytes: after.bytes,
                evictions: after.evictions,
                speedup: cold_micros as f64 / warm_micros.max(1) as f64,
            };
            progress(&entry);
            entries.push(entry);
        }
    }
    Ok(entries)
}

/// The `incr --check` gate: every current cell must match its baseline
/// cell's hit rate (hit rates are deterministic — any drop means the
/// cache stopped recognizing something it used to), and every 1%-dirty
/// cell must clear the unconditional ≥ 95% hit-rate floor regardless of
/// what the baseline says. Baseline cells absent from the current run are
/// ignored (CI sweeps a subset of worker counts); current cells absent
/// from the baseline pass the floor check only.
///
/// # Errors
///
/// Returns all violations, one per line, or a message when no cells
/// overlap at all.
pub fn check_cache(baseline: &[CacheEntry], current: &[CacheEntry]) -> Result<(), String> {
    let mut violations = Vec::new();
    let mut overlap = 0usize;
    for c in current {
        if c.dirty_pct == 1 && c.hit_rate < 0.95 {
            violations.push(format!(
                "{}/w{}/dirty{}%: hit rate {:.3} below the unconditional 0.95 floor",
                c.workload, c.workers, c.dirty_pct, c.hit_rate
            ));
        }
        let Some(b) = baseline.iter().find(|b| {
            b.workload == c.workload && b.workers == c.workers && b.dirty_pct == c.dirty_pct
        }) else {
            continue;
        };
        overlap += 1;
        if c.hit_rate < b.hit_rate - 1e-9 {
            violations.push(format!(
                "{}/w{}/dirty{}%: hit rate {:.3} below baseline {:.3}",
                c.workload, c.workers, c.dirty_pct, c.hit_rate, b.hit_rate
            ));
        }
    }
    if !violations.is_empty() {
        return Err(violations.join("\n"));
    }
    if overlap == 0 && !current.is_empty() && !baseline.is_empty() {
        return Err("no cache sweep cells overlap between baseline and current".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workers: Vec<usize>, dirty_pcts: Vec<u64>) -> IncrConfig {
        IncrConfig {
            funcs: 40,
            seed: 7,
            workers,
            dirty_pcts,
            poison: false,
        }
    }

    #[test]
    fn dirty_program_changes_exactly_the_selected_hashes() {
        let base = synth_program(40, 7);
        let (edited, dirtied) = dirty_program(&base, 10);
        assert_eq!(dirtied, 4, "10% of 40 functions");
        let mut changed = 0;
        for (index, id) in base.func_ids().enumerate() {
            let same = base.function(id).content_hash() == edited.function(id).content_hash();
            assert_eq!(same, !is_dirty(index, 10), "function {index}");
            changed += u32::from(!same);
        }
        assert_eq!(changed, 4);
        let (clean, zero) = dirty_program(&base, 0);
        assert_eq!(zero, 0);
        assert_eq!(clean, base);
        let (all, n) = dirty_program(&base, 100);
        assert_eq!(n, 40);
        assert!(base
            .func_ids()
            .all(|id| base.function(id).content_hash() != all.function(id).content_hash()));
    }

    #[test]
    fn sweep_hit_rates_are_exact_and_outputs_match() {
        let entries =
            run_incr_sweep(&small(vec![1, 2], vec![0, 10, 100]), |_| {}).expect("byte-identical");
        assert_eq!(entries.len(), 6);
        for e in &entries {
            assert_eq!(e.funcs, 40);
            assert_eq!(e.hits + e.misses, 40, "{e:?}");
            let expected_misses = match e.dirty_pct {
                0 => 0,
                10 => 4,
                100 => 40,
                _ => unreachable!(),
            };
            assert_eq!(e.misses, expected_misses, "{e:?}");
            assert_eq!(e.evictions, 0, "nothing evicts at this size: {e:?}");
            assert!(e.bytes > 0);
        }
        // Hit rates are worker-count independent.
        for e in entries.iter().filter(|e| e.workers == 2) {
            let w1 = entries
                .iter()
                .find(|o| o.workers == 1 && o.dirty_pct == e.dirty_pct)
                .expect("workers=1 twin");
            assert_eq!(e.hit_rate, w1.hit_rate);
        }
    }

    #[test]
    fn poison_trips_the_byte_identity_gate() {
        let cfg = IncrConfig {
            poison: true,
            ..small(vec![1], vec![0])
        };
        let err = run_incr_sweep(&cfg, |_| {}).expect_err("poisoned keys replay wrong bodies");
        assert!(err.contains("BYTE IDENTITY VIOLATED"), "{err}");
    }

    #[test]
    fn check_gate_flags_floor_and_baseline_regressions() {
        let cell = |workers: u64, dirty_pct: u64, hit_rate: f64| CacheEntry {
            workload: "synth1000".to_string(),
            workers,
            dirty_pct,
            funcs: 1000,
            cold_micros: 100,
            warm_micros: 50,
            hit_rate,
            hits: (hit_rate * 1000.0) as u64,
            misses: 1000 - (hit_rate * 1000.0) as u64,
            bytes: 1 << 20,
            evictions: 0,
            speedup: 2.0,
        };
        let baseline = vec![cell(1, 1, 0.99), cell(4, 1, 0.99)];
        check_cache(&baseline, &baseline).expect("identical snapshots pass");
        // A partial run (one worker count) still checks.
        check_cache(&baseline, &[cell(1, 1, 0.99)]).expect("partial run passes");
        // Below baseline fails even above the floor.
        let err = check_cache(&baseline, &[cell(1, 1, 0.96)]).unwrap_err();
        assert!(err.contains("below baseline"), "{err}");
        // Below the unconditional floor fails even with no baseline cell.
        let err = check_cache(&baseline, &[cell(8, 1, 0.90)]).unwrap_err();
        assert!(err.contains("0.95 floor"), "{err}");
        // Disjoint snapshots are an error, not a silent pass.
        assert!(check_cache(&baseline, &[cell(8, 10, 0.9)])
            .unwrap_err()
            .contains("overlap"));
    }
}
