//! Experiment drivers regenerating every table and figure of
//! *Call-Cost Directed Register Allocation* (Lueh & Gross, PLDI 1997).
//!
//! Each experiment lives in [`experiments`] and returns [`Table`]s; the
//! companion binaries (`fig2`, `fig6`, `fig7`, `tab2`, `tab3`, `fig9`,
//! `fig10`, `fig11`, `tab4`, `priority_orderings`, `callee_cost_models`,
//! and `all_experiments`) print them. Every binary accepts an optional
//! `--scale <f64>` argument that shrinks the workloads proportionally.
//!
//! Three binaries are not experiments. `trace` runs one allocation with
//! telemetry enabled and emits the raw event stream as JSON Lines (see
//! [`telemetry`]), optionally diffing the run against a checked-in
//! baseline and failing on overhead regressions. `perf` runs the fixed
//! allocator-performance matrix and writes a schema-versioned snapshot,
//! gating aggregate throughput against a committed baseline (see
//! [`perfsnap`]). `par` sweeps the parallel allocation driver over worker
//! counts, verifies parallel-equals-serial on every workload, and records
//! the speedups into the snapshot's `parallel` section (see [`parsweep`]).
//! `loadgen` drives a live batch service open-loop and records the
//! queue-wait / service / end-to-end latency quantiles into the
//! snapshot's `latency` section (see [`loadgen`]). `explain` renders
//! per-function reports saying why each web got its storage class and
//! final location (see [`explain`]).
//!
//! | Experiment | Paper content | Module |
//! |---|---|---|
//! | Figure 2 | base-allocator cost split by component, eqntott/ear | [`experiments::fig2`] |
//! | Figure 6 | improvement combinations vs register pressure | [`experiments::fig6`] |
//! | Figure 7 | overhead under improved allocation, ear/eqntott | [`experiments::fig7`] |
//! | Tables 2–3 | base vs optimistic, static/dynamic | [`experiments::tab2_tab3`] |
//! | Figure 9 | optimistic vs improved, fpppp static | [`experiments::fig9`] |
//! | Figure 10 | priority-based vs improved Chaitin | [`experiments::fig10`] |
//! | Figure 11 | improved Chaitin vs CBH | [`experiments::fig11`] |
//! | Table 4 | execution-time speedup (cycle model) | [`experiments::tab4`] |
//! | §9.1, §4, §5 | ablations | [`experiments::ablations`] |
//!
//! # Example
//!
//! ```no_run
//! use ccra_eval::experiments::fig2;
//! use ccra_workloads::Scale;
//!
//! for table in fig2::run(Scale(1.0)) {
//!     println!("{table}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
pub mod explain;
pub mod incr;
pub mod loadgen;
pub mod parsweep;
pub mod perfdiff;
pub mod perfsnap;
pub mod plot;
pub mod quality;
mod table;
pub mod telemetry;
pub mod timeline;
pub mod traffic;

pub use bench::{load_all, Bench};
pub use incr::{check_cache, dirty_program, run_incr_sweep, synth_program, IncrConfig};
pub use loadgen::{
    job_stream, run_chaosload, run_loadgen, ChaosReport, ChaosloadConfig, LoadgenConfig,
    LoadgenReport,
};
pub use parsweep::{
    compare_parallel, run_par_sweep, workers1_gate, ParComparison, SWEEP_WORKER_COUNTS,
};
pub use perfdiff::{diff_snapshots, DiffRow, SnapshotDiff, UnmatchedRow};
pub use perfsnap::{
    compare_snapshots, parse_snapshot, run_matrix, AdmissionEntry, AlertEntry, BenchEntry,
    BenchSnapshot, HostInfo, LatencyEntry, ParEntry, PerfComparison, PriorityLatency, QualityEntry,
    BENCH_SCHEMA_VERSION,
};
pub use quality::{
    compare_quality, degraded_program_allocation, quality_configs, run_quality_matrix,
    QualityComparison, QualityDelta, QUALITY_WORKLOADS,
};
pub use table::{ratio, CellParseError, Table};
pub use traffic::TrafficShape;

use ccra_workloads::Scale;

/// Parses `--scale <f64>` from CLI args (used by every experiment binary).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                return Scale(v);
            }
        }
    }
    Scale(1.0)
}

/// The output format selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables (default).
    Text,
    /// Comma-separated values.
    Csv,
    /// One JSON document containing all tables.
    Json,
    /// Plain-text tables followed by ASCII charts of the numeric columns.
    Chart,
}

/// Parses `--format text|csv|json|chart` from CLI args.
pub fn format_from_args() -> OutputFormat {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--format" {
            match args.get(i + 1).map(String::as_str) {
                Some("csv") => return OutputFormat::Csv,
                Some("json") => return OutputFormat::Json,
                Some("chart") => return OutputFormat::Chart,
                _ => return OutputFormat::Text,
            }
        }
    }
    OutputFormat::Text
}

/// Prints tables in the selected format (the shared tail of every
/// experiment binary).
pub fn emit(tables: &[Table], format: OutputFormat) {
    match format {
        OutputFormat::Text => {
            for t in tables {
                println!("{t}");
            }
        }
        OutputFormat::Csv => {
            for t in tables {
                println!("# {}", t.title);
                print!("{}", t.to_csv());
                println!();
            }
        }
        OutputFormat::Json => {
            println!("{}", table::tables_to_json(tables));
        }
        OutputFormat::Chart => {
            for t in tables {
                println!("{t}");
                let x: Vec<String> = t.rows.iter().map(|r| r[0].clone()).collect();
                let series: Vec<plot::Series> = (1..t.headers.len())
                    .map(|c| plot::column_series(t, c))
                    .filter(|s| s.values.iter().any(|v| v.is_finite()))
                    .collect();
                if !series.is_empty() {
                    println!("{}", plot::render_chart(&t.title, &x, &series, 12));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_one() {
        // No --scale in the test harness args.
        assert_eq!(scale_from_args(), Scale(1.0));
    }
}
