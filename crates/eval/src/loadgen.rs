//! The open-loop load generator behind the `loadgen` binary: drive a live
//! [`BatchService`] the way a compile service is actually loaded and
//! measure the serving-path latency SLOs.
//!
//! Closed-loop benchmarks (submit, wait, submit) measure service time but
//! hide queueing: the submitter politely waits, so the queue never grows
//! and queue-wait reads as zero. The load generator is **open-loop**:
//! submission times come from an exponential inter-arrival clock that does
//! not care whether the service keeps up, so when arrivals outpace
//! service, jobs genuinely queue and the queue-wait histogram measures
//! something real. Job sizes are heavy-tailed (a bounded Pareto over
//! function counts) because compile workloads are: most programs are
//! small, a few are not, and the tail is what SLOs are about. The
//! distributions live in [`crate::traffic`].
//!
//! The run double-checks the service's bookkeeping: every submission id
//! must come back exactly once ([`LoadgenReport::lost`] /
//! [`LoadgenReport::duplicated`] stay empty), which CI asserts at several
//! worker counts.
//!
//! Everything is deterministic except the clock: the job stream derives
//! from [`LoadgenConfig::seed`] alone, so two runs submit byte-identical
//! programs; only the measured latencies differ.
//!
//! # Chaos mode
//!
//! [`run_chaosload`] (the binary's `--chaos` flag) is the overload
//! variant: a storm-shaped stream ([`TrafficShape::storm`] — priority
//! mix, deadlines on interactive jobs, burst arrivals) floods a service
//! configured with admission control, a per-job timeout, and seeded fault
//! injection (panics, allocator errors, latency spikes), a subset of
//! queued jobs is cancelled mid-storm, and a closed-loop trickle then
//! verifies the limiter recovers to full admission. The report asserts
//! the service's core overload invariant: **every accepted id resolves
//! exactly once** (ok / degraded / failed / expired / cancelled), no id
//! is lost, duplicated, or invented, and shed submissions produce no
//! result at all.
//!
//! The chaos service also runs the ops observatory
//! ([`ccra_regalloc::Observatory`]) on an injected [`ManualClock`]: the
//! harness ticks it at fixed points (during the storm, after the drain,
//! through the trickle, and over an idle tail), so the SLO burn-rate
//! alert deterministically **fires** during the storm and **resolves**
//! once the storm interval ages out of the short burn window. The
//! observatory's e2e SLO is pinned to half the injected spike length —
//! the seeded latency spikes alone push the over-SLO fraction far past
//! the burn threshold, independent of host speed. The alert cycle and
//! the sampled history go into the report for the snapshot's `alerts`
//! section and the CI artifacts.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use ccra_regalloc::driver::batch::{METRIC_E2E, METRIC_JOB_MICROS, METRIC_QUEUE_WAIT};
use ccra_regalloc::obsv::RULE_E2E_BURN;
use ccra_regalloc::{
    AdmissionConfig, AlertRuleStats, AlertState, AllocCache, BatchConfig, BatchJob, BatchResult,
    BatchService, BatchStatus, CancelOutcome, ChaosConfig, Clock, ManualClock, Observatory,
    ObsvConfig, Priority, RejectCause, SubmitError, Tier,
};

use crate::perfsnap::{AdmissionEntry, AlertEntry, LatencyEntry, PriorityLatency};
use crate::traffic::{arrival_gaps, job_stream as stream_for_shape, TrafficShape};

/// The three latency series a load-generator run measures, with the
/// service histogram each reads.
pub const LATENCY_SERIES: [(&str, &str); 3] = [
    ("queue_wait", METRIC_QUEUE_WAIT),
    ("service", METRIC_JOB_MICROS),
    ("e2e", METRIC_E2E),
];

/// Sizing and shape knobs of one load-generator run.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Jobs to submit.
    pub jobs: usize,
    /// Service workers ([`BatchConfig::workers`]).
    pub workers: usize,
    /// Per-program shard workers ([`BatchConfig::shard_workers`]).
    pub shard_workers: usize,
    /// Submission-queue capacity ([`BatchConfig::queue_capacity`]).
    pub queue_capacity: usize,
    /// Mean inter-arrival gap, microseconds (the exponential clock's
    /// mean; 0 = submit as fast as the queue accepts).
    pub mean_gap_us: u64,
    /// The RNG seed the whole job stream derives from.
    pub seed: u64,
    /// Per-mille of submissions that are byte-identical re-submissions of
    /// earlier jobs ([`TrafficShape::rerun_per_mille`]). When > 0 the
    /// service runs with a shared memo cache, so the reruns hit warm.
    pub rerun_per_mille: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            jobs: 64,
            workers: 2,
            shard_workers: 1,
            queue_capacity: 16,
            mean_gap_us: 500,
            seed: 1997,
            rerun_per_mille: 0,
        }
    }
}

impl LoadgenConfig {
    /// The steady traffic shape this config drives.
    fn shape(&self) -> TrafficShape {
        TrafficShape::steady(self.jobs, self.seed, self.mean_gap_us)
            .with_rerun_per_mille(self.rerun_per_mille)
    }
}

/// What one load-generator run measured and verified.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Service workers the run used.
    pub workers: u64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Results collected.
    pub completed: u64,
    /// Results with [`ccra_regalloc::BatchStatus::Ok`].
    pub ok: u64,
    /// Results that degraded.
    pub degraded: u64,
    /// Results that failed outright.
    pub failed: u64,
    /// Submission ids that never produced a result (must be empty).
    pub lost: Vec<u64>,
    /// Submission ids that produced more than one result (must be empty).
    pub duplicated: Vec<u64>,
    /// The measured queue-wait / service / end-to-end series, ready for a
    /// snapshot's `latency` section.
    pub latency: Vec<LatencyEntry>,
    /// Memo-cache hits over the run (0 when the run had no cache, i.e.
    /// [`LoadgenConfig::rerun_per_mille`] was 0).
    pub cache_hits: u64,
    /// Memo-cache misses over the run (0 when the run had no cache).
    pub cache_misses: u64,
}

impl LoadgenReport {
    /// Whether every submission came back exactly once.
    pub fn accounting_clean(&self) -> bool {
        self.lost.is_empty() && self.duplicated.is_empty()
    }
}

/// The deterministic job stream of a run: `jobs` fuzz programs whose
/// function counts follow the bounded Pareto. Exposed so tests can assert
/// the stream is a pure function of the seed.
pub fn job_stream(cfg: &LoadgenConfig) -> Vec<BatchJob> {
    stream_for_shape(&cfg.shape())
}

/// Runs the load generator: submits the seeded job stream open-loop
/// (blocking on backpressure), shuts the service down, verifies the
/// id accounting, and reads the latency histograms. Calls `progress`
/// every `jobs / 8`-ish submissions with (submitted, queue depth).
pub fn run_loadgen(
    cfg: &LoadgenConfig,
    mut progress: impl FnMut(usize, usize),
) -> (LoadgenReport, Vec<BatchResult>) {
    // Rerun traffic gets a memo cache, so byte-identical re-submissions
    // actually replay warm allocations.
    let cache = (cfg.rerun_per_mille > 0).then(|| Arc::new(AllocCache::default()));
    let service = BatchService::start(BatchConfig {
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        shard_workers: cfg.shard_workers.max(1),
        cache: cache.clone(),
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let gaps = arrival_gaps(&cfg.shape());
    let stride = (cfg.jobs / 8).max(1);
    let mut submitted_ids = Vec::with_capacity(cfg.jobs);
    for (i, (job, gap_us)) in job_stream(cfg).into_iter().zip(gaps).enumerate() {
        // Open loop: the gap is drawn before submit and slept regardless
        // of how the service is doing; `submit` then blocks only if the
        // queue is at capacity (that stall is the backpressure metric).
        if gap_us > 0 {
            std::thread::sleep(Duration::from_micros(gap_us));
        }
        let id = service.submit(job).expect("queue open while submitting");
        submitted_ids.push(id);
        if (i + 1) % stride == 0 {
            progress(i + 1, handle.queue_depth());
        }
    }
    let results = service.shutdown();

    let (lost, duplicated, phantom) = account_ids(&submitted_ids, &results);
    assert!(
        phantom.is_empty(),
        "results for ids that were never submitted: {phantom:?}"
    );
    let metrics = handle.metrics_snapshot();
    let latency = LATENCY_SERIES
        .iter()
        .map(|&(series, metric)| {
            let (p50, p95, p99, mean, count) =
                metrics.histogram(metric).map_or((0, 0, 0, 0.0, 0), |h| {
                    (
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.mean(),
                        h.count(),
                    )
                });
            LatencyEntry {
                series: series.to_string(),
                workers: cfg.workers as u64,
                jobs: count,
                p50_us: p50,
                p95_us: p95,
                p99_us: p99,
                mean_us: mean,
            }
        })
        .collect();
    let count_status =
        |pred: fn(&BatchStatus) -> bool| results.iter().filter(|r| pred(&r.status)).count() as u64;
    let report = LoadgenReport {
        workers: cfg.workers as u64,
        submitted: submitted_ids.len() as u64,
        completed: results.len() as u64,
        ok: count_status(|s| matches!(s, BatchStatus::Ok)),
        degraded: count_status(|s| matches!(s, BatchStatus::Degraded { .. })),
        failed: count_status(|s| matches!(s, BatchStatus::Failed { .. })),
        lost,
        duplicated,
        latency,
        cache_hits: cache.as_ref().map_or(0, |c| c.stats().hits),
        cache_misses: cache.as_ref().map_or(0, |c| c.stats().misses),
    };
    (report, results)
}

/// Exactly-once accounting: (lost, duplicated, phantom) — accepted ids
/// with no result, accepted ids with several, and result ids that were
/// never accepted.
fn account_ids(accepted: &[u64], results: &[BatchResult]) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let mut lost = Vec::new();
    let mut duplicated = Vec::new();
    for &id in accepted {
        match results.iter().filter(|r| r.id == id).count() {
            0 => lost.push(id),
            1 => {}
            _ => duplicated.push(id),
        }
    }
    let phantom = results
        .iter()
        .map(|r| r.id)
        .filter(|id| !accepted.contains(id))
        .collect();
    (lost, duplicated, phantom)
}

/// Sizing and shape knobs of one chaos-storm run ([`run_chaosload`]).
#[derive(Debug, Clone, Copy)]
pub struct ChaosloadConfig {
    /// Storm jobs (submitted as fast as the shape's clock allows —
    /// deliberately past capacity).
    pub jobs: usize,
    /// Recovery-trickle jobs submitted closed-loop after the storm.
    pub trickle: usize,
    /// Service workers.
    pub workers: usize,
    /// Per-program shard workers.
    pub shard_workers: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// The seed the storm stream, the arrival clock, and the injected
    /// faults all derive from.
    pub seed: u64,
    /// The admission limiter's end-to-end latency SLO, microseconds.
    pub slo_us: u64,
    /// The admission window ceiling (in-system jobs at full admission).
    pub max_limit: usize,
    /// The per-job service-time watchdog, microseconds.
    pub job_timeout_us: u64,
    /// The injected latency-spike length, microseconds. Kept under the
    /// SLO by default so a spiked trickle job still counts on-time and
    /// recovery stays deterministic.
    pub spike_us: u64,
    /// Mean storm inter-arrival gap, microseconds (0 = flood).
    pub mean_gap_us: u64,
    /// Every `cancel_every`-th storm submission cancels a recent pending
    /// id (0 = no cancellations).
    pub cancel_every: usize,
    /// Per-mille of storm submissions that are byte-identical
    /// re-submissions ([`TrafficShape::rerun_per_mille`]); > 0 also gives
    /// the stormed service a memo cache.
    pub rerun_per_mille: u32,
}

impl Default for ChaosloadConfig {
    fn default() -> Self {
        ChaosloadConfig {
            jobs: 200,
            trickle: 48,
            workers: 2,
            shard_workers: 1,
            queue_capacity: 32,
            seed: 1997,
            slo_us: 30_000,
            max_limit: 32,
            job_timeout_us: 2_000_000,
            spike_us: 10_000,
            mean_gap_us: 0,
            cancel_every: 17,
            rerun_per_mille: 0,
        }
    }
}

/// What one chaos-storm run measured and verified.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Service workers the run used.
    pub workers: u64,
    /// Submissions attempted (storm + trickle, sheds included).
    pub submitted: u64,
    /// Submissions the service accepted (an id was issued).
    pub accepted: u64,
    /// Submissions the admission limiter shed.
    pub shed: u64,
    /// Accepted jobs that completed [`BatchStatus::Ok`].
    pub ok: u64,
    /// Accepted jobs that degraded (injected faults and timeouts land
    /// here).
    pub degraded: u64,
    /// Accepted jobs that failed outright.
    pub failed: u64,
    /// Accepted jobs whose deadline passed while queued.
    pub expired: u64,
    /// Accepted jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs whose service-time watchdog fired (a subset of `degraded`).
    pub timeouts: u64,
    /// Cancellation calls that caught the job still queued.
    pub cancel_hits: u64,
    /// Accepted ids that never produced a result (must be empty).
    pub lost: Vec<u64>,
    /// Accepted ids that produced more than one result (must be empty).
    pub duplicated: Vec<u64>,
    /// Result ids that were never accepted (must be empty — a shed
    /// submission must produce nothing).
    pub phantom: Vec<u64>,
    /// Per-priority end-to-end quantiles of accepted jobs that produced
    /// an allocation.
    pub per_priority: Vec<PriorityLatency>,
    /// End-to-end p99 (microseconds) across accepted jobs that ran.
    pub accepted_p99_us: u64,
    /// The admission window after the recovery trickle.
    pub final_limit: f64,
    /// The admission window ceiling the run was configured with.
    pub max_limit: f64,
    /// Memo-cache hits over the run (0 when the run had no cache).
    pub cache_hits: u64,
    /// Memo-cache misses over the run (0 when the run had no cache).
    pub cache_misses: u64,
    /// The service's flight-recorder document (live dump + retained
    /// automatic dumps) — written out as a CI artifact when an invariant
    /// fails.
    pub flight: serde::json::Value,
    /// Per-rule observatory alert stats at the end of the run.
    pub alert_stats: Vec<AlertRuleStats>,
    /// The observatory's `/alerts` document (rules + transition log).
    pub alerts_value: serde::json::Value,
    /// Raw-tier history of every sampled series — the `--obsv-dump`
    /// artifact body.
    pub obsv_history: serde::json::Value,
}

impl ChaosReport {
    /// Whether every accepted id resolved exactly once — and only
    /// accepted ids did.
    pub fn accounting_clean(&self) -> bool {
        self.lost.is_empty()
            && self.duplicated.is_empty()
            && self.phantom.is_empty()
            && self.accepted
                == self.ok + self.degraded + self.failed + self.expired + self.cancelled
    }

    /// Whether the limiter regrew to (essentially) full admission after
    /// the storm — recovery is completion-driven, so a healthy trickle
    /// must restore the window.
    pub fn limiter_recovered(&self) -> bool {
        self.final_limit >= 0.9 * self.max_limit
    }

    /// Whether interactive latency beat background latency at the tail —
    /// the point of priority scheduling under overload. Vacuously true
    /// when either class has no samples.
    pub fn priorities_ordered(&self) -> bool {
        let p99 = |label: &str| {
            self.per_priority
                .iter()
                .find(|p| p.priority == label && p.jobs > 0)
                .map(|p| p.p99_us)
        };
        match (p99("interactive"), p99("background")) {
            (Some(i), Some(b)) => i < b,
            _ => true,
        }
    }

    /// Whether the SLO burn alert completed a full cycle: fired at least
    /// once during the storm and stands resolved at the end of the run.
    pub fn slo_alert_cycled(&self) -> bool {
        self.alert_stats
            .iter()
            .any(|s| s.rule == RULE_E2E_BURN && s.fires >= 1 && s.state == AlertState::Inactive)
    }

    /// The snapshot `alerts` section this run measured: one entry per
    /// rule that fired.
    pub fn alert_entries(&self) -> Vec<AlertEntry> {
        self.alert_stats
            .iter()
            .filter(|s| s.fires > 0)
            .map(|s| AlertEntry {
                workers: self.workers,
                rule: s.rule.clone(),
                fires: s.fires,
                worst_value: s.worst_value,
                time_to_clear_us: s.time_to_clear_us,
            })
            .collect()
    }

    /// The snapshot `admission` section this run measured.
    pub fn admission_entry(&self) -> AdmissionEntry {
        AdmissionEntry {
            workers: self.workers,
            submitted: self.submitted,
            accepted: self.accepted,
            shed: self.shed,
            expired: self.expired,
            cancelled: self.cancelled,
            timeouts: self.timeouts,
            per_priority: self.per_priority.clone(),
        }
    }
}

/// Runs the chaos storm (see the module docs): floods a service that has
/// admission control, a per-job timeout, and seeded fault injection
/// enabled, cancels a subset of queued jobs mid-storm, then trickles
/// closed-loop until the limiter regrows. Calls `progress` with
/// (submissions attempted, queue depth) as the storm advances.
pub fn run_chaosload(
    cfg: &ChaosloadConfig,
    mut progress: impl FnMut(usize, usize),
) -> (ChaosReport, Vec<BatchResult>) {
    let admission = AdmissionConfig {
        slo_us: cfg.slo_us.max(1),
        min_limit: 1,
        max_limit: cfg.max_limit.max(1),
        ..AdmissionConfig::default()
    };
    let chaos = ChaosConfig {
        seed: cfg.seed,
        panic_per_mille: 40,
        error_per_mille: 40,
        spike_per_mille: 60,
        spike_us: cfg.spike_us,
    };
    let cache = (cfg.rerun_per_mille > 0).then(|| Arc::new(AllocCache::default()));
    // The ops observatory rides on the storm with an injected manual
    // clock — the harness ticks it at fixed points below, so the alert
    // timeline is the same on every host. Its e2e SLO is half the
    // injected spike length: the seeded spikes (6% of traffic, each ≥
    // one full spike over this SLO) guarantee an over-SLO fraction far
    // past the 2× burn threshold during the storm, however fast the
    // machine is.
    let obsv_clock = Arc::new(ManualClock::new());
    let obsv_cfg = ObsvConfig {
        clock: Arc::clone(&obsv_clock) as Arc<dyn Clock>,
        sampler_thread: false,
        e2e_slo_us: (cfg.spike_us / 2).max(1),
        ..ObsvConfig::default()
    };
    let tick_interval = obsv_cfg.raw_interval_us;
    let burn_short_window = obsv_cfg.burn_short_window;
    let service = BatchService::start(BatchConfig {
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        shard_workers: cfg.shard_workers.max(1),
        admission: Some(admission),
        job_timeout: Some(Duration::from_micros(cfg.job_timeout_us.max(1))),
        chaos: Some(chaos),
        cache: cache.clone(),
        obsv: Some(obsv_cfg),
        ..BatchConfig::default()
    });
    let handle = service.handle();
    // One deterministic sample: advance the manual clock a full interval,
    // then tick the observatory through the service handle (the handle
    // records alert transitions into the flight recorder).
    let obsv_tick = || {
        obsv_clock.advance(tick_interval);
        handle.obsv_tick();
    };
    let storm = TrafficShape::storm(cfg.jobs, cfg.seed, cfg.mean_gap_us)
        .with_rerun_per_mille(cfg.rerun_per_mille);
    let gaps = arrival_gaps(&storm);
    let mut accepted: Vec<u64> = Vec::with_capacity(cfg.jobs);
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut cancel_hits = 0u64;
    let mut cancelled_ids: BTreeSet<u64> = BTreeSet::new();
    for (i, (job, gap_us)) in stream_for_shape(&storm).into_iter().zip(gaps).enumerate() {
        if gap_us > 0 {
            std::thread::sleep(Duration::from_micros(gap_us));
        }
        submitted += 1;
        match service.submit(job) {
            Ok(id) => accepted.push(id),
            Err(SubmitError {
                cause: RejectCause::Shed { .. },
                ..
            }) => shed += 1,
            Err(e) => panic!("storm submit rejected unexpectedly: {e}"),
        }
        // Mid-storm cancellations: aim a few submissions back, where the
        // job is plausibly still queued; any outcome (queued, in flight,
        // done) is legitimate — the accounting check below is what must
        // hold regardless. Cancel is idempotent, so hits count unique
        // ids, not raw calls (the same victim can be picked twice).
        if cfg.cancel_every > 0 && (i + 1) % cfg.cancel_every == 0 {
            if let Some(&victim) = accepted.get(accepted.len().saturating_sub(5)) {
                if handle.cancel(victim) == CancelOutcome::Cancelled && cancelled_ids.insert(victim)
                {
                    cancel_hits += 1;
                }
            }
        }
        // Mid-storm samples: the queue-delay and burn series see the
        // overload build up.
        if (i + 1) % 25 == 0 {
            obsv_tick();
        }
        progress(i + 1, handle.queue_depth());
    }

    // Let the backlog drain (bounded wait) before measuring recovery.
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(60);
    while (handle.queue_depth() > 0 || handle.in_flight() > 0)
        && std::time::Instant::now() < drain_deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    // The post-drain sample sees every storm completion that hadn't been
    // sampled yet — the tick where the burn alert is guaranteed to be
    // firing.
    obsv_tick();

    // The recovery trickle: closed-loop (each job completes before the
    // next submit), so every on-time completion grows the window one
    // step. Shed retries honor the limiter's hint.
    let trickle = TrafficShape::steady(cfg.trickle, cfg.seed ^ 0x7A1C, 0);
    let mut trickled = 0usize;
    for mut job in stream_for_shape(&trickle) {
        loop {
            submitted += 1;
            match service.submit(job) {
                Ok(id) => {
                    accepted.push(id);
                    break;
                }
                Err(SubmitError {
                    job: returned,
                    cause: RejectCause::Shed { retry_after_us },
                }) => {
                    shed += 1;
                    job = returned;
                    std::thread::sleep(Duration::from_micros(retry_after_us.clamp(100, 5_000)));
                }
                Err(e) => panic!("trickle submit rejected unexpectedly: {e}"),
            }
        }
        let job_deadline = std::time::Instant::now() + Duration::from_secs(10);
        while (handle.queue_depth() > 0 || handle.in_flight() > 0)
            && std::time::Instant::now() < job_deadline
        {
            std::thread::sleep(Duration::from_micros(200));
        }
        trickled += 1;
        if trickled.is_multiple_of(4) {
            obsv_tick();
        }
    }
    // The idle tail: enough empty intervals to flush the storm (and any
    // spiked trickle job) out of the short burn window, so the alert
    // resolves before the run ends — an idle interval reads burn 0.
    for _ in 0..burn_short_window + 1 {
        obsv_tick();
    }

    let final_limit = handle.admission_snapshot().map_or(0.0, |s| s.limit);
    let flight = handle.flightrec_value();
    let obsv = handle
        .observatory()
        .expect("chaos service runs an observatory");
    let alert_stats = obsv.alert_stats();
    let alerts_value = obsv.alerts_value();
    let obsv_history = obsv_history_doc(&obsv);
    let results = service.shutdown();
    let (lost, duplicated, phantom) = account_ids(&accepted, &results);
    let metrics = handle.metrics_snapshot();
    let per_priority = Priority::ALL
        .iter()
        .map(|p| {
            let (p50, p99, count) = metrics.histogram(p.e2e_metric()).map_or((0, 0, 0), |h| {
                (h.quantile(0.5), h.quantile(0.99), h.count())
            });
            PriorityLatency {
                priority: p.label().to_string(),
                jobs: count,
                p50_us: p50,
                p99_us: p99,
            }
        })
        .collect();
    let accepted_p99_us = metrics
        .histogram(METRIC_E2E)
        .map_or(0, |h| h.quantile(0.99));
    let count_status =
        |pred: fn(&BatchStatus) -> bool| results.iter().filter(|r| pred(&r.status)).count() as u64;
    let report = ChaosReport {
        workers: cfg.workers as u64,
        submitted,
        accepted: accepted.len() as u64,
        shed,
        ok: count_status(|s| matches!(s, BatchStatus::Ok)),
        degraded: count_status(|s| matches!(s, BatchStatus::Degraded { .. })),
        failed: count_status(|s| matches!(s, BatchStatus::Failed { .. })),
        expired: count_status(|s| matches!(s, BatchStatus::DeadlineExpired)),
        cancelled: count_status(|s| matches!(s, BatchStatus::Cancelled)),
        timeouts: metrics.counter("batch_jobs_timeout_total"),
        cancel_hits,
        lost,
        duplicated,
        phantom,
        per_priority,
        accepted_p99_us,
        final_limit,
        max_limit: cfg.max_limit.max(1) as f64,
        cache_hits: cache.as_ref().map_or(0, |c| c.stats().hits),
        cache_misses: cache.as_ref().map_or(0, |c| c.stats().misses),
        flight,
        alert_stats,
        alerts_value,
        obsv_history,
    };
    (report, results)
}

/// Every sampled series' raw-tier history as one document — the body of
/// the `--obsv-dump` CI artifact.
fn obsv_history_doc(obsv: &Observatory) -> serde::json::Value {
    let series = obsv
        .series_names()
        .into_iter()
        .filter_map(|name| obsv.history_value(&name, Tier::Raw))
        .collect();
    serde::json::Value::Obj(vec![(
        "series".to_string(),
        serde::json::Value::Arr(series),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadgenConfig {
        LoadgenConfig {
            jobs: 12,
            workers: 2,
            shard_workers: 1,
            queue_capacity: 4,
            mean_gap_us: 0,
            seed: 42,
            rerun_per_mille: 0,
        }
    }

    #[test]
    fn rerun_traffic_exercises_the_memo_cache() {
        let cfg = LoadgenConfig {
            jobs: 32,
            rerun_per_mille: 500,
            ..tiny()
        };
        let (report, results) = run_loadgen(&cfg, |_, _| {});
        assert_eq!(report.submitted, 32);
        assert!(report.accounting_clean(), "{report:?}");
        assert_eq!(results.len(), 32);
        assert!(
            report.cache_hits > 0,
            "re-submitted jobs hit the memo cache: {report:?}"
        );
        // Without reruns no cache is attached, so the counters stay zero.
        let (quiet, _) = run_loadgen(&tiny(), |_, _| {});
        assert_eq!(quiet.cache_hits, 0);
        assert_eq!(quiet.cache_misses, 0);
    }

    #[test]
    fn job_stream_is_a_pure_function_of_the_seed() {
        let a = job_stream(&tiny());
        let b = job_stream(&tiny());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program, y.program);
        }
        let other = job_stream(&LoadgenConfig { seed: 43, ..tiny() });
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.program != y.program),
            "a different seed changes the stream"
        );
    }

    #[test]
    fn run_accounts_for_every_job_and_measures_latency() {
        let (report, results) = run_loadgen(&tiny(), |_, _| {});
        assert_eq!(report.submitted, 12);
        assert_eq!(report.completed, 12);
        assert!(report.accounting_clean(), "{report:?}");
        assert_eq!(report.ok + report.degraded + report.failed, 12);
        assert_eq!(results.len(), 12);
        assert_eq!(report.latency.len(), 3);
        for l in &report.latency {
            assert_eq!(l.jobs, 12, "{l:?}");
            assert!(l.p50_us <= l.p95_us && l.p95_us <= l.p99_us, "{l:?}");
        }
        let e2e = report
            .latency
            .iter()
            .find(|l| l.series == "e2e")
            .expect("e2e series present");
        let service = report
            .latency
            .iter()
            .find(|l| l.series == "service")
            .expect("service series present");
        assert!(
            e2e.p99_us >= service.p99_us,
            "end-to-end dominates service time: {e2e:?} vs {service:?}"
        );
    }

    #[test]
    fn chaos_storm_resolves_every_accepted_id_exactly_once() {
        // Small and forgiving (debug-build service times are what they
        // are): a generous SLO keeps this a determinism/accounting test,
        // not a latency one — the overload assertions live in the
        // release-mode `loadgen --chaos` smoke run.
        let cfg = ChaosloadConfig {
            jobs: 24,
            trickle: 10,
            workers: 2,
            queue_capacity: 8,
            slo_us: 2_000_000,
            max_limit: 8,
            job_timeout_us: 30_000_000,
            spike_us: 1_000,
            cancel_every: 7,
            ..ChaosloadConfig::default()
        };
        let (report, results) = run_chaosload(&cfg, |_, _| {});
        assert!(report.accounting_clean(), "{report:?}");
        assert_eq!(
            report.submitted,
            report.accepted + report.shed,
            "{report:?}"
        );
        assert_eq!(results.len() as u64, report.accepted);
        assert_eq!(report.cancelled, report.cancel_hits, "{report:?}");
        assert!(
            report.limiter_recovered(),
            "an idle trickle regrows the window: {report:?}"
        );
        // The degraded population includes the injected faults; with a
        // 24+10-job stream at 4%+4% fault rates this is probabilistic,
        // so only the structural invariants are asserted here.
        assert!(report.per_priority.len() == 3);
        // The observatory rode along on the manual clock: the SLO burn
        // alert fired during the storm (the observatory SLO is spike/2 =
        // 500us here, which debug-build service times blow through on
        // every job) and resolved over the idle tail.
        assert!(
            report.slo_alert_cycled(),
            "burn alert fires and resolves: {:?}",
            report.alert_stats
        );
        let entries = report.alert_entries();
        let burn = entries
            .iter()
            .find(|e| e.rule == RULE_E2E_BURN)
            .expect("burn rule entry present");
        assert!(burn.fires >= 1 && burn.worst_value > 2.0, "{burn:?}");
        assert!(burn.time_to_clear_us > 0, "{burn:?}");
        // The alert transitions are in the flight recorder dump and the
        // /alerts document.
        let flight = report.flight.to_json();
        assert!(flight.contains("\"alert_fire\""), "fire in flightrec");
        let alerts = report.alerts_value.to_json();
        assert!(alerts.contains("\"fire\""), "fire in transition log");
        assert!(alerts.contains("\"clear\""), "clear in transition log");
        // And the history artifact has the derived series.
        let history = report.obsv_history.to_json();
        assert!(history.contains("derived:queue_delay_slope_us_per_s"));
        assert!(history.contains("derived:e2e_burn_short"));
    }
}
