//! The open-loop load generator behind the `loadgen` binary: drive a live
//! [`BatchService`] the way a compile service is actually loaded and
//! measure the serving-path latency SLOs.
//!
//! Closed-loop benchmarks (submit, wait, submit) measure service time but
//! hide queueing: the submitter politely waits, so the queue never grows
//! and queue-wait reads as zero. The load generator is **open-loop**:
//! submission times come from an exponential inter-arrival clock that does
//! not care whether the service keeps up, so when arrivals outpace
//! service, jobs genuinely queue and the queue-wait histogram measures
//! something real. Job sizes are heavy-tailed (a bounded Pareto over
//! function counts) because compile workloads are: most programs are
//! small, a few are not, and the tail is what SLOs are about.
//!
//! The run double-checks the service's bookkeeping: every submission id
//! must come back exactly once ([`LoadgenReport::lost`] /
//! [`LoadgenReport::duplicated`] stay empty), which CI asserts at several
//! worker counts.
//!
//! Everything is deterministic except the clock: the job stream derives
//! from [`LoadgenConfig::seed`] alone, so two runs submit byte-identical
//! programs; only the measured latencies differ.

use std::time::Duration;

use ccra_machine::RegisterFile;
use ccra_regalloc::driver::batch::{METRIC_E2E, METRIC_JOB_MICROS, METRIC_QUEUE_WAIT};
use ccra_regalloc::{AllocatorConfig, BatchConfig, BatchJob, BatchResult, BatchService};
use ccra_workloads::{random_program, FuzzConfig};

use crate::perfsnap::LatencyEntry;

/// The three latency series a load-generator run measures, with the
/// service histogram each reads.
pub const LATENCY_SERIES: [(&str, &str); 3] = [
    ("queue_wait", METRIC_QUEUE_WAIT),
    ("service", METRIC_JOB_MICROS),
    ("e2e", METRIC_E2E),
];

/// Sizing and shape knobs of one load-generator run.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Jobs to submit.
    pub jobs: usize,
    /// Service workers ([`BatchConfig::workers`]).
    pub workers: usize,
    /// Per-program shard workers ([`BatchConfig::shard_workers`]).
    pub shard_workers: usize,
    /// Submission-queue capacity ([`BatchConfig::queue_capacity`]).
    pub queue_capacity: usize,
    /// Mean inter-arrival gap, microseconds (the exponential clock's
    /// mean; 0 = submit as fast as the queue accepts).
    pub mean_gap_us: u64,
    /// The RNG seed the whole job stream derives from.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            jobs: 64,
            workers: 2,
            shard_workers: 1,
            queue_capacity: 16,
            mean_gap_us: 500,
            seed: 1997,
        }
    }
}

/// What one load-generator run measured and verified.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Service workers the run used.
    pub workers: u64,
    /// Jobs submitted.
    pub submitted: u64,
    /// Results collected.
    pub completed: u64,
    /// Results with [`ccra_regalloc::BatchStatus::Ok`].
    pub ok: u64,
    /// Results that degraded.
    pub degraded: u64,
    /// Results that failed outright.
    pub failed: u64,
    /// Submission ids that never produced a result (must be empty).
    pub lost: Vec<u64>,
    /// Submission ids that produced more than one result (must be empty).
    pub duplicated: Vec<u64>,
    /// The measured queue-wait / service / end-to-end series, ready for a
    /// snapshot's `latency` section.
    pub latency: Vec<LatencyEntry>,
}

impl LoadgenReport {
    /// Whether every submission came back exactly once.
    pub fn accounting_clean(&self) -> bool {
        self.lost.is_empty() && self.duplicated.is_empty()
    }
}

/// A splitmix-style generator: good enough to schedule arrivals and size
/// jobs, and dependency-free.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Exponentially distributed with the given mean.
    fn exponential_us(&mut self, mean_us: u64) -> u64 {
        (-self.unit().ln() * mean_us as f64) as u64
    }

    /// A bounded Pareto (shape 1.5) over `[lo, hi]` — mostly `lo`, with a
    /// heavy tail toward `hi`.
    fn pareto(&mut self, lo: u64, hi: u64) -> u64 {
        let sized = (lo as f64 * self.unit().powf(-1.0 / 1.5)) as u64;
        sized.clamp(lo, hi)
    }
}

/// The deterministic job stream of a run: `jobs` fuzz programs whose
/// function counts follow the bounded Pareto. Exposed so tests can assert
/// the stream is a pure function of the seed.
pub fn job_stream(cfg: &LoadgenConfig) -> Vec<BatchJob> {
    let mut rng = Rng(cfg.seed);
    (0..cfg.jobs)
        .map(|i| {
            let functions = rng.pareto(2, 24) as usize;
            let program = random_program(
                cfg.seed.wrapping_add(i as u64),
                &FuzzConfig {
                    functions,
                    stmts_per_fn: 10,
                    max_loop_depth: 1,
                    max_trips: 4,
                },
            );
            BatchJob {
                name: format!("load-{i}"),
                program,
                file: RegisterFile::mips_full(),
                config: AllocatorConfig::improved(),
            }
        })
        .collect()
}

/// Runs the load generator: submits the seeded job stream open-loop
/// (blocking on backpressure), shuts the service down, verifies the
/// id accounting, and reads the latency histograms. Calls `progress`
/// every `jobs / 8`-ish submissions with (submitted, queue depth).
pub fn run_loadgen(
    cfg: &LoadgenConfig,
    mut progress: impl FnMut(usize, usize),
) -> (LoadgenReport, Vec<BatchResult>) {
    let service = BatchService::start(BatchConfig {
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        shard_workers: cfg.shard_workers.max(1),
        ..BatchConfig::default()
    });
    let handle = service.handle();
    let mut rng = Rng(cfg.seed ^ 0xc1f0);
    let stride = (cfg.jobs / 8).max(1);
    let mut submitted_ids = Vec::with_capacity(cfg.jobs);
    for (i, job) in job_stream(cfg).into_iter().enumerate() {
        // Open loop: the gap is drawn before submit and slept regardless
        // of how the service is doing; `submit` then blocks only if the
        // queue is at capacity (that stall is the backpressure metric).
        if cfg.mean_gap_us > 0 {
            std::thread::sleep(Duration::from_micros(rng.exponential_us(cfg.mean_gap_us)));
        }
        let id = service.submit(job).expect("queue open while submitting");
        submitted_ids.push(id);
        if (i + 1) % stride == 0 {
            progress(i + 1, handle.queue_depth());
        }
    }
    let results = service.shutdown();

    let mut lost = Vec::new();
    let mut duplicated = Vec::new();
    for &id in &submitted_ids {
        match results.iter().filter(|r| r.id == id).count() {
            0 => lost.push(id),
            1 => {}
            _ => duplicated.push(id),
        }
    }
    let metrics = handle.metrics_snapshot();
    let latency = LATENCY_SERIES
        .iter()
        .map(|&(series, metric)| {
            let (p50, p95, p99, mean, count) =
                metrics.histogram(metric).map_or((0, 0, 0, 0.0, 0), |h| {
                    (
                        h.quantile(0.5),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.mean(),
                        h.count(),
                    )
                });
            LatencyEntry {
                series: series.to_string(),
                workers: cfg.workers as u64,
                jobs: count,
                p50_us: p50,
                p95_us: p95,
                p99_us: p99,
                mean_us: mean,
            }
        })
        .collect();
    let count_status = |pred: fn(&ccra_regalloc::BatchStatus) -> bool| {
        results.iter().filter(|r| pred(&r.status)).count() as u64
    };
    let report = LoadgenReport {
        workers: cfg.workers as u64,
        submitted: submitted_ids.len() as u64,
        completed: results.len() as u64,
        ok: count_status(|s| matches!(s, ccra_regalloc::BatchStatus::Ok)),
        degraded: count_status(|s| matches!(s, ccra_regalloc::BatchStatus::Degraded { .. })),
        failed: count_status(|s| matches!(s, ccra_regalloc::BatchStatus::Failed { .. })),
        lost,
        duplicated,
        latency,
    };
    (report, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LoadgenConfig {
        LoadgenConfig {
            jobs: 12,
            workers: 2,
            shard_workers: 1,
            queue_capacity: 4,
            mean_gap_us: 0,
            seed: 42,
        }
    }

    #[test]
    fn job_stream_is_a_pure_function_of_the_seed() {
        let a = job_stream(&tiny());
        let b = job_stream(&tiny());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program, y.program);
        }
        let other = job_stream(&LoadgenConfig { seed: 43, ..tiny() });
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.program != y.program),
            "a different seed changes the stream"
        );
    }

    #[test]
    fn sizes_are_heavy_tailed_but_bounded() {
        let stream = job_stream(&LoadgenConfig { jobs: 64, ..tiny() });
        let sizes: Vec<usize> = stream
            .iter()
            .map(|j| j.program.functions().count())
            .collect();
        assert!(sizes.iter().all(|&s| (2..=24).contains(&s)), "{sizes:?}");
        assert!(sizes.contains(&2), "the mode is the minimum");
        assert!(sizes.iter().any(|&s| s > 4), "the tail exists");
    }

    #[test]
    fn run_accounts_for_every_job_and_measures_latency() {
        let (report, results) = run_loadgen(&tiny(), |_, _| {});
        assert_eq!(report.submitted, 12);
        assert_eq!(report.completed, 12);
        assert!(report.accounting_clean(), "{report:?}");
        assert_eq!(report.ok + report.degraded + report.failed, 12);
        assert_eq!(results.len(), 12);
        assert_eq!(report.latency.len(), 3);
        for l in &report.latency {
            assert_eq!(l.jobs, 12, "{l:?}");
            assert!(l.p50_us <= l.p95_us && l.p95_us <= l.p99_us, "{l:?}");
        }
        let e2e = report
            .latency
            .iter()
            .find(|l| l.series == "e2e")
            .expect("e2e series present");
        let service = report
            .latency
            .iter()
            .find(|l| l.series == "service")
            .expect("service series present");
        assert!(
            e2e.p99_us >= service.p99_us,
            "end-to-end dominates service time: {e2e:?} vs {service:?}"
        );
    }
}
