//! The parallel-driver worker sweep behind the `par` binary: time each
//! workload through [`ParallelDriver`] at worker counts
//! [`SWEEP_WORKER_COUNTS`] against the serial pipeline, verify the outputs
//! are identical along the way, and gate the results.
//!
//! Two gates ride on the sweep:
//!
//! * [`workers1_gate`] — the driver at `workers = 1` must not be slower
//!   than the serial pipeline by more than a small tolerance: the sharding
//!   machinery itself has to be near-free. The sweep runs with the flight
//!   recorder **enabled**, takes one admission-limiter round trip
//!   ([`ccra_regalloc::AdmissionController`]) per timed run, and polls an
//!   enabled [`ccra_regalloc::Observatory`] once per timed run (the same
//!   interval-gated `maybe_tick` the background sampler calls), so this
//!   gate prices the always-on recorder, the serving path's admission
//!   bookkeeping, *and* the ops observatory's sampling path — not an
//!   idealized bare driver;
//! * [`compare_parallel`] — a loose throughput comparison against the
//!   committed baseline's `parallel` section, same spirit as
//!   [`crate::perfsnap::compare_snapshots`] but per (workload, workers)
//!   cell.
//!
//! Speedup numbers are honest wall-clock measurements on whatever machine
//! runs the sweep — on a single-core container the sweep records ≈ 1.0×
//! at every worker count (and that is the *correct* answer there, which is
//! why the CI gate bounds only the `workers = 1` overhead, not a speedup
//! floor).

use std::time::Instant;

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::driver::DefaultJob;
use ccra_regalloc::{
    allocate_program_instrumented, AdmissionConfig, AdmissionController, AllocRequest,
    AllocatorConfig, DriverSummary, FlightRecorder, MetricsRegistry, NoopSink, Observatory,
    ObsvConfig, ParallelDriver, TimelineCollector,
};
use ccra_workloads::{random_program, spec_program_scaled, FuzzConfig, Scale};

use crate::perfsnap::{program_size, ParEntry, MATRIX_WORKLOADS};

/// The worker counts the sweep measures.
pub const SWEEP_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The seed and shape of the many-function fuzz workload: the spec
/// programs have 1–4 functions each, so sharding needs a wide program to
/// show; 64 functions give every worker count in the sweep real work.
pub const FUZZ_WORKLOAD_FUNCS: usize = 64;

/// One named workload of the sweep.
pub struct ParWorkload {
    /// The name recorded in [`ParEntry::workload`].
    pub name: String,
    /// The program.
    pub program: Program,
}

/// The sweep's workloads: the five perf-matrix spec programs at `scale`,
/// plus a deterministic 64-function fuzz program (scale-independent —
/// its point is function *count*, which the spec programs lack).
pub fn par_workloads(scale: Scale) -> Vec<ParWorkload> {
    let mut out: Vec<ParWorkload> = MATRIX_WORKLOADS
        .iter()
        .map(|&w| ParWorkload {
            name: w.name().to_string(),
            program: spec_program_scaled(w, scale),
        })
        .collect();
    out.push(ParWorkload {
        name: format!("fuzz{FUZZ_WORKLOAD_FUNCS}"),
        program: random_program(
            1997,
            &FuzzConfig {
                functions: FUZZ_WORKLOAD_FUNCS,
                stmts_per_fn: 12,
                max_loop_depth: 1,
                max_trips: 4,
            },
        ),
    });
    out
}

/// Runs the sweep: for each workload, a best-of-`iters` serial reference
/// and a best-of-`iters` [`ParallelDriver`] run per worker count, each
/// verified byte-identical to the serial result. Calls `progress` after
/// each finished entry with the entry and the final iteration's
/// [`DriverSummary`] (job/degraded/panic counts are deterministic; the
/// steal count is a scheduling fact).
///
/// # Panics
///
/// Panics if a workload fails to profile or allocate, or if a parallel
/// result ever differs from the serial one — the sweep doubles as a
/// determinism check on real workloads.
pub fn run_par_sweep(
    scale: Scale,
    iters: u32,
    mut progress: impl FnMut(&ParEntry, &DriverSummary),
) -> Vec<ParEntry> {
    let config = AllocatorConfig::improved();
    let cost = CostModel::paper();
    let file = RegisterFile::mips_full();
    let mut entries = Vec::new();
    for workload in par_workloads(scale) {
        let freq = FrequencyInfo::profile(&workload.program)
            .unwrap_or_else(|e| panic!("{} failed to profile: {e}", workload.name));
        let (funcs, instrs) = program_size(&workload.program);

        let mut serial_micros = u64::MAX;
        let mut serial_alloc = None;
        for _ in 0..iters.max(1) {
            let start = Instant::now();
            let out = allocate_program_instrumented(
                &workload.program,
                &freq,
                file,
                &config,
                &cost,
                &mut NoopSink,
                &mut MetricsRegistry::disabled(),
            )
            .unwrap_or_else(|e| panic!("{} failed to allocate: {e}", workload.name));
            serial_micros = serial_micros.min(start.elapsed().as_micros() as u64);
            serial_alloc = Some(out);
        }
        let serial_alloc = serial_alloc.expect("at least one serial iteration ran");

        for workers in SWEEP_WORKER_COUNTS {
            let driver = ParallelDriver::new(workers);
            // Enabled on purpose: the sweep's timings (and the workers=1
            // gate) must include the always-on flight recorder's cost.
            let flight = FlightRecorder::new(workers + 1);
            // One limiter round trip per timed run, like the batch
            // service takes per job — the gate prices its bookkeeping.
            // Closed-loop, so the window never fills and nothing sheds.
            let admission = AdmissionController::new(AdmissionConfig::default());
            // An enabled observatory, polled once per timed run exactly
            // like the background sampler polls it — mostly the cheap
            // interval-gate branch, occasionally a real sample — so the
            // workers=1 gate prices the sampling path too.
            let obsv = Observatory::new(ObsvConfig {
                sampler_thread: false,
                ..ObsvConfig::default()
            });
            let scrape = MetricsRegistry::disabled();
            let collector = TimelineCollector::disabled();
            let mut best_micros = u64::MAX;
            let mut summary = None;
            for _ in 0..iters.max(1) {
                let req = AllocRequest {
                    program: &workload.program,
                    freq: &freq,
                    file,
                    config: &config,
                    cost: &cost,
                };
                let start = Instant::now();
                admission
                    .try_admit()
                    .expect("a closed-loop sweep never fills the admission window");
                let (out, report, _timeline) = driver
                    .allocate_program_observed(
                        &req,
                        &mut NoopSink,
                        &mut MetricsRegistry::disabled(),
                        &DefaultJob,
                        &collector,
                        flight.view(0),
                    )
                    .unwrap_or_else(|e| {
                        panic!("{} failed on {workers} worker(s): {e}", workload.name)
                    });
                let elapsed_us = start.elapsed().as_micros() as u64;
                admission.on_complete(elapsed_us);
                obsv.maybe_tick(&scrape);
                best_micros = best_micros.min(start.elapsed().as_micros() as u64);
                assert!(
                    out == serial_alloc,
                    "{}: parallel result at {workers} worker(s) differs from serial",
                    workload.name
                );
                summary = Some(report.summary());
            }
            let summary = summary.expect("at least one parallel iteration ran");
            let secs = best_micros.max(1) as f64 / 1e6;
            let entry = ParEntry {
                workload: workload.name.clone(),
                config: config.label(),
                regs: "mips".to_string(),
                workers: workers as u64,
                funcs,
                instrs,
                micros: best_micros,
                instrs_per_sec: instrs as f64 / secs,
                speedup: serial_micros as f64 / best_micros.max(1) as f64,
            };
            progress(&entry, &summary);
            entries.push(entry);
        }
    }
    entries
}

/// The `workers = 1` overhead gate: the driver with one worker runs jobs
/// inline, so it must stay within `threshold_pct` percent of the serial
/// pipeline on every workload.
///
/// # Errors
///
/// Returns a message naming every workload whose `workers = 1` entry was
/// more than `threshold_pct` percent slower than serial
/// (`speedup < 1 - threshold_pct/100`).
pub fn workers1_gate(parallel: &[ParEntry], threshold_pct: f64) -> Result<(), String> {
    let floor = 1.0 - threshold_pct / 100.0;
    let offenders: Vec<String> = parallel
        .iter()
        .filter(|e| e.workers == 1 && e.speedup < floor)
        .map(|e| format!("{} ({:.2}x)", e.workload, e.speedup))
        .collect();
    if offenders.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "parallel driver at workers=1 slower than serial by more than \
             {threshold_pct:.0}%: {}",
            offenders.join(", ")
        ))
    }
}

/// The verdict of comparing a current sweep against a baseline's.
#[derive(Debug, Clone, PartialEq)]
pub struct ParComparison {
    /// Baseline aggregate throughput over overlapping cells (instrs/sec).
    pub baseline_ips: f64,
    /// Current aggregate throughput over overlapping cells (instrs/sec).
    pub current_ips: f64,
    /// Aggregate throughput change in percent (negative = slower).
    pub delta_pct: f64,
    /// Whether the aggregate slowdown exceeds the threshold.
    pub regressed: bool,
    /// Sweep cells in the baseline but missing from the current run.
    pub missing: Vec<String>,
}

/// Compares a current sweep against a baseline's `parallel` section,
/// failing when aggregate throughput over the overlapping cells drops
/// more than `threshold_pct` percent.
///
/// # Errors
///
/// Fails when no sweep cells overlap.
pub fn compare_parallel(
    baseline: &[ParEntry],
    current: &[ParEntry],
    threshold_pct: f64,
) -> Result<ParComparison, String> {
    let mut base_micros = 0u64;
    let mut base_instrs = 0u64;
    let mut cur_micros = 0u64;
    let mut cur_instrs = 0u64;
    let mut missing = Vec::new();
    for b in baseline {
        let key = format!("{}/w{}", b.workload, b.workers);
        match current.iter().find(|c| {
            c.workload == b.workload
                && c.config == b.config
                && c.regs == b.regs
                && c.workers == b.workers
        }) {
            None => missing.push(key),
            Some(c) => {
                base_micros += b.micros;
                base_instrs += b.instrs;
                cur_micros += c.micros;
                cur_instrs += c.instrs;
            }
        }
    }
    if base_micros == 0 || cur_micros == 0 {
        return Err("no parallel sweep cells overlap between baseline and current".to_string());
    }
    let baseline_ips = base_instrs as f64 / (base_micros as f64 / 1e6);
    let current_ips = cur_instrs as f64 / (cur_micros as f64 / 1e6);
    let delta_pct = if baseline_ips == 0.0 {
        0.0
    } else {
        (current_ips - baseline_ips) / baseline_ips * 100.0
    };
    Ok(ParComparison {
        baseline_ips,
        current_ips,
        delta_pct,
        regressed: delta_pct < -threshold_pct,
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par(workload: &str, workers: u64, micros: u64, speedup: f64) -> ParEntry {
        ParEntry {
            workload: workload.to_string(),
            config: "SC+BS+PR".to_string(),
            regs: "mips".to_string(),
            workers,
            funcs: 4,
            instrs: 1000,
            micros,
            instrs_per_sec: 1000.0 / (micros as f64 / 1e6),
            speedup,
        }
    }

    #[test]
    fn workers1_gate_flags_only_slow_workers1_entries() {
        let sweep = vec![
            par("eqntott", 1, 100, 0.97),
            par("eqntott", 4, 80, 1.25), // other worker counts never gate
            par("ear", 1, 100, 0.80),
        ];
        workers1_gate(&sweep, 10.0).expect_err("ear at 0.80x trips a 10% gate");
        let err = workers1_gate(&sweep, 10.0).unwrap_err();
        assert!(err.contains("ear") && !err.contains("eqntott"), "{err}");
        workers1_gate(&sweep, 25.0).expect("0.80x passes a 25% gate");
        workers1_gate(&[], 10.0).expect("empty sweep passes vacuously");
    }

    #[test]
    fn compare_parallel_flags_aggregate_slowdowns() {
        let base = vec![par("eqntott", 1, 100, 1.0), par("eqntott", 4, 100, 1.0)];
        let slow = vec![par("eqntott", 1, 150, 1.0), par("eqntott", 4, 150, 1.0)];
        let cmp = compare_parallel(&base, &slow, 20.0).expect("comparable");
        assert!(cmp.regressed, "50% more time trips a 20% gate");
        let cmp = compare_parallel(&base, &base.clone(), 20.0).expect("comparable");
        assert!(!cmp.regressed);
        assert_eq!(cmp.delta_pct, 0.0);
        let partial = vec![par("eqntott", 1, 100, 1.0)];
        let cmp = compare_parallel(&base, &partial, 20.0).expect("comparable");
        assert_eq!(cmp.missing, vec!["eqntott/w4".to_string()]);
        assert!(compare_parallel(&base, &[], 20.0).is_err(), "no overlap");
    }

    #[test]
    fn sweep_runs_at_tiny_scale_and_matches_serial() {
        // The full sweep at minuscule scale: exercises the
        // parallel-equals-serial assertion inside run_par_sweep on every
        // workload (fuzz64 included) at all four worker counts.
        let mut seen = Vec::new();
        let entries = run_par_sweep(Scale(0.02), 1, |e, summary| {
            assert_eq!(summary.total_jobs, e.funcs, "summary counts every job");
            assert_eq!(summary.degraded, 0);
            assert_eq!(summary.panics, 0);
            assert_eq!(summary.workers as u64, e.workers.min(e.funcs));
            seen.push(e.workload.clone());
        });
        assert_eq!(
            entries.len(),
            par_workloads(Scale(0.02)).len() * SWEEP_WORKER_COUNTS.len()
        );
        assert_eq!(seen.len(), entries.len());
        for e in &entries {
            assert!(e.micros > 0 && e.instrs > 0 && e.speedup > 0.0);
        }
        let fuzz: Vec<_> = entries
            .iter()
            .filter(|e| e.workload.starts_with("fuzz"))
            .collect();
        assert_eq!(fuzz.len(), SWEEP_WORKER_COUNTS.len());
        assert_eq!(fuzz[0].funcs, FUZZ_WORKLOAD_FUNCS as u64);
    }
}
