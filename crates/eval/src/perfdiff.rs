//! Section-by-section diffing of two `BENCH_*.json` snapshots — the
//! `perfdiff` binary's engine.
//!
//! The perf / par / quality gates each compare one section of a snapshot
//! against a committed baseline with their own thresholds. `perfdiff`
//! answers the complementary question a human asks after a run: *what
//! actually changed between these two snapshot files, everywhere?* It
//! walks every section ([`SECTIONS`]), matches rows by their natural key
//! (matrix coordinates, worker count, series name, …), and emits one
//! [`DiffRow`] per metric with the absolute and percentage delta.
//!
//! Each metric carries a polarity: `higher_is_better` true (throughput,
//! speedup, hit rate), false (latency, spills, time), or `None` for
//! informational metrics (alert fire counts, resident bytes) that a gate
//! should never trip on. [`regressions`] filters the rows whose delta
//! moves in the *bad* direction by more than a threshold — the binary's
//! `--gate <pct>` exits 1 when any survive.

use crate::perfsnap::BenchSnapshot;
use serde::json::Value;

/// The snapshot sections the diff walks, in report order.
pub const SECTIONS: [&str; 7] = [
    "entries",
    "parallel",
    "latency",
    "admission",
    "quality",
    "cache",
    "alerts",
];

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The snapshot section (one of [`SECTIONS`]).
    pub section: String,
    /// The row's natural key within its section (e.g.
    /// `eqntott/SC+BS+PR/mips` or `e2e/w4`).
    pub key: String,
    /// The metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current - baseline`.
    pub delta: f64,
    /// Delta as a percentage of the baseline (0 when the baseline is 0).
    pub delta_pct: f64,
    /// Metric polarity: `Some(true)` = higher is better, `Some(false)` =
    /// higher is worse, `None` = informational (never gates).
    pub higher_is_better: Option<bool>,
}

impl DiffRow {
    /// Whether this row moved in the bad direction by more than
    /// `threshold_pct` percent of the baseline.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        match self.higher_is_better {
            Some(true) => self.delta_pct < -threshold_pct,
            Some(false) => self.delta_pct > threshold_pct,
            None => false,
        }
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("section".to_string(), Value::Str(self.section.clone())),
            ("key".to_string(), Value::Str(self.key.clone())),
            ("metric".to_string(), Value::Str(self.metric.clone())),
            ("baseline".to_string(), Value::Float(self.baseline)),
            ("current".to_string(), Value::Float(self.current)),
            ("delta".to_string(), Value::Float(self.delta)),
            ("delta_pct".to_string(), Value::Float(self.delta_pct)),
            (
                "higher_is_better".to_string(),
                match self.higher_is_better {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// A keyed row in one section present on only one side of the diff.
#[derive(Debug, Clone, PartialEq)]
pub struct UnmatchedRow {
    /// The snapshot section.
    pub section: String,
    /// The row's natural key.
    pub key: String,
    /// `true` when the row exists only in the baseline (dropped by the
    /// current run); `false` when it is new in the current run.
    pub only_in_baseline: bool,
}

/// The full section-by-section diff of two snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotDiff {
    /// One row per (section, key, metric) present on both sides.
    pub rows: Vec<DiffRow>,
    /// Keyed rows present on only one side.
    pub unmatched: Vec<UnmatchedRow>,
}

impl SnapshotDiff {
    /// The rows that moved in the bad direction by more than
    /// `threshold_pct`.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.regressed(threshold_pct))
            .collect()
    }

    /// The diff as one JSON document.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            (
                "rows".to_string(),
                Value::Arr(self.rows.iter().map(DiffRow::to_value).collect()),
            ),
            (
                "unmatched".to_string(),
                Value::Arr(
                    self.unmatched
                        .iter()
                        .map(|u| {
                            Value::Obj(vec![
                                ("section".to_string(), Value::Str(u.section.clone())),
                                ("key".to_string(), Value::Str(u.key.clone())),
                                (
                                    "only_in_baseline".to_string(),
                                    Value::Bool(u.only_in_baseline),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the diff as an aligned plain-text table, one line per
    /// metric, omitting metrics that did not change (unless
    /// `include_unchanged`).
    pub fn render(&self, include_unchanged: bool) -> String {
        let mut out = String::new();
        let mut section = "";
        let shown: Vec<&DiffRow> = self
            .rows
            .iter()
            .filter(|r| include_unchanged || r.delta.abs() > 1e-12)
            .collect();
        if shown.is_empty() && self.unmatched.is_empty() {
            return "no differences\n".to_string();
        }
        let key_w = shown
            .iter()
            .map(|r| r.key.len())
            .chain([3])
            .max()
            .unwrap_or(3);
        let metric_w = shown
            .iter()
            .map(|r| r.metric.len())
            .chain([6])
            .max()
            .unwrap_or(6);
        for r in &shown {
            if r.section != section {
                section = &r.section;
                out.push_str(&format!("[{section}]\n"));
            }
            let dir = match r.higher_is_better {
                Some(true) if r.delta < 0.0 => "worse",
                Some(false) if r.delta > 0.0 => "worse",
                Some(_) if r.delta.abs() > 1e-12 => "better",
                _ => "",
            };
            out.push_str(&format!(
                "  {:<key_w$}  {:<metric_w$}  {:>14.3} -> {:>14.3}  {:>+10.3} ({:>+7.2}%) {}\n",
                r.key, r.metric, r.baseline, r.current, r.delta, r.delta_pct, dir
            ));
        }
        for u in &self.unmatched {
            out.push_str(&format!(
                "[{}] {} only in {}\n",
                u.section,
                u.key,
                if u.only_in_baseline {
                    "baseline"
                } else {
                    "current"
                }
            ));
        }
        out
    }
}

fn pct(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (cur - base) / base * 100.0
    }
}

/// One side of a keyed metric table: `(key, [(metric, value, polarity)])`.
type KeyedRows = Vec<(String, Vec<(&'static str, f64, Option<bool>)>)>;

fn diff_section(out: &mut SnapshotDiff, section: &str, base: KeyedRows, cur: KeyedRows) {
    for (key, base_metrics) in &base {
        match cur.iter().find(|(k, _)| k == key) {
            None => out.unmatched.push(UnmatchedRow {
                section: section.to_string(),
                key: key.clone(),
                only_in_baseline: true,
            }),
            Some((_, cur_metrics)) => {
                for (metric, b, polarity) in base_metrics {
                    let Some((_, c, _)) = cur_metrics.iter().find(|(m, _, _)| m == metric) else {
                        continue;
                    };
                    out.rows.push(DiffRow {
                        section: section.to_string(),
                        key: key.clone(),
                        metric: (*metric).to_string(),
                        baseline: *b,
                        current: *c,
                        delta: c - b,
                        delta_pct: pct(*b, *c),
                        higher_is_better: *polarity,
                    });
                }
            }
        }
    }
    for (key, _) in &cur {
        if !base.iter().any(|(k, _)| k == key) {
            out.unmatched.push(UnmatchedRow {
                section: section.to_string(),
                key: key.clone(),
                only_in_baseline: false,
            });
        }
    }
}

/// Diffs two parsed snapshots section by section.
///
/// # Errors
///
/// Refuses to diff snapshots of different schema versions or scales —
/// the numbers would not be comparable.
pub fn diff_snapshots(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
) -> Result<SnapshotDiff, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.scale != current.scale {
        return Err(format!(
            "scale mismatch: baseline ran at {} but current ran at {}",
            baseline.scale, current.scale
        ));
    }
    let mut out = SnapshotDiff::default();

    let entries = |s: &BenchSnapshot| -> KeyedRows {
        s.entries
            .iter()
            .map(|e| {
                (
                    format!("{}/{}/{}", e.workload, e.config, e.regs),
                    vec![
                        ("micros", e.micros as f64, Some(false)),
                        ("instrs_per_sec", e.instrs_per_sec, Some(true)),
                        ("overhead_total", e.overhead_total, Some(false)),
                        ("spilled_ranges", e.spilled_ranges as f64, Some(false)),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "entries", entries(baseline), entries(current));

    let parallel = |s: &BenchSnapshot| -> KeyedRows {
        s.parallel
            .iter()
            .map(|p| {
                (
                    format!("{}/w{}", p.workload, p.workers),
                    vec![
                        ("micros", p.micros as f64, Some(false)),
                        ("instrs_per_sec", p.instrs_per_sec, Some(true)),
                        ("speedup", p.speedup, Some(true)),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "parallel", parallel(baseline), parallel(current));

    let latency = |s: &BenchSnapshot| -> KeyedRows {
        s.latency
            .iter()
            .map(|l| {
                (
                    format!("{}/w{}", l.series, l.workers),
                    vec![
                        ("p50_us", l.p50_us as f64, Some(false)),
                        ("p95_us", l.p95_us as f64, Some(false)),
                        ("p99_us", l.p99_us as f64, Some(false)),
                        ("mean_us", l.mean_us, Some(false)),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "latency", latency(baseline), latency(current));

    let admission = |s: &BenchSnapshot| -> KeyedRows {
        s.admission
            .iter()
            .map(|a| {
                (
                    format!("w{}", a.workers),
                    vec![
                        ("shed_rate", a.shed_rate(), Some(false)),
                        ("expired", a.expired as f64, Some(false)),
                        ("timeouts", a.timeouts as f64, Some(false)),
                        ("accepted", a.accepted as f64, None),
                        ("cancelled", a.cancelled as f64, None),
                    ],
                )
            })
            .collect()
    };
    diff_section(
        &mut out,
        "admission",
        admission(baseline),
        admission(current),
    );

    let quality = |s: &BenchSnapshot| -> KeyedRows {
        s.quality
            .iter()
            .map(|q| {
                (
                    format!("{}/{}/{}", q.workload, q.config, q.regs),
                    vec![
                        ("estimated_cycles", q.estimated_cycles, Some(false)),
                        ("measured_cycles", q.measured_cycles, Some(false)),
                        ("spilled_ranges", q.spilled_ranges as f64, Some(false)),
                        ("mem_peak_bytes", q.mem_peak_bytes as f64, None),
                        ("drift_pct", q.drift_pct, None),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "quality", quality(baseline), quality(current));

    let cache = |s: &BenchSnapshot| -> KeyedRows {
        s.cache
            .iter()
            .map(|c| {
                (
                    format!("{}/w{}/d{}", c.workload, c.workers, c.dirty_pct),
                    vec![
                        ("warm_micros", c.warm_micros as f64, Some(false)),
                        ("hit_rate", c.hit_rate, Some(true)),
                        ("speedup", c.speedup, Some(true)),
                        ("bytes", c.bytes as f64, None),
                        ("evictions", c.evictions as f64, None),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "cache", cache(baseline), cache(current));

    let alerts = |s: &BenchSnapshot| -> KeyedRows {
        s.alerts
            .iter()
            .map(|a| {
                (
                    format!("w{}/{}", a.workers, a.rule),
                    vec![
                        ("fires", a.fires as f64, None),
                        ("worst_value", a.worst_value, None),
                        ("time_to_clear_us", a.time_to_clear_us as f64, Some(false)),
                    ],
                )
            })
            .collect()
    };
    diff_section(&mut out, "alerts", alerts(baseline), alerts(current));

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfsnap::{
        AdmissionEntry, AlertEntry, BenchEntry, CacheEntry, HostInfo, LatencyEntry, ParEntry,
        BENCH_SCHEMA_VERSION,
    };

    fn snap() -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            scale: 0.1,
            iters: 1,
            host: HostInfo {
                available_parallelism: 8,
                worker_counts: vec![1, 4],
            },
            entries: vec![BenchEntry {
                workload: "eqntott".to_string(),
                config: "base".to_string(),
                regs: "mips".to_string(),
                funcs: 3,
                instrs: 1000,
                micros: 1000,
                funcs_per_sec: 3000.0,
                instrs_per_sec: 1_000_000.0,
                rounds: 4,
                spilled_ranges: 2,
                overhead_total: 100.0,
                phases: Vec::new(),
            }],
            parallel: vec![ParEntry {
                workload: "eqntott".to_string(),
                config: "SC+BS+PR".to_string(),
                regs: "mips".to_string(),
                workers: 4,
                funcs: 3,
                instrs: 1000,
                micros: 400,
                instrs_per_sec: 2_500_000.0,
                speedup: 2.5,
            }],
            latency: vec![LatencyEntry {
                series: "e2e".to_string(),
                workers: 4,
                jobs: 64,
                p50_us: 500,
                p95_us: 2000,
                p99_us: 4000,
                mean_us: 700.0,
            }],
            admission: vec![AdmissionEntry {
                workers: 4,
                submitted: 200,
                accepted: 150,
                shed: 50,
                expired: 5,
                cancelled: 3,
                timeouts: 2,
                per_priority: Vec::new(),
            }],
            quality: Vec::new(),
            cache: vec![CacheEntry {
                workload: "synth1000".to_string(),
                workers: 4,
                dirty_pct: 1,
                funcs: 1000,
                cold_micros: 90_000,
                warm_micros: 9_000,
                hit_rate: 0.99,
                hits: 990,
                misses: 10,
                bytes: 1 << 22,
                evictions: 0,
                speedup: 10.0,
            }],
            alerts: vec![AlertEntry {
                workers: 4,
                rule: "e2e_p99_slo_burn".to_string(),
                fires: 1,
                worst_value: 40.0,
                time_to_clear_us: 10_000_000,
            }],
        }
    }

    #[test]
    fn identical_snapshots_diff_to_all_zero_deltas() {
        let s = snap();
        let diff = diff_snapshots(&s, &s).expect("comparable");
        assert!(!diff.rows.is_empty());
        assert!(diff.rows.iter().all(|r| r.delta == 0.0));
        assert!(diff.unmatched.is_empty());
        assert!(diff.regressions(0.0).is_empty());
        assert_eq!(diff.render(false), "no differences\n");
        assert!(diff.render(true).contains("[entries]"));
    }

    #[test]
    fn polarity_decides_what_counts_as_a_regression() {
        let base = snap();
        let mut cur = snap();
        // Latency up 50% (higher-worse) and throughput down 20%
        // (higher-better): both regress past a 10% gate.
        cur.latency[0].p99_us = 6000;
        cur.entries[0].instrs_per_sec = 800_000.0;
        // Alert fires doubling is informational — never a regression.
        cur.alerts[0].fires = 2;
        let diff = diff_snapshots(&base, &cur).expect("comparable");
        let regs = diff.regressions(10.0);
        let keys: Vec<String> = regs
            .iter()
            .map(|r| format!("{}:{}", r.section, r.metric))
            .collect();
        assert!(keys.contains(&"latency:p99_us".to_string()), "{keys:?}");
        assert!(
            keys.contains(&"entries:instrs_per_sec".to_string()),
            "{keys:?}"
        );
        assert!(!keys.iter().any(|k| k.starts_with("alerts:")), "{keys:?}");
        // The same deltas pass a 60% gate.
        assert!(diff.regressions(60.0).is_empty());
        // Improvements never gate: a faster current run is clean.
        let mut faster = snap();
        faster.latency[0].p99_us = 1000;
        faster.entries[0].instrs_per_sec = 2_000_000.0;
        let diff = diff_snapshots(&base, &faster).expect("comparable");
        assert!(diff.regressions(0.0).is_empty());
    }

    #[test]
    fn unmatched_rows_are_reported_not_diffed() {
        let base = snap();
        let mut cur = snap();
        cur.parallel[0].workers = 8; // key changes: w4 dropped, w8 new
        let diff = diff_snapshots(&base, &cur).expect("comparable");
        let dropped: Vec<_> = diff
            .unmatched
            .iter()
            .filter(|u| u.section == "parallel")
            .collect();
        assert_eq!(dropped.len(), 2, "{dropped:?}");
        assert!(dropped
            .iter()
            .any(|u| u.only_in_baseline && u.key == "eqntott/w4"));
        assert!(dropped
            .iter()
            .any(|u| !u.only_in_baseline && u.key == "eqntott/w8"));
        assert!(!diff.rows.iter().any(|r| r.section == "parallel"));
        let rendered = diff.render(false);
        assert!(rendered.contains("only in baseline"), "{rendered}");
        assert!(rendered.contains("only in current"), "{rendered}");
    }

    #[test]
    fn refuses_mismatched_schema_or_scale() {
        let base = snap();
        let mut other = snap();
        other.scale = 0.5;
        assert!(diff_snapshots(&base, &other)
            .expect_err("scale mismatch")
            .contains("scale mismatch"));
        let mut other = snap();
        other.schema_version = 7;
        assert!(diff_snapshots(&base, &other)
            .expect_err("schema mismatch")
            .contains("schema mismatch"));
    }

    #[test]
    fn json_document_carries_every_row() {
        let base = snap();
        let mut cur = snap();
        cur.cache[0].hit_rate = 0.5;
        let diff = diff_snapshots(&base, &cur).expect("comparable");
        let json = diff.to_value().to_json();
        assert!(json.contains("\"section\":\"cache\""));
        assert!(json.contains("\"metric\":\"hit_rate\""));
        assert!(json.contains("\"higher_is_better\":true"));
        assert!(json.contains("\"higher_is_better\":null"));
    }
}
