//! Allocator performance snapshots: the `BENCH_*.json` format, the fixed
//! workload × allocator × register-file matrix the `perf` binary runs, and
//! the snapshot comparison behind its `--check` regression gate.
//!
//! A snapshot records, per matrix entry, the allocation wall-clock time,
//! throughput (functions/sec and instructions/sec), the per-phase time
//! breakdown (from the [`ccra_regalloc::metrics`] histograms), and the
//! resulting overhead — so a snapshot answers both "how fast is the
//! allocator" and "did speed come at the cost of allocation quality".
//! Snapshots are schema-versioned ([`BENCH_SCHEMA_VERSION`]); the gate
//! refuses to compare across schema or scale mismatches.

use std::time::Instant;

use ccra_analysis::{FreqMode, FrequencyInfo};
use ccra_ir::Program;
use ccra_machine::RegisterFile;
use ccra_regalloc::trace::Phase;
use ccra_regalloc::{allocate_program_instrumented, AllocatorConfig, MetricsRegistry, NoopSink};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};
use serde::json::Value;
use serde::{Deserialize, Serialize};

/// The `BENCH_*.json` schema version this crate reads and writes.
///
/// v8 added the `alerts` section ([`AlertEntry`]): per worker count, the
/// SLO burn-rate alert cycle the ops observatory observed during the
/// `loadgen --chaos` storm — fire count, worst burn rate, and
/// time-to-clear — produced against [`ccra_regalloc::Observatory`].
/// v7 added the `cache` section ([`CacheEntry`]): incremental
/// re-allocation sweeps — per dirty-fraction × worker-count cell, the
/// cold and warm wall-clock times, memo-cache hit rate, resident bytes,
/// and evictions — produced by the `incr` binary against
/// [`ccra_regalloc::AllocCache`].
/// v6 added the `quality` section ([`QualityEntry`]): allocation-quality
/// scores — estimated cycles, replay-measured overhead ops,
/// estimate-vs-measured drift, spill counts, save costs, and per-phase
/// memory-profile peaks — produced by the `quality` binary. v5 added the
/// `admission` section ([`AdmissionEntry`]): overload accounting — shed /
/// expired / cancelled / timeout counts and per-priority latency
/// quantiles — measured by the `loadgen --chaos` storm. v4 added the
/// `latency` section ([`LatencyEntry`]): serving-path SLO quantiles
/// measured by the `loadgen` binary against a live
/// [`ccra_regalloc::BatchService`]. v3 added the `host` section
/// ([`HostInfo`]): the machine's available parallelism and the worker
/// counts the run used, so a snapshot states what hardware class produced
/// its numbers. v2 added the `parallel` section: worker-count sweep
/// entries from the `par` binary ([`ParEntry`]). Older snapshots (missing
/// any section) are rejected — regenerate the baseline.
pub const BENCH_SCHEMA_VERSION: u32 = 8;

/// The workloads of the fixed perf matrix: a spread over the shapes the
/// suite contains — call-heavy integer code (eqntott, li), mixed DSP (ear),
/// a huge basic-block floating-point function (fpppp), and a call-free
/// vectorizable loop nest (tomcatv).
pub const MATRIX_WORKLOADS: [SpecProgram; 5] = [
    SpecProgram::Eqntott,
    SpecProgram::Ear,
    SpecProgram::Li,
    SpecProgram::Fpppp,
    SpecProgram::Tomcatv,
];

/// The allocator configurations of the fixed perf matrix.
pub fn matrix_configs() -> Vec<AllocatorConfig> {
    vec![
        AllocatorConfig::base(),
        AllocatorConfig::improved(),
        AllocatorConfig::improved_optimistic(),
        AllocatorConfig::priority(ccra_regalloc::PriorityOrdering::Sorting),
        AllocatorConfig::cbh(),
    ]
}

/// The register files of the fixed perf matrix, with stable labels.
pub fn matrix_files() -> Vec<(String, RegisterFile)> {
    vec![
        ("mips".to_string(), RegisterFile::mips_full()),
        ("tight".to_string(), RegisterFile::new(8, 6, 2, 2)),
    ]
}

/// One phase's share of an entry's allocation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTime {
    /// The phase name (see [`Phase::name`]).
    pub phase: String,
    /// Total microseconds spent in this phase across the run.
    pub micros: u64,
}

/// One cell of the perf matrix: a workload under one allocator on one
/// register file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// The workload name.
    pub workload: String,
    /// The allocator configuration label (e.g. `"SC+BS+PR"`).
    pub config: String,
    /// The register-file label (see [`matrix_files`]).
    pub regs: String,
    /// Functions in the workload.
    pub funcs: u64,
    /// Instructions (terminators included) in the workload.
    pub instrs: u64,
    /// Best-of-N allocation wall-clock microseconds.
    pub micros: u64,
    /// Functions allocated per second (from the best iteration).
    pub funcs_per_sec: f64,
    /// Instructions allocated per second (from the best iteration).
    pub instrs_per_sec: f64,
    /// Build→color→spill rounds executed.
    pub rounds: u64,
    /// Live ranges spilled.
    pub spilled_ranges: u64,
    /// Total weighted overhead of the result — deterministic, so any
    /// change between snapshots is an allocation-quality change.
    pub overhead_total: f64,
    /// Per-phase time breakdown of the best iteration.
    pub phases: Vec<PhaseTime>,
}

/// One cell of the parallel sweep: a workload allocated through
/// [`ccra_regalloc::ParallelDriver`] at one worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParEntry {
    /// The workload name.
    pub workload: String,
    /// The allocator configuration label.
    pub config: String,
    /// The register-file label (see [`matrix_files`]).
    pub regs: String,
    /// Worker threads the driver was configured with.
    pub workers: u64,
    /// Functions in the workload.
    pub funcs: u64,
    /// Instructions (terminators included) in the workload.
    pub instrs: u64,
    /// Best-of-N parallel allocation wall-clock microseconds.
    pub micros: u64,
    /// Instructions allocated per second (from the best iteration).
    pub instrs_per_sec: f64,
    /// Serial-pipeline time divided by this entry's time (> 1 = the
    /// driver was faster than `allocate_program`).
    pub speedup: f64,
}

/// One latency series of the serving path, measured by the `loadgen`
/// binary driving a live [`ccra_regalloc::BatchService`] open-loop at one
/// worker count. Quantiles are log2-bucket upper bounds
/// ([`ccra_regalloc::Histogram::quantile`]), microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyEntry {
    /// Which latency: `"queue_wait"`, `"service"`, or `"e2e"`.
    pub series: String,
    /// Service workers the batch ran with.
    pub workers: u64,
    /// Jobs the run completed (the histogram's sample count).
    pub jobs: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
}

/// One priority class's end-to-end latency in an overload run
/// ([`AdmissionEntry`]). Quantiles are log2-bucket upper bounds,
/// microseconds, over accepted jobs that produced an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityLatency {
    /// The priority label (`"interactive"`, `"batch"`, `"background"`).
    pub priority: String,
    /// Accepted jobs of this class that ran.
    pub jobs: u64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub p99_us: u64,
}

/// The overload accounting of one `loadgen --chaos` storm at one worker
/// count: what the admission limiter shed, what expired or was cancelled
/// in the queue, what the watchdog timed out, and how each priority
/// class's tail latency fared.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEntry {
    /// Service workers the storm ran against.
    pub workers: u64,
    /// Submissions attempted (sheds included).
    pub submitted: u64,
    /// Submissions accepted (an id was issued).
    pub accepted: u64,
    /// Submissions the admission limiter shed.
    pub shed: u64,
    /// Accepted jobs whose deadline passed while queued.
    pub expired: u64,
    /// Accepted jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs whose service-time watchdog fired.
    pub timeouts: u64,
    /// Per-priority end-to-end quantiles of accepted jobs.
    pub per_priority: Vec<PriorityLatency>,
}

impl AdmissionEntry {
    /// The shed fraction of all attempted submissions.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// One alert rule's activity during a `loadgen --chaos` storm at one
/// worker count, as the ops observatory saw it: how many times the rule
/// fired, the worst value it observed while firing (for the SLO rule,
/// the peak burn rate — a multiple of the error budget), and how long
/// the last cycle took to clear after the storm subsided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEntry {
    /// Service workers the storm ran against.
    pub workers: u64,
    /// The alert rule name (e.g. `"e2e_p99_slo_burn"`).
    pub rule: String,
    /// Fire transitions across the run.
    pub fires: u64,
    /// Worst (largest-magnitude) value observed while firing.
    pub worst_value: f64,
    /// Microseconds from the last fire to its clear (0 if never fired
    /// or still firing at snapshot time).
    pub time_to_clear_us: u64,
}

/// One cell of the quality matrix: a workload under one allocator on one
/// register file, scored by the allocation-quality observatory
/// ([`ccra_regalloc::quality`]). The estimated numbers are deterministic
/// — a pure function of workload, allocator, and register file — so any
/// change between snapshots is an allocation-quality change, which is
/// exactly what the `quality --check` gate trips on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityEntry {
    /// The workload name.
    pub workload: String,
    /// The allocator configuration label (e.g. `"SC+BS+PR"`).
    pub config: String,
    /// The register-file label (see [`matrix_files`]).
    pub regs: String,
    /// Estimated execution cycles (weighted useful instructions plus the
    /// estimated overhead, priced by the DECstation cycle model).
    pub estimated_cycles: f64,
    /// Estimated spill overhead ops (frequency-weighted).
    pub est_spill_ops: f64,
    /// Estimated caller-save overhead ops.
    pub est_caller_save_ops: f64,
    /// Estimated callee-save overhead ops.
    pub est_callee_save_ops: f64,
    /// Estimated shuffle-move ops.
    pub est_shuffle_ops: f64,
    /// Overhead operations the interpreter actually executed replaying
    /// the allocated program (0 when the replay failed).
    pub measured_overhead_ops: f64,
    /// Measured execution cycles (0 when the replay failed).
    pub measured_cycles: f64,
    /// Estimate-vs-measured drift of total overhead ops, percent of the
    /// measured value (0 when the replay failed or measured nothing).
    pub drift_pct: f64,
    /// Whether the interpreter replay succeeded.
    pub replay_ok: bool,
    /// Live ranges spilled across the program.
    pub spilled_ranges: u64,
    /// Functions that took the degraded spill-everything fallback.
    pub degraded_funcs: u64,
    /// Peak resident-bytes estimate across pipeline phases (the memory
    /// profile's high-water mark; see
    /// [`ccra_regalloc::MemProfile::peak_bytes`]).
    pub mem_peak_bytes: u64,
    /// Allocation events the memory profile recorded.
    pub mem_allocs: u64,
}

/// One cell of the incremental re-allocation sweep: a synthetic program
/// re-allocated through a warm [`ccra_regalloc::AllocCache`] after a
/// given fraction of its functions were edited, at one worker count.
/// Every cell is byte-identity-checked against an uncached cold run
/// before it is recorded — a warm number for a wrong allocation never
/// enters a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The workload name (e.g. `"synth1000"`).
    pub workload: String,
    /// Driver worker threads for both the cold and warm runs.
    pub workers: u64,
    /// Percentage of functions edited between the cold and warm runs
    /// (0 = fully warm, 100 = nothing reusable).
    pub dirty_pct: u64,
    /// Functions in the workload.
    pub funcs: u64,
    /// Cold (empty-cache) allocation wall-clock microseconds.
    pub cold_micros: u64,
    /// Warm (populated-cache) re-allocation wall-clock microseconds.
    pub warm_micros: u64,
    /// Memo-cache hit rate of the warm run, 0.0–1.0.
    pub hit_rate: f64,
    /// Memo-cache hits of the warm run.
    pub hits: u64,
    /// Memo-cache misses of the warm run.
    pub misses: u64,
    /// Resident cache bytes after the warm run.
    pub bytes: u64,
    /// Entries evicted across both runs.
    pub evictions: u64,
    /// Cold time divided by warm time (> 1 = the cache paid off).
    pub speedup: f64,
}

/// Host metadata recorded in a snapshot: what machine class and worker
/// configuration produced the numbers. Speedups and throughput are
/// meaningless without it — a 1-vCPU runner legitimately measures ≈ 1.0×
/// at every worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` at snapshot time (0 when
    /// the platform cannot report it).
    pub available_parallelism: u64,
    /// The driver worker counts the run measured (empty for the
    /// serial-only matrix).
    pub worker_counts: Vec<u64>,
}

impl HostInfo {
    /// Detects the current host, recording the given worker counts.
    pub fn detect(worker_counts: &[usize]) -> Self {
        HostInfo {
            available_parallelism: std::thread::available_parallelism()
                .map_or(0, |n| n.get() as u64),
            worker_counts: worker_counts.iter().map(|&w| w as u64).collect(),
        }
    }
}

/// A schema-versioned performance snapshot (`BENCH_*.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// The `BENCH_*.json` schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The workload scale the matrix ran at.
    pub scale: f64,
    /// Timed iterations per entry (the best one is recorded).
    pub iters: u32,
    /// The machine and worker configuration that produced the numbers.
    pub host: HostInfo,
    /// One entry per matrix cell.
    pub entries: Vec<BenchEntry>,
    /// The parallel-driver worker sweep (empty when only the serial
    /// matrix ran; filled by the `par` binary).
    pub parallel: Vec<ParEntry>,
    /// Serving-path latency SLO series (empty until the `loadgen` binary
    /// fills them).
    pub latency: Vec<LatencyEntry>,
    /// Overload accounting from the `loadgen --chaos` storm (empty until
    /// that run fills it).
    pub admission: Vec<AdmissionEntry>,
    /// Allocation-quality scores (empty until the `quality` binary fills
    /// them).
    pub quality: Vec<QualityEntry>,
    /// Incremental re-allocation sweep (empty until the `incr` binary
    /// fills it).
    pub cache: Vec<CacheEntry>,
    /// Ops-observatory alert activity during the `loadgen --chaos` storm
    /// (empty until that run fills it).
    pub alerts: Vec<AlertEntry>,
}

impl BenchSnapshot {
    /// Aggregate throughput: total instructions allocated per second,
    /// weighting every entry by its size (total work / total time).
    pub fn aggregate_instrs_per_sec(&self) -> f64 {
        let instrs: u64 = self.entries.iter().map(|e| e.instrs).sum();
        let micros: u64 = self.entries.iter().map(|e| e.micros).sum();
        if micros == 0 {
            0.0
        } else {
            instrs as f64 / (micros as f64 / 1e6)
        }
    }

    /// Total allocation time across all entries, microseconds.
    pub fn total_micros(&self) -> u64 {
        self.entries.iter().map(|e| e.micros).sum()
    }

    /// Looks up an entry by matrix coordinates.
    pub fn entry(&self, workload: &str, config: &str, regs: &str) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .find(|e| e.workload == workload && e.config == config && e.regs == regs)
    }
}

/// The size of a program as the snapshot reports it: functions and
/// instructions (block terminators included).
pub fn program_size(p: &Program) -> (u64, u64) {
    let mut funcs = 0u64;
    let mut instrs = 0u64;
    for (_, f) in p.functions() {
        funcs += 1;
        for (_, block) in f.blocks() {
            instrs += block.insts.len() as u64 + 1; // + terminator
        }
    }
    (funcs, instrs)
}

/// Runs one matrix cell: `iters` timed allocations of an already-profiled
/// workload, keeping the fastest iteration's time and phase breakdown.
pub fn run_entry(
    workload: &str,
    ir: &Program,
    freq: &FrequencyInfo,
    config: &AllocatorConfig,
    regs_label: &str,
    file: RegisterFile,
    iters: u32,
) -> BenchEntry {
    let (funcs, instrs) = program_size(ir);
    let mut best_micros = u64::MAX;
    let mut best_metrics = MetricsRegistry::disabled();
    let mut rounds = 0u64;
    let mut spilled_ranges = 0u64;
    let mut overhead_total = 0.0;
    for _ in 0..iters.max(1) {
        let mut metrics = MetricsRegistry::new();
        let start = Instant::now();
        let out = allocate_program_instrumented(
            ir,
            freq,
            file,
            config,
            &ccra_machine::CostModel::paper(),
            &mut NoopSink,
            &mut metrics,
        )
        .expect("benchmark programs allocate");
        let micros = start.elapsed().as_micros() as u64;
        if micros < best_micros {
            best_micros = micros;
            best_metrics = metrics;
        }
        rounds = best_metrics.counter("alloc_rounds_total");
        spilled_ranges = out.per_func.iter().map(|fa| fa.spilled_ranges as u64).sum();
        overhead_total = out.overhead.total();
    }
    let secs = (best_micros.max(1)) as f64 / 1e6;
    let phases = Phase::ALL
        .iter()
        .filter_map(|ph| {
            best_metrics.histogram(ph.metric_name()).map(|h| PhaseTime {
                phase: ph.name().to_string(),
                micros: h.sum(),
            })
        })
        .collect();
    BenchEntry {
        workload: workload.to_string(),
        config: config.label(),
        regs: regs_label.to_string(),
        funcs,
        instrs,
        micros: best_micros,
        funcs_per_sec: funcs as f64 / secs,
        instrs_per_sec: instrs as f64 / secs,
        rounds,
        spilled_ranges,
        overhead_total,
        phases,
    }
}

/// Runs the full fixed matrix at `scale`, timing each cell `iters` times.
/// Calls `progress` after each finished entry (for CLI feedback).
pub fn run_matrix(
    scale: Scale,
    iters: u32,
    mut progress: impl FnMut(&BenchEntry),
) -> BenchSnapshot {
    let mut entries = Vec::new();
    for program in MATRIX_WORKLOADS {
        let ir = spec_program_scaled(program, scale);
        let freq = FrequencyInfo::profile(&ir)
            .unwrap_or_else(|e| panic!("{program} failed to profile: {e}"));
        debug_assert_eq!(freq.mode(), FreqMode::Dynamic);
        for config in matrix_configs() {
            for (regs_label, file) in matrix_files() {
                let entry = run_entry(
                    program.name(),
                    &ir,
                    &freq,
                    &config,
                    &regs_label,
                    file,
                    iters,
                );
                progress(&entry);
                entries.push(entry);
            }
        }
    }
    BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        scale: scale.0,
        iters,
        host: HostInfo::detect(&[]),
        entries,
        parallel: Vec::new(),
        latency: Vec::new(),
        admission: Vec::new(),
        quality: Vec::new(),
        cache: Vec::new(),
        alerts: Vec::new(),
    }
}

/// One entry's baseline-vs-current delta.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryDelta {
    /// `workload/config/regs` matrix coordinates.
    pub key: String,
    /// Baseline instructions/sec.
    pub baseline_ips: f64,
    /// Current instructions/sec.
    pub current_ips: f64,
    /// Throughput change in percent (negative = slower).
    pub delta_pct: f64,
    /// Whether the deterministic overhead total changed — an
    /// allocation-quality change, not a perf one.
    pub overhead_changed: bool,
}

/// The verdict of comparing a current snapshot against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfComparison {
    /// Baseline aggregate throughput (instrs/sec).
    pub baseline_ips: f64,
    /// Current aggregate throughput (instrs/sec).
    pub current_ips: f64,
    /// Aggregate throughput change in percent (negative = slower).
    pub delta_pct: f64,
    /// Whether the aggregate slowdown exceeds the threshold.
    pub regressed: bool,
    /// Per-entry deltas for every matrix cell present in both snapshots.
    pub per_entry: Vec<EntryDelta>,
    /// Matrix cells in the baseline but missing from the current run.
    pub missing: Vec<String>,
}

/// Compares a current snapshot against a baseline, failing the gate when
/// aggregate throughput drops more than `threshold_pct` percent.
///
/// # Errors
///
/// Refuses (with a message) to compare snapshots of different schema
/// versions or scales, or when no matrix cells overlap.
pub fn compare_snapshots(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    threshold_pct: f64,
) -> Result<PerfComparison, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.scale != current.scale {
        return Err(format!(
            "scale mismatch: baseline ran at {} but this run is at {} — \
             rerun with --scale {} (or regenerate the baseline)",
            baseline.scale, current.scale, baseline.scale
        ));
    }
    let mut per_entry = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.entries {
        let key = format!("{}/{}/{}", b.workload, b.config, b.regs);
        match current.entry(&b.workload, &b.config, &b.regs) {
            None => missing.push(key),
            Some(c) => per_entry.push(EntryDelta {
                key,
                baseline_ips: b.instrs_per_sec,
                current_ips: c.instrs_per_sec,
                delta_pct: pct_change(b.instrs_per_sec, c.instrs_per_sec),
                overhead_changed: (b.overhead_total - c.overhead_total).abs() > 1e-9,
            }),
        }
    }
    if per_entry.is_empty() {
        return Err("no matrix cells overlap between baseline and current".to_string());
    }
    let baseline_ips = baseline.aggregate_instrs_per_sec();
    let current_ips = current.aggregate_instrs_per_sec();
    let delta_pct = pct_change(baseline_ips, current_ips);
    Ok(PerfComparison {
        baseline_ips,
        current_ips,
        delta_pct,
        regressed: delta_pct < -threshold_pct,
        per_entry,
        missing,
    })
}

fn pct_change(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (cur - base) / base * 100.0
    }
}

/// Parses a snapshot from JSON text.
///
/// # Errors
///
/// Fails on malformed JSON, a missing field, or an unsupported
/// `schema_version`.
pub fn parse_snapshot(text: &str) -> Result<BenchSnapshot, String> {
    let value = serde::json::parse(text).map_err(|e| format!("malformed snapshot JSON: {e}"))?;
    let version = value
        .get("schema_version")
        .and_then(Value::as_i64)
        .ok_or("snapshot has no schema_version")?;
    if version != i64::from(BENCH_SCHEMA_VERSION) {
        return Err(format!(
            "unsupported snapshot schema v{version} (this build reads v{BENCH_SCHEMA_VERSION})"
        ));
    }
    BenchSnapshot::from_value(&value).map_err(|e| format!("malformed snapshot: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(workload: &str, config: &str, regs: &str, micros: u64, instrs: u64) -> BenchEntry {
        BenchEntry {
            workload: workload.to_string(),
            config: config.to_string(),
            regs: regs.to_string(),
            funcs: 3,
            instrs,
            micros,
            funcs_per_sec: 3.0 / (micros as f64 / 1e6),
            instrs_per_sec: instrs as f64 / (micros as f64 / 1e6),
            rounds: 4,
            spilled_ranges: 2,
            overhead_total: 123.0,
            phases: vec![PhaseTime {
                phase: "build".to_string(),
                micros: micros / 2,
            }],
        }
    }

    fn snapshot(entries: Vec<BenchEntry>) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            scale: 0.1,
            iters: 3,
            host: HostInfo {
                available_parallelism: 8,
                worker_counts: vec![1, 4],
            },
            entries,
            parallel: Vec::new(),
            latency: Vec::new(),
            admission: Vec::new(),
            quality: Vec::new(),
            cache: Vec::new(),
            alerts: Vec::new(),
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut snap = snapshot(vec![entry("eqntott", "base", "mips", 1000, 5000)]);
        snap.parallel.push(ParEntry {
            workload: "eqntott".to_string(),
            config: "SC+BS+PR".to_string(),
            regs: "mips".to_string(),
            workers: 4,
            funcs: 3,
            instrs: 5000,
            micros: 900,
            instrs_per_sec: 5000.0 / (900.0 / 1e6),
            speedup: 1.11,
        });
        snap.latency.push(LatencyEntry {
            series: "e2e".to_string(),
            workers: 4,
            jobs: 64,
            p50_us: 511,
            p95_us: 2047,
            p99_us: 4095,
            mean_us: 700.5,
        });
        snap.admission.push(AdmissionEntry {
            workers: 4,
            submitted: 200,
            accepted: 120,
            shed: 80,
            expired: 7,
            cancelled: 3,
            timeouts: 2,
            per_priority: vec![PriorityLatency {
                priority: "interactive".to_string(),
                jobs: 30,
                p50_us: 255,
                p99_us: 1023,
            }],
        });
        snap.quality.push(QualityEntry {
            workload: "eqntott".to_string(),
            config: "SC+BS+PR".to_string(),
            regs: "mips".to_string(),
            estimated_cycles: 123456.0,
            est_spill_ops: 100.0,
            est_caller_save_ops: 40.0,
            est_callee_save_ops: 60.0,
            est_shuffle_ops: 0.0,
            measured_overhead_ops: 190.0,
            measured_cycles: 120000.0,
            drift_pct: 5.26,
            replay_ok: true,
            spilled_ranges: 12,
            degraded_funcs: 0,
            mem_peak_bytes: 65536,
            mem_allocs: 40,
        });
        snap.cache.push(CacheEntry {
            workload: "synth1000".to_string(),
            workers: 4,
            dirty_pct: 1,
            funcs: 1000,
            cold_micros: 90_000,
            warm_micros: 9_000,
            hit_rate: 0.99,
            hits: 990,
            misses: 10,
            bytes: 4_194_304,
            evictions: 0,
            speedup: 10.0,
        });
        snap.alerts.push(AlertEntry {
            workers: 4,
            rule: "e2e_p99_slo_burn".to_string(),
            fires: 1,
            worst_value: 48.5,
            time_to_clear_us: 12_000_000,
        });
        let json = snap.to_json();
        assert!(json.contains("\"schema_version\":8"));
        assert!(json.contains("\"parallel\":["));
        assert!(json.contains("\"latency\":["));
        assert!(json.contains("\"admission\":["));
        assert!(json.contains("\"quality\":["));
        assert!(json.contains("\"cache\":["));
        assert!(json.contains("\"alerts\":["));
        assert!(json.contains("\"rule\":\"e2e_p99_slo_burn\""));
        assert!(json.contains("\"worst_value\":48.5"));
        assert!(json.contains("\"dirty_pct\":1"));
        assert!(json.contains("\"hit_rate\":0.99"));
        assert!(json.contains("\"shed\":80"));
        assert!(json.contains("\"estimated_cycles\":123456"));
        assert!(json.contains("\"p99_us\":4095"));
        assert!(json.contains("\"available_parallelism\":8"));
        let back = parse_snapshot(&json).expect("snapshot parses back");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_unknown_schema_versions() {
        let snap = snapshot(vec![]);
        let json = snap
            .to_json()
            .replace("\"schema_version\":8", "\"schema_version\":99");
        let err = parse_snapshot(&json).expect_err("v99 is unreadable");
        assert!(err.contains("v99"), "{err}");
        // A v1 snapshot has no `parallel` section; even with the version
        // field forged, the body does not parse as v6.
        let forged_v1 = snap.to_json().replace(",\"parallel\":[]", "");
        assert!(parse_snapshot(&forged_v1).is_err());
        // A v2 snapshot has no `host` section.
        let forged_v2 = snap.to_json().replace(
            ",\"host\":{\"available_parallelism\":8,\"worker_counts\":[1,4]}",
            "",
        );
        assert_ne!(forged_v2, snap.to_json(), "host section was stripped");
        assert!(parse_snapshot(&forged_v2).is_err());
        // A v3 snapshot has no `latency` section.
        let forged_v3 = snap.to_json().replace(",\"latency\":[]", "");
        assert_ne!(forged_v3, snap.to_json(), "latency section was stripped");
        assert!(parse_snapshot(&forged_v3).is_err());
        // A v4 snapshot has no `admission` section.
        let forged_v4 = snap.to_json().replace(",\"admission\":[]", "");
        assert_ne!(forged_v4, snap.to_json(), "admission section was stripped");
        assert!(parse_snapshot(&forged_v4).is_err());
        // A v5 snapshot has no `quality` section.
        let forged_v5 = snap.to_json().replace(",\"quality\":[]", "");
        assert_ne!(forged_v5, snap.to_json(), "quality section was stripped");
        assert!(parse_snapshot(&forged_v5).is_err());
        // A v6 snapshot has no `cache` section.
        let forged_v6 = snap.to_json().replace(",\"cache\":[]", "");
        assert_ne!(forged_v6, snap.to_json(), "cache section was stripped");
        assert!(parse_snapshot(&forged_v6).is_err());
        // A v7 snapshot has no `alerts` section; forging the version
        // field does not make the body parse as v8.
        let forged_v7 = snap.to_json().replace(",\"alerts\":[]", "");
        assert_ne!(forged_v7, snap.to_json(), "alerts section was stripped");
        assert!(parse_snapshot(&forged_v7).is_err());
        assert!(parse_snapshot("{").is_err());
        assert!(parse_snapshot("{}").is_err());
    }

    #[test]
    fn host_detect_reports_the_machine() {
        let host = HostInfo::detect(&[1, 2, 4, 8]);
        assert!(
            host.available_parallelism > 0,
            "the test machine reports its parallelism"
        );
        assert_eq!(host.worker_counts, vec![1, 2, 4, 8]);
        assert_eq!(HostInfo::detect(&[]).worker_counts, Vec::<u64>::new());
    }

    #[test]
    fn compare_flags_regressions_beyond_threshold() {
        let base = snapshot(vec![entry("eqntott", "base", "mips", 1000, 10000)]);
        // 25% slower: 1000us -> 1333us for the same work.
        let slow = snapshot(vec![entry("eqntott", "base", "mips", 1333, 10000)]);
        let cmp = compare_snapshots(&base, &slow, 15.0).expect("comparable");
        assert!(cmp.regressed, "25% slowdown trips a 15% gate");
        assert!(cmp.delta_pct < -15.0);
        // 5% slower passes the gate.
        let ok = snapshot(vec![entry("eqntott", "base", "mips", 1050, 10000)]);
        let cmp = compare_snapshots(&base, &ok, 15.0).expect("comparable");
        assert!(!cmp.regressed);
        assert_eq!(cmp.per_entry.len(), 1);
        assert!(!cmp.per_entry[0].overhead_changed);
    }

    #[test]
    fn compare_refuses_mismatched_scale_and_schema() {
        let base = snapshot(vec![entry("eqntott", "base", "mips", 1000, 10000)]);
        let mut other = base.clone();
        other.scale = 0.5;
        assert!(compare_snapshots(&base, &other, 15.0)
            .expect_err("scale mismatch")
            .contains("scale mismatch"));
        let mut other = base.clone();
        other.schema_version = 1;
        assert!(compare_snapshots(&base, &other, 15.0)
            .expect_err("schema mismatch")
            .contains("schema mismatch"));
        let disjoint = snapshot(vec![entry("li", "base", "mips", 1000, 10000)]);
        let err = compare_snapshots(&base, &disjoint, 15.0).expect_err("no overlap");
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn compare_reports_missing_cells_and_overhead_changes() {
        let base = snapshot(vec![
            entry("eqntott", "base", "mips", 1000, 10000),
            entry("li", "base", "mips", 1000, 10000),
        ]);
        let mut cur = snapshot(vec![entry("eqntott", "base", "mips", 1000, 10000)]);
        cur.entries[0].overhead_total += 5.0;
        let cmp = compare_snapshots(&base, &cur, 15.0).expect("comparable");
        assert_eq!(cmp.missing, vec!["li/base/mips".to_string()]);
        assert!(cmp.per_entry[0].overhead_changed);
    }

    #[test]
    fn matrix_runs_at_tiny_scale() {
        // One workload's worth of matrix at minuscule scale, to keep the
        // test fast: drive run_entry directly.
        let ir = spec_program_scaled(SpecProgram::Tomcatv, Scale(0.02));
        let freq = FrequencyInfo::profile(&ir).expect("profiles");
        let e = run_entry(
            "tomcatv",
            &ir,
            &freq,
            &AllocatorConfig::improved(),
            "mips",
            RegisterFile::mips_full(),
            2,
        );
        assert!(e.funcs > 0 && e.instrs > 0);
        assert!(e.micros > 0);
        assert!(e.instrs_per_sec > 0.0);
        assert!(!e.phases.is_empty(), "phase breakdown present");
        assert!(
            e.phases.iter().any(|p| p.phase == "build"),
            "build phase timed"
        );
        let total_phase: u64 = e.phases.iter().map(|p| p.micros).sum();
        assert!(
            total_phase <= e.micros * 2,
            "phase totals are plausible vs wall clock"
        );
    }
}
