//! ASCII line charts for the figure experiments.
//!
//! The paper's figures plot ratio or cost series against the register
//! sweep; [`render_chart`] draws the same series in the terminal so the
//! *shape* (crossovers, plateaus, blow-ups) is visible at a glance.

/// One plotted series: a short label and one value per x position.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label; its first character is the plot glyph.
    pub label: String,
    /// The y values, one per x tick (NaN values are skipped).
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }
}

/// Renders series as an ASCII chart with `height` rows.
///
/// The y axis is linear from 0 (or the minimum, if negative) to the
/// maximum across all series; each series is drawn with the first
/// character of its label, later series overwrite earlier ones where they
/// collide.
///
/// # Example
///
/// ```
/// use ccra_eval::plot::{render_chart, Series};
///
/// let chart = render_chart(
///     "demo",
///     &["a".into(), "b".into(), "c".into()],
///     &[Series::new("x", vec![1.0, 2.0, 3.0])],
///     5,
/// );
/// assert!(chart.contains("demo"));
/// assert!(chart.contains('x'));
/// ```
pub fn render_chart(title: &str, x_labels: &[String], series: &[Series], height: usize) -> String {
    let height = height.max(2);
    let n = x_labels.len();
    let max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let min = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    if !max.is_finite() || n == 0 {
        return format!("{title}\n(no data)\n");
    }
    let span = (max - min).max(1e-12);
    let col_width = 4usize;
    let mut grid = vec![vec![' '; n * col_width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for (x, &v) in s.values.iter().enumerate().take(n) {
            if !v.is_finite() {
                continue;
            }
            let row = ((v - min) / span * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][x * col_width + col_width / 2] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let y = max - (r as f64 / (height - 1) as f64) * span;
        let line: String = row.iter().collect();
        out.push_str(&format!("{y:>10.2} |{}\n", line.trim_end()));
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(n * col_width)));
    // x tick labels, every few ticks to stay readable.
    let step = (n / 6).max(1);
    let mut ticks = String::new();
    for i in (0..n).step_by(step) {
        let pos = i * col_width;
        if pos >= ticks.len() {
            ticks.push_str(&" ".repeat(pos - ticks.len()));
            ticks.push_str(&x_labels[i]);
        }
    }
    out.push_str(&format!("{:>10}  {}\n", "", ticks));
    let legend: Vec<String> = series
        .iter()
        .map(|s| format!("{} = {}", s.label.chars().next().unwrap_or('*'), s.label))
        .collect();
    out.push_str(&format!("{:>10}  [{}]\n", "", legend.join(", ")));
    out
}

/// Extracts a numeric column from a [`crate::Table`] as chart input
/// (non-numeric cells become NaN).
pub fn column_series(table: &crate::Table, column: usize) -> Series {
    let label = table
        .headers
        .get(column)
        .cloned()
        .unwrap_or_else(|| format!("col{column}"));
    let values = table
        .rows
        .iter()
        .map(|r| {
            r.get(column)
                .and_then(|c| c.parse::<f64>().ok())
                .unwrap_or(f64::NAN)
        })
        .collect();
    Series { label, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let chart = render_chart(
            "t",
            &(0..10).map(|i| format!("x{i}")).collect::<Vec<_>>(),
            &[Series::new("up", (0..10).map(f64::from).collect())],
            8,
        );
        // The glyph must appear on several distinct rows.
        let rows_with_glyph = chart
            .lines()
            .filter(|l| l.contains('u') && l.contains('|'))
            .count();
        assert!(rows_with_glyph >= 4, "{chart}");
        assert!(chart.contains("u = up"));
    }

    #[test]
    fn handles_empty_and_nan() {
        let chart = render_chart("t", &[], &[], 5);
        assert!(chart.contains("no data"));
        let chart = render_chart("t", &["a".into()], &[Series::new("s", vec![f64::NAN])], 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn column_extraction() {
        let mut t = crate::Table::new("T", vec!["x".into(), "ratio".into()]);
        t.push_row(vec!["(6,4,0,0)".into(), "1.25".into()]);
        t.push_row(vec!["(7,5,1,1)".into(), "oops".into()]);
        let s = column_series(&t, 1);
        assert_eq!(s.label, "ratio");
        assert_eq!(s.values[0], 1.25);
        assert!(s.values[1].is_nan());
    }
}
