//! Allocation-quality snapshots: the fixed workload × allocator ×
//! register-file matrix the `quality` binary scores, and the comparison
//! behind its `--check` regression gate.
//!
//! Where the `perf` matrix ([`crate::perfsnap`]) asks "how fast does the
//! allocator run", this matrix asks "how good is the code it produces" —
//! and whether the cost model the allocator optimizes against still
//! predicts what the code actually does. Every cell allocates one
//! workload, scores the result with [`ccra_regalloc::score_program`]
//! (frequency-weighted estimate priced by the DECstation
//! [`CycleModel`], plus an interpreter replay measuring the overhead ops
//! the program really executes), and records both views side by side so
//! estimate-vs-measured drift is a first-class, regression-gated number.
//!
//! The matrix deliberately scores under **static** frequency estimates
//! ([`FrequencyInfo::estimate`]): a dynamic profile would make the
//! estimate tautologically equal to the measurement. The drift column is
//! only informative when the estimate can be wrong.
//!
//! Per-phase memory profiling rides along: each cell arms the allocator's
//! thread-local tally ([`ccra_regalloc::memprof_start`]) around the
//! allocation, so the snapshot also answers "what did the allocation
//! cost in working-set bytes", phase by phase.
//!
//! The `--degrade <workload>` escape hatch replaces the configured
//! allocator with the spill-everything fallback on one workload — an
//! intentional quality regression used to prove the `--check` gate
//! actually fires (see the CI `quality` job).

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, CycleModel, RegisterFile};
use ccra_regalloc::{
    allocate_program_with, degraded_allocation, memprof_finish, memprof_start, score_program,
    AllocError, AllocatorConfig, NoopSink, Overhead, ProgramAllocation, QualityReport,
};
use ccra_workloads::{spec_program_scaled, Scale, SpecProgram};

use crate::perfsnap::{matrix_files, QualityEntry};

/// The workloads of the fixed quality matrix: the paper's two running
/// examples (eqntott, ear) plus the deep call tree of li — all
/// call-heavy, so the call-cost decisions under test dominate the score.
/// A subset of the perf matrix: every cell pays an interpreter replay,
/// which is far slower than the allocation itself.
pub const QUALITY_WORKLOADS: [SpecProgram; 3] =
    [SpecProgram::Eqntott, SpecProgram::Ear, SpecProgram::Li];

/// The allocator configurations of the fixed quality matrix: the paper's
/// base allocator, the full improvement set, and the callee-save-aware
/// CBH variant — the three points the paper's quality claims compare.
pub fn quality_configs() -> Vec<AllocatorConfig> {
    vec![
        AllocatorConfig::base(),
        AllocatorConfig::improved(),
        AllocatorConfig::cbh(),
    ]
}

/// Allocates every function of `program` through the spill-everything
/// fallback, bypassing the configured allocator — the injected quality
/// regression behind `--degrade`.
///
/// # Errors
///
/// Propagates [`AllocError`] from the fallback itself (a register file
/// below the ABI minimum).
pub fn degraded_program_allocation(
    program: &Program,
    freq: &FrequencyInfo,
    file: &RegisterFile,
    cost: &CostModel,
) -> Result<ProgramAllocation, AllocError> {
    let mut sink = NoopSink;
    let mut rewritten = Program::new();
    let mut per_func = Vec::with_capacity(program.num_functions());
    let mut overhead = Overhead::zero();
    for (id, f) in program.functions() {
        let (body, alloc) = degraded_allocation(f, freq.func(id), file, cost, &mut sink)?;
        overhead += alloc.overhead;
        rewritten.add_function(body);
        per_func.push(alloc);
    }
    if let Some(main) = program.main() {
        rewritten.set_main(main);
    }
    Ok(ProgramAllocation {
        program: rewritten,
        per_func,
        overhead,
    })
}

fn entry_of(
    workload: &str,
    config_label: &str,
    regs: &str,
    report: &QualityReport,
    mem: Option<&ccra_regalloc::MemProfile>,
) -> QualityEntry {
    QualityEntry {
        workload: workload.to_string(),
        config: config_label.to_string(),
        regs: regs.to_string(),
        estimated_cycles: report.estimated_cycles,
        est_spill_ops: report.estimated.spill,
        est_caller_save_ops: report.estimated.caller_save,
        est_callee_save_ops: report.estimated.callee_save,
        est_shuffle_ops: report.estimated.shuffle,
        measured_overhead_ops: report.measured.map_or(0.0, |m| m.total()),
        measured_cycles: report.measured_cycles.unwrap_or(0.0),
        drift_pct: report.drift_pct().unwrap_or(0.0),
        replay_ok: report.replay_error.is_none(),
        spilled_ranges: report.funcs.iter().map(|f| f.spilled_ranges as u64).sum(),
        degraded_funcs: report.degraded_funcs() as u64,
        mem_peak_bytes: mem.map_or(0, |m| m.peak_bytes()),
        mem_allocs: mem.map_or(0, |m| m.total_allocs()),
    }
}

/// Runs the fixed quality matrix at `scale`, invoking `progress` after
/// each cell. `degrade` names a workload whose cells take the
/// spill-everything fallback instead of the configured allocator (the
/// gate-proving regression; `None` scores everything honestly).
///
/// Frequency info is always the static estimate (see the module docs),
/// the cost model is the paper's, and cycles are priced by
/// [`CycleModel::decstation`]. Deterministic: cells are scored serially
/// in matrix order by a pure post-pass over deterministic allocations.
///
/// # Errors
///
/// Returns the first [`AllocError`] hit (only the degraded fallback can
/// fail, and only on register files below the ABI minimum — not the
/// matrix files).
pub fn run_quality_matrix(
    scale: Scale,
    degrade: Option<&str>,
    mut progress: impl FnMut(&QualityEntry),
) -> Result<Vec<QualityEntry>, AllocError> {
    let cost = CostModel::paper();
    let cycles = CycleModel::decstation();
    let mut entries = Vec::new();
    for workload in QUALITY_WORKLOADS {
        let program = spec_program_scaled(workload, scale);
        let freq = FrequencyInfo::estimate(&program);
        for config in quality_configs() {
            for (regs_label, file) in matrix_files() {
                memprof_start();
                let alloc = if degrade == Some(workload.name()) {
                    degraded_program_allocation(&program, &freq, &file, &cost)?
                } else {
                    allocate_program_with(&program, &freq, file, &config, &cost)?
                };
                let mem = memprof_finish();
                let report = score_program(&alloc, &freq, &config.label(), &cycles);
                let entry = entry_of(
                    workload.name(),
                    &config.label(),
                    &regs_label,
                    &report,
                    mem.as_ref(),
                );
                progress(&entry);
                entries.push(entry);
            }
        }
    }
    Ok(entries)
}

/// One cell's estimated-cycle delta between two quality sections.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityDelta {
    /// `workload [config] regs`.
    pub key: String,
    /// Baseline estimated execution cycles.
    pub baseline_cycles: f64,
    /// Current estimated execution cycles.
    pub current_cycles: f64,
    /// Percent change (positive = current costs more).
    pub delta_pct: f64,
    /// Whether this cell alone exceeds the regression threshold.
    pub exceeded: bool,
}

/// The verdict of comparing two quality sections.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityComparison {
    /// Per-cell deltas, in baseline order.
    pub per_entry: Vec<QualityDelta>,
    /// Baseline cells absent from the current run.
    pub missing: Vec<String>,
    /// Sum of baseline estimated cycles.
    pub baseline_cycles: f64,
    /// Sum of current estimated cycles (over cells present in both).
    pub current_cycles: f64,
    /// Aggregate percent change.
    pub delta_pct: f64,
    /// True when any cell (or the aggregate) got more than `threshold`
    /// percent costlier, or a baseline cell went missing.
    pub regressed: bool,
}

fn cell_key(e: &QualityEntry) -> String {
    format!("{} [{}] {}", e.workload, e.config, e.regs)
}

/// Compares two quality sections: exceeding `threshold` percent more
/// estimated cycles — per cell or in aggregate — is a regression, as is
/// a baseline cell missing from the current run. Cheaper is never a
/// regression (the gate is one-sided, like the perf gate).
///
/// # Errors
///
/// Returns an error when the baseline has no quality section to compare
/// against (regenerate it with the `quality` binary).
pub fn compare_quality(
    baseline: &[QualityEntry],
    current: &[QualityEntry],
    threshold: f64,
) -> Result<QualityComparison, String> {
    if baseline.is_empty() {
        return Err(
            "baseline has no quality section; regenerate it with the quality binary".to_string(),
        );
    }
    let mut per_entry = Vec::new();
    let mut missing = Vec::new();
    let mut baseline_cycles = 0.0;
    let mut current_cycles = 0.0;
    let mut any_exceeded = false;
    for b in baseline {
        let key = cell_key(b);
        match current.iter().find(|c| cell_key(c) == key) {
            Some(c) => {
                let delta_pct = if b.estimated_cycles == 0.0 {
                    if c.estimated_cycles == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    100.0 * (c.estimated_cycles - b.estimated_cycles) / b.estimated_cycles
                };
                let exceeded = delta_pct > threshold;
                any_exceeded |= exceeded;
                baseline_cycles += b.estimated_cycles;
                current_cycles += c.estimated_cycles;
                per_entry.push(QualityDelta {
                    key,
                    baseline_cycles: b.estimated_cycles,
                    current_cycles: c.estimated_cycles,
                    delta_pct,
                    exceeded,
                });
            }
            None => missing.push(key),
        }
    }
    let delta_pct = if baseline_cycles == 0.0 {
        0.0
    } else {
        100.0 * (current_cycles - baseline_cycles) / baseline_cycles
    };
    let regressed = any_exceeded || delta_pct > threshold || !missing.is_empty();
    Ok(QualityComparison {
        per_entry,
        missing,
        baseline_cycles,
        current_cycles,
        delta_pct,
        regressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, config: &str, cycles: f64) -> QualityEntry {
        QualityEntry {
            workload: workload.to_string(),
            config: config.to_string(),
            regs: "mips".to_string(),
            estimated_cycles: cycles,
            est_spill_ops: 0.0,
            est_caller_save_ops: 0.0,
            est_callee_save_ops: 0.0,
            est_shuffle_ops: 0.0,
            measured_overhead_ops: 0.0,
            measured_cycles: 0.0,
            drift_pct: 0.0,
            replay_ok: true,
            spilled_ranges: 0,
            degraded_funcs: 0,
            mem_peak_bytes: 0,
            mem_allocs: 0,
        }
    }

    #[test]
    fn matrix_scores_every_cell_and_degrade_inflates_one_workload() {
        let scale = Scale(0.05);
        let honest = run_quality_matrix(scale, None, |_| {}).unwrap();
        let cells = QUALITY_WORKLOADS.len() * quality_configs().len() * matrix_files().len();
        assert_eq!(honest.len(), cells);
        // Replay succeeds on every honest cell, and the static estimate
        // drifts from the measurement somewhere (that is the point of
        // scoring under estimates).
        assert!(honest.iter().all(|e| e.replay_ok));
        assert!(honest.iter().any(|e| e.drift_pct != 0.0));
        // Memory profiling was armed around every allocation.
        assert!(honest
            .iter()
            .all(|e| e.mem_peak_bytes > 0 && e.mem_allocs > 0));

        let degraded =
            run_quality_matrix(scale, Some(SpecProgram::Eqntott.name()), |_| {}).unwrap();
        // The degraded workload's cells cost strictly more than their
        // honest counterparts; other workloads are untouched.
        for (h, d) in honest.iter().zip(&degraded) {
            assert_eq!(cell_key(h), cell_key(d));
            if h.workload == SpecProgram::Eqntott.name() {
                assert!(d.estimated_cycles > h.estimated_cycles, "{}", cell_key(h));
                assert!(d.spilled_ranges > h.spilled_ranges);
            } else {
                assert_eq!(h, d, "{}", cell_key(h));
            }
        }
    }

    #[test]
    fn compare_flags_per_cell_and_aggregate_regressions() {
        let baseline = vec![cell("a", "base", 1000.0), cell("b", "base", 1000.0)];

        // Within threshold: not a regression.
        let ok = vec![cell("a", "base", 1040.0), cell("b", "base", 990.0)];
        let cmp = compare_quality(&baseline, &ok, 10.0).unwrap();
        assert!(!cmp.regressed);
        assert_eq!(cmp.per_entry.len(), 2);

        // One cell over threshold regresses even when the aggregate is
        // within bounds.
        let one_bad = vec![cell("a", "base", 1200.0), cell("b", "base", 900.0)];
        let cmp = compare_quality(&baseline, &one_bad, 10.0).unwrap();
        assert!(cmp.regressed);
        assert!(cmp.per_entry.iter().any(|d| d.exceeded));
        assert!(cmp.delta_pct < 10.0);

        // Cheaper is never a regression.
        let better = vec![cell("a", "base", 500.0), cell("b", "base", 500.0)];
        assert!(!compare_quality(&baseline, &better, 10.0).unwrap().regressed);

        // A missing cell is a regression; an empty baseline is an error.
        let cmp = compare_quality(&baseline, &[cell("a", "base", 1000.0)], 10.0).unwrap();
        assert!(cmp.regressed);
        assert_eq!(cmp.missing, vec!["b [base] mips".to_string()]);
        assert!(compare_quality(&[], &ok, 10.0).is_err());
    }
}
