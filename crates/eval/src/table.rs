//! Plain-text result tables.

use serde::Serialize;

/// A titled table of strings, rendered with aligned columns.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// The table's caption (e.g. `Figure 2 — eqntott (dynamic)`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; ragged rows are padded when rendering.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Parses one cell as a number, naming the offending table, row, and
    /// column on failure instead of panicking.
    pub fn parse_cell(&self, row: usize, col: usize) -> Result<f64, CellParseError> {
        let cell = self
            .rows
            .get(row)
            .and_then(|r| r.get(col))
            .ok_or_else(|| CellParseError {
                table: self.title.clone(),
                row,
                col,
                cell: "<missing>".to_string(),
            })?;
        cell.trim().parse().map_err(|_| CellParseError {
            table: self.title.clone(),
            row,
            col,
            cell: cell.clone(),
        })
    }

    /// Parses every cell of one row from `from_col` to the end as numbers
    /// (see [`Table::parse_cell`]).
    pub fn parse_row_from(&self, row: usize, from_col: usize) -> Result<Vec<f64>, CellParseError> {
        let width = self.rows.get(row).map_or(0, Vec::len);
        (from_col..width).map(|c| self.parse_cell(row, c)).collect()
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// A table cell that could not be parsed as a number: names the table,
/// the 0-based row and column, and the cell's content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellParseError {
    /// The table's title.
    pub table: String,
    /// The 0-based row index.
    pub row: usize,
    /// The 0-based column index.
    pub col: usize,
    /// The offending cell content (`"<missing>"` if out of bounds).
    pub cell: String,
}

impl std::fmt::Display for CellParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "table `{}`: cell at row {}, column {} is not a number: `{}`",
            self.table, self.row, self.col, self.cell
        )
    }
}

impl std::error::Error for CellParseError {}

/// Serialises tables to a JSON array (hand-rolled; the tables are plain
/// strings, so no serialisation framework is needed).
pub(crate) fn tables_to_json(tables: &[Table]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    fn arr(items: &[String]) -> String {
        format!(
            "[{}]",
            items.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
        )
    }
    let body: Vec<String> = tables
        .iter()
        .map(|t| {
            let rows: Vec<String> = t.rows.iter().map(|r| arr(r)).collect();
            format!(
                "{{\"title\":{},\"headers\":{},\"rows\":[{}]}}",
                esc(&t.title),
                arr(&t.headers),
                rows.join(",")
            )
        })
        .collect();
    format!("[{}]", body.join(",\n"))
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let fmt_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        fmt_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        writeln!(f, "{}", "-".repeat(total.min(120)))?;
        for row in &self.rows {
            fmt_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio the way the paper's figures read (2 decimal places).
pub fn ratio(base: f64, other: f64) -> String {
    if other == 0.0 {
        if base == 0.0 {
            "1.00".to_string()
        } else {
            "inf".to_string()
        }
    } else {
        format!("{:.2}", base / other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", vec!["a".into(), "long".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("T\n"));
        assert!(s.contains("333"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T", vec!["a,b".into()]);
        t.push_row(vec!["x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn json_serialisation() {
        let mut t = Table::new("A \"quoted\" title", vec!["h1".into()]);
        t.push_row(vec!["va\nlue".into()]);
        let json = tables_to_json(&[t]);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("va\\nlue"));
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
    }

    #[test]
    fn parse_cell_names_the_offender() {
        let mut t = Table::new("Fig X", vec!["k".into(), "v".into()]);
        t.push_row(vec!["a".into(), "1.5".into()]);
        t.push_row(vec!["b".into(), "oops".into()]);
        assert_eq!(t.parse_cell(0, 1), Ok(1.5));
        let err = t.parse_cell(1, 1).expect_err("non-numeric cell");
        assert_eq!((err.row, err.col), (1, 1));
        assert_eq!(err.cell, "oops");
        let msg = err.to_string();
        assert!(msg.contains("Fig X") && msg.contains("row 1") && msg.contains("column 1"));
        let missing = t.parse_cell(5, 0).expect_err("out-of-bounds cell");
        assert_eq!(missing.cell, "<missing>");
        assert_eq!(t.parse_row_from(0, 1), Ok(vec![1.5]));
        assert!(t.parse_row_from(1, 0).is_err());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10.0, 4.0), "2.50");
        assert_eq!(ratio(0.0, 0.0), "1.00");
        assert_eq!(ratio(5.0, 0.0), "inf");
    }
}
