//! Baseline comparison for allocation-telemetry JSONL streams.
//!
//! The `trace` binary emits the event stream of
//! [`ccra_regalloc::allocate_program_traced`] as JSON Lines; this module
//! diffs two such streams. The anchor is the closing `program` event
//! ([`ProgramSummary`]): its weighted-overhead total is deterministic for a
//! given workload and allocator, so any change against a checked-in
//! baseline is a real quality regression (or improvement), while its
//! wall-clock field varies by machine and only ever warrants a warning.

use ccra_regalloc::trace::{AllocEvent, ProgramSummary};

/// The outcome of diffing a current trace against a baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Total weighted overhead of the baseline run.
    pub baseline_total: f64,
    /// Total weighted overhead of the current run.
    pub current_total: f64,
    /// Relative overhead change in percent (positive = regression).
    pub overhead_delta_pct: f64,
    /// Allocation wall-clock of the baseline run (microseconds).
    pub baseline_micros: u64,
    /// Allocation wall-clock of the current run (microseconds).
    pub current_micros: u64,
    /// Relative wall-clock change in percent (positive = slower).
    pub time_delta_pct: f64,
    /// Whether the overhead regression exceeds the threshold.
    pub regressed: bool,
}

impl Comparison {
    /// A human-readable verdict line.
    pub fn verdict(&self, threshold_pct: f64) -> String {
        if self.regressed {
            format!(
                "REGRESSION: total overhead {:.2} vs baseline {:.2} ({:+.2}% > {:.1}% threshold)",
                self.current_total, self.baseline_total, self.overhead_delta_pct, threshold_pct
            )
        } else {
            format!(
                "ok: total overhead {:.2} vs baseline {:.2} ({:+.2}%, threshold {:.1}%)",
                self.current_total, self.baseline_total, self.overhead_delta_pct, threshold_pct
            )
        }
    }
}

/// The closing `program` summary of an event stream, if present.
pub fn program_summary(events: &[AllocEvent]) -> Option<&ProgramSummary> {
    events.iter().rev().find_map(|e| match e {
        AllocEvent::Program(s) => Some(s),
        _ => None,
    })
}

/// Total microseconds per phase name, in first-appearance order.
pub fn phase_totals(events: &[AllocEvent]) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = Vec::new();
    for e in events {
        if let AllocEvent::Phase(p) = e {
            match totals.iter_mut().find(|(name, _)| *name == p.phase) {
                Some((_, t)) => *t += p.micros,
                None => totals.push((p.phase.clone(), p.micros)),
            }
        }
    }
    totals
}

/// Counts events by tag, in first-appearance order.
pub fn event_counts(events: &[AllocEvent]) -> Vec<(&'static str, usize)> {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for e in events {
        match counts.iter_mut().find(|(tag, _)| *tag == e.tag()) {
            Some((_, c)) => *c += 1,
            None => counts.push((e.tag(), 1)),
        }
    }
    counts
}

/// Relative change of `current` against `base`, in percent. A zero base
/// with a nonzero current counts as an infinite regression; zero against
/// zero is no change.
fn delta_pct(base: f64, current: f64) -> f64 {
    if base == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - base) / base * 100.0
    }
}

/// Diffs the `program` summaries of two event streams.
///
/// `regressed` is set when the current total overhead exceeds the baseline
/// by more than `threshold_pct` percent. Wall-clock deltas are reported but
/// never set `regressed` — they are machine-dependent.
///
/// # Errors
///
/// Returns an error naming the missing side when either stream lacks a
/// `program` event, or when the two summaries used different allocator
/// configurations (comparing those would be meaningless).
pub fn compare(
    baseline: &[AllocEvent],
    current: &[AllocEvent],
    threshold_pct: f64,
) -> Result<Comparison, String> {
    let base = program_summary(baseline)
        .ok_or_else(|| "baseline stream has no `program` summary event".to_string())?;
    let cur = program_summary(current)
        .ok_or_else(|| "current stream has no `program` summary event".to_string())?;
    if base.config != cur.config {
        return Err(format!(
            "config mismatch: baseline `{}` vs current `{}`",
            base.config, cur.config
        ));
    }
    let overhead_delta_pct = delta_pct(base.total(), cur.total());
    Ok(Comparison {
        baseline_total: base.total(),
        current_total: cur.total(),
        overhead_delta_pct,
        baseline_micros: base.micros,
        current_micros: cur.micros,
        time_delta_pct: delta_pct(base.micros as f64, cur.micros as f64),
        regressed: overhead_delta_pct > threshold_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_regalloc::trace::PhaseSpan;

    fn summary(total_each: f64, micros: u64) -> AllocEvent {
        AllocEvent::Program(ProgramSummary {
            config: "SC+BS+PR".into(),
            funcs: 3,
            spill: total_each,
            caller_save: total_each,
            callee_save: 0.0,
            shuffle: 0.0,
            micros,
        })
    }

    #[test]
    fn within_threshold_is_ok() {
        let base = [summary(50.0, 100)];
        let cur = [summary(51.0, 900)];
        let c = compare(&base, &cur, 5.0).unwrap();
        assert!(!c.regressed, "{c:?}");
        assert!((c.overhead_delta_pct - 2.0).abs() < 1e-9);
        // Time regressed 9x but that never fails the comparison.
        assert!(c.time_delta_pct > 100.0);
    }

    #[test]
    fn beyond_threshold_regresses() {
        let base = [summary(50.0, 100)];
        let cur = [summary(53.0, 100)];
        let c = compare(&base, &cur, 5.0).unwrap();
        assert!(c.regressed);
        assert!(c.verdict(5.0).starts_with("REGRESSION"));
    }

    #[test]
    fn improvements_never_regress() {
        let base = [summary(50.0, 100)];
        let cur = [summary(10.0, 100)];
        assert!(!compare(&base, &cur, 5.0).unwrap().regressed);
    }

    #[test]
    fn missing_summary_is_an_error() {
        assert!(compare(&[], &[summary(1.0, 1)], 5.0).is_err());
        assert!(compare(&[summary(1.0, 1)], &[], 5.0).is_err());
    }

    #[test]
    fn config_mismatch_is_an_error() {
        let mut other = ProgramSummary {
            config: "base".into(),
            funcs: 3,
            spill: 2.0,
            caller_save: 0.0,
            callee_save: 0.0,
            shuffle: 0.0,
            micros: 5,
        };
        other.config = "base".into();
        let base = [summary(1.0, 1)];
        let cur = [AllocEvent::Program(other)];
        assert!(compare(&base, &cur, 5.0).is_err());
    }

    #[test]
    fn phase_totals_aggregate_by_name() {
        let events = [
            AllocEvent::Phase(PhaseSpan {
                func: "f".into(),
                round: 1,
                phase: "build".into(),
                micros: 10,
            }),
            AllocEvent::Phase(PhaseSpan {
                func: "f".into(),
                round: 2,
                phase: "build".into(),
                micros: 5,
            }),
            AllocEvent::Phase(PhaseSpan {
                func: "f".into(),
                round: 1,
                phase: "select".into(),
                micros: 7,
            }),
        ];
        assert_eq!(
            phase_totals(&events),
            vec![("build".to_string(), 15), ("select".to_string(), 7)]
        );
        assert_eq!(event_counts(&events), vec![("phase", 3)]);
    }
}
