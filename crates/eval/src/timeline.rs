//! The driver-timeline capture behind the `timeline` binary: run one
//! program through [`ParallelDriver`] with a [`TimelineCollector`]
//! enabled, export the merged timeline as Chrome Trace Event JSON, and
//! validate the export the way CI does.
//!
//! Workload selection mirrors the other binaries — any SPEC92-like
//! program by name — plus `fuzzN` (e.g. `fuzz64`) for a deterministic
//! N-function program when the point is worker occupancy rather than
//! realism. The default is [`DEFAULT_WORKLOAD`] (`li`): with 4 functions
//! it is the widest member of the fig-7 workload family, so a 4-worker
//! capture gets one job per worker. The spec programs have 1–5 functions
//! each; the driver clamps its worker count to the function count, so
//! asking for more workers than functions records fewer lanes — the
//! binary validates against the *actual* worker count the report states.

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, RegisterFile};
use ccra_regalloc::driver::DefaultJob;
use ccra_regalloc::trace::chrometrace;
use ccra_regalloc::{
    AllocRequest, AllocatorConfig, DriverReport, MetricsRegistry, NoopSink, ParallelDriver,
    Timeline, TimelineCollector,
};
use ccra_workloads::{random_program, spec_program_scaled, FuzzConfig, Scale, SpecProgram};
use serde::json::Value;

/// The workload the `timeline` binary captures when none is named.
pub const DEFAULT_WORKLOAD: &str = "li";

/// Resolves a workload name: a SPEC92-like program (scaled), or `fuzzN`
/// for a deterministic N-function fuzz program (scale-independent, same
/// seed and shape as the `par` sweep's). `None` for unknown names.
pub fn build_workload(name: &str, scale: Scale) -> Option<Program> {
    if let Some(n) = name.strip_prefix("fuzz") {
        let functions: usize = n.parse().ok().filter(|&f| f > 0 && f <= 4096)?;
        return Some(random_program(
            1997,
            &FuzzConfig {
                functions,
                stmts_per_fn: 12,
                max_loop_depth: 1,
                max_trips: 4,
            },
        ));
    }
    SpecProgram::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .map(|p| spec_program_scaled(p, scale))
}

/// Runs one traced allocation: the improved allocator on the full MIPS
/// file, `workers` driver threads, timeline collection on.
///
/// # Errors
///
/// Reports profiling or allocation failures as rendered strings.
pub fn run_traced(
    program: &Program,
    workers: usize,
    config: &AllocatorConfig,
) -> Result<(Timeline, DriverReport), String> {
    let freq = FrequencyInfo::profile(program).map_err(|e| format!("failed to profile: {e}"))?;
    let cost = CostModel::paper();
    let req = AllocRequest {
        program,
        freq: &freq,
        file: RegisterFile::mips_full(),
        config,
        cost: &cost,
    };
    let driver = ParallelDriver::new(workers);
    let collector = TimelineCollector::enabled();
    let (_, report, timeline) = driver
        .allocate_program_traced(
            &req,
            &mut NoopSink,
            &mut MetricsRegistry::disabled(),
            &DefaultJob,
            &collector,
        )
        .map_err(|e| format!("allocation failed: {e}"))?;
    Ok((timeline, report))
}

/// Validates an exported Chrome trace the way CI's smoke step does: the
/// JSON parses, declares exactly `workers` worker lanes plus the driver
/// lane, and contains at least one job span, one nested phase span, and a
/// queue-depth counter sample.
///
/// # Errors
///
/// Returns a message naming the first failed check.
pub fn validate_chrome_trace(json: &str, workers: usize) -> Result<(), String> {
    let trace = serde::json::parse(json).map_err(|e| format!("trace does not parse: {e:?}"))?;
    let lanes = chrometrace::lane_count(&trace);
    if lanes != workers + 1 {
        return Err(format!(
            "expected {} lanes ({workers} worker(s) + driver), found {lanes}",
            workers + 1
        ));
    }
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        return Err("no traceEvents array".to_string());
    };
    let has_cat = |cat: &str| {
        events
            .iter()
            .any(|e| matches!(e.get("cat"), Some(Value::Str(c)) if c == cat))
    };
    if !has_cat("job") {
        return Err("no job span in trace".to_string());
    }
    if !has_cat("phase") {
        return Err("no nested phase span in trace".to_string());
    }
    let has_counter = events.iter().any(|e| {
        matches!(e.get("ph"), Some(Value::Str(p)) if p == "C")
            && matches!(e.get("name"), Some(Value::Str(n)) if n.starts_with("queue depth"))
    });
    if !has_counter {
        return Err("no queue-depth counter track in trace".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_regalloc::trace::chrometrace::to_chrome_trace_json;

    #[test]
    fn default_workload_fills_four_workers() {
        let program = build_workload(DEFAULT_WORKLOAD, Scale(0.05)).expect("li exists");
        let (timeline, report) =
            run_traced(&program, 4, &AllocatorConfig::improved()).expect("li allocates");
        assert_eq!(report.workers, 4, "li has 4 functions — one per worker");
        let json = to_chrome_trace_json(&timeline);
        validate_chrome_trace(&json, report.workers).expect("export validates");
        let summary = timeline.summary();
        assert_eq!(summary.lanes.iter().map(|l| l.jobs).sum::<u64>(), 4);
        assert!(report.scheduler.counter("driver_jobs_total") == 4);
    }

    #[test]
    fn fuzz_workloads_parse_and_spec_names_resolve() {
        assert!(build_workload("fuzz8", Scale(1.0)).is_some());
        assert!(build_workload("eqntott", Scale(0.05)).is_some());
        assert!(build_workload("fuzz0", Scale(1.0)).is_none());
        assert!(build_workload("fuzzily", Scale(1.0)).is_none());
        assert!(build_workload("nonesuch", Scale(1.0)).is_none());
    }

    #[test]
    fn validation_rejects_wrong_lane_counts() {
        let program = build_workload("eqntott", Scale(0.05)).expect("eqntott exists");
        let (timeline, report) =
            run_traced(&program, 1, &AllocatorConfig::improved()).expect("allocates");
        assert_eq!(report.workers, 1);
        let json = to_chrome_trace_json(&timeline);
        validate_chrome_trace(&json, 1).expect("1 worker + driver lane");
        validate_chrome_trace(&json, 4).expect_err("wrong worker count fails");
        validate_chrome_trace("not json", 1).expect_err("garbage fails");
    }
}
