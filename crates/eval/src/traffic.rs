//! Deterministic traffic shapes for the load generator: arrival clocks,
//! job-size distributions, and priority mixes, factored out of
//! [`crate::loadgen`] so every run — steady-state SLO measurement and
//! chaos storms alike — draws from one seeded source.
//!
//! Everything here is a pure function of a [`TrafficShape`]: the job
//! stream ([`job_stream`]) and the arrival-gap sequence ([`arrival_gaps`])
//! both derive from the seed alone, so two runs submit byte-identical
//! programs on identical (intended) clocks and only the measured
//! latencies differ. The shapes are deliberately unflattering:
//! heavy-tailed sizes (a bounded Pareto — most programs are small, a few
//! are not), exponential inter-arrivals, and — for storm shapes — burst
//! arrivals that land several submissions back-to-back, because overload
//! rarely arrives politely spaced.

use std::time::Duration;

use ccra_machine::RegisterFile;
use ccra_regalloc::{AllocatorConfig, BatchJob, Priority};
use ccra_workloads::{random_program, FuzzConfig};

/// A splitmix-style generator: good enough to schedule arrivals and size
/// jobs, and dependency-free.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    pub fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// Exponentially distributed with the given mean.
    pub fn exponential_us(&mut self, mean_us: u64) -> u64 {
        (-self.unit().ln() * mean_us as f64) as u64
    }

    /// A bounded Pareto (shape 1.5) over `[lo, hi]` — mostly `lo`, with a
    /// heavy tail toward `hi`.
    pub fn pareto(&mut self, lo: u64, hi: u64) -> u64 {
        let sized = (lo as f64 * self.unit().powf(-1.0 / 1.5)) as u64;
        sized.clamp(lo, hi)
    }

    /// Uniform in `0..1000` — for rolling against per-mille rates.
    pub fn per_mille(&mut self) -> u32 {
        (self.next_u64() % 1000) as u32
    }
}

/// The shape of one traffic run: how many jobs, on what clock, with what
/// priority mix. The whole stream is a pure function of this struct.
#[derive(Debug, Clone, Copy)]
pub struct TrafficShape {
    /// Jobs in the stream.
    pub jobs: usize,
    /// The seed the stream and the arrival clock derive from.
    pub seed: u64,
    /// Mean inter-arrival gap, microseconds (exponential; 0 = submit as
    /// fast as the service accepts).
    pub mean_gap_us: u64,
    /// Per-mille of jobs submitted at [`Priority::Interactive`].
    pub interactive_per_mille: u32,
    /// Per-mille of jobs submitted at [`Priority::Background`] (the
    /// remainder after interactive and background is [`Priority::Batch`]).
    pub background_per_mille: u32,
    /// The relative deadline attached to interactive jobs, microseconds
    /// (`None` = no deadlines anywhere).
    pub interactive_deadline_us: Option<u64>,
    /// Every `burst_every`-th arrival opens a burst (0 = no bursts).
    pub burst_every: usize,
    /// Arrivals per burst: the first draws a gap, the rest land with zero
    /// gap behind it.
    pub burst_len: usize,
    /// Per-mille of submissions replaced by byte-identical re-submissions
    /// of an earlier job in the stream (program, file, and config all
    /// equal, so a memo cache serves them warm). Applied as a post-pass
    /// over the base stream, so `0` reproduces the pre-rerun streams
    /// byte-for-byte; still a pure function of the seed.
    pub rerun_per_mille: u32,
}

impl TrafficShape {
    /// The steady shape: all-[`Priority::Batch`], no deadlines, no bursts
    /// — the legacy SLO-measurement stream.
    pub fn steady(jobs: usize, seed: u64, mean_gap_us: u64) -> Self {
        TrafficShape {
            jobs,
            seed,
            mean_gap_us,
            interactive_per_mille: 0,
            background_per_mille: 0,
            interactive_deadline_us: None,
            burst_every: 0,
            burst_len: 0,
            rerun_per_mille: 0,
        }
    }

    /// The storm shape: a realistic priority mix (~25% interactive with
    /// deadlines, ~20% background, the rest batch) arriving in bursts —
    /// what the chaos harness drives against an undersized service.
    pub fn storm(jobs: usize, seed: u64, mean_gap_us: u64) -> Self {
        TrafficShape {
            jobs,
            seed,
            mean_gap_us,
            interactive_per_mille: 250,
            background_per_mille: 200,
            interactive_deadline_us: Some(400_000),
            burst_every: 16,
            burst_len: 4,
            rerun_per_mille: 0,
        }
    }

    /// Sets the re-submission rate ([`TrafficShape::rerun_per_mille`]).
    pub fn with_rerun_per_mille(mut self, rerun_per_mille: u32) -> Self {
        self.rerun_per_mille = rerun_per_mille;
        self
    }
}

/// The deterministic job stream of a shape: `jobs` fuzz programs whose
/// function counts follow the bounded Pareto and whose priorities follow
/// the shape's mix, with [`TrafficShape::rerun_per_mille`] of submissions
/// replaced by byte-identical clones of earlier jobs. A pure function of
/// the shape (tests assert it).
pub fn job_stream(shape: &TrafficShape) -> Vec<BatchJob> {
    let mut stream = base_stream(shape);
    if shape.rerun_per_mille > 0 {
        // Post-pass on its own generator: the base stream stays identical
        // to a rerun-free shape's, a re-submission just replaces slot `i`
        // with a clone of a uniformly chosen earlier slot. Slot 0 has no
        // predecessor and is never replaced.
        let mut rng = Rng::new(shape.seed ^ 0x5eed_5eed);
        for i in 1..stream.len() {
            if rng.per_mille() < shape.rerun_per_mille {
                let source = (rng.next_u64() % i as u64) as usize;
                stream[i] = stream[source].clone();
            }
        }
    }
    stream
}

/// The rerun-free stream `job_stream` post-processes.
fn base_stream(shape: &TrafficShape) -> Vec<BatchJob> {
    let mut rng = Rng::new(shape.seed);
    (0..shape.jobs)
        .map(|i| {
            let functions = rng.pareto(2, 24) as usize;
            let roll = rng.per_mille();
            let program = random_program(
                shape.seed.wrapping_add(i as u64),
                &FuzzConfig {
                    functions,
                    stmts_per_fn: 10,
                    max_loop_depth: 1,
                    max_trips: 4,
                },
            );
            let mut job = BatchJob::new(
                format!("load-{i}"),
                program,
                RegisterFile::mips_full(),
                AllocatorConfig::improved(),
            );
            if roll < shape.interactive_per_mille {
                job = job.with_priority(Priority::Interactive);
                if let Some(us) = shape.interactive_deadline_us {
                    job = job.with_deadline(Duration::from_micros(us));
                }
            } else if roll < shape.interactive_per_mille + shape.background_per_mille {
                job = job.with_priority(Priority::Background);
            }
            job
        })
        .collect()
}

/// The deterministic arrival clock of a shape: the gap (microseconds) to
/// sleep *before* each submission. Exponential with the shape's mean,
/// except inside a burst, where the first arrival draws a gap and the
/// rest land with zero gap behind it. A pure function of the shape.
pub fn arrival_gaps(shape: &TrafficShape) -> Vec<u64> {
    if shape.mean_gap_us == 0 {
        return vec![0; shape.jobs];
    }
    let mut rng = Rng::new(shape.seed ^ 0xc1f0);
    (0..shape.jobs)
        .map(|i| {
            let in_burst_tail = shape.burst_every > 0
                && i % shape.burst_every > 0
                && i % shape.burst_every < shape.burst_len;
            if in_burst_tail {
                0
            } else {
                rng.exponential_us(shape.mean_gap_us)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrafficShape {
        TrafficShape::steady(12, 42, 0)
    }

    #[test]
    fn job_stream_is_a_pure_function_of_the_seed() {
        let a = job_stream(&tiny());
        let b = job_stream(&tiny());
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.program, y.program);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.deadline, y.deadline);
        }
        let other = job_stream(&TrafficShape { seed: 43, ..tiny() });
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.program != y.program),
            "a different seed changes the stream"
        );
    }

    #[test]
    fn sizes_are_heavy_tailed_but_bounded() {
        let stream = job_stream(&TrafficShape { jobs: 64, ..tiny() });
        let sizes: Vec<usize> = stream
            .iter()
            .map(|j| j.program.functions().count())
            .collect();
        assert!(sizes.iter().all(|&s| (2..=24).contains(&s)), "{sizes:?}");
        assert!(sizes.contains(&2), "the mode is the minimum");
        assert!(sizes.iter().any(|&s| s > 4), "the tail exists");
    }

    #[test]
    fn steady_shapes_stay_all_batch_with_no_deadlines() {
        let stream = job_stream(&TrafficShape::steady(32, 7, 100));
        assert!(stream
            .iter()
            .all(|j| j.priority == Priority::Batch && j.deadline.is_none()));
    }

    #[test]
    fn storm_shapes_mix_priorities_and_deadline_interactive_jobs() {
        let stream = job_stream(&TrafficShape::storm(256, 7, 100));
        let interactive = stream
            .iter()
            .filter(|j| j.priority == Priority::Interactive)
            .count();
        let background = stream
            .iter()
            .filter(|j| j.priority == Priority::Background)
            .count();
        let batch = stream
            .iter()
            .filter(|j| j.priority == Priority::Batch)
            .count();
        assert!(
            interactive > 0 && background > 0 && batch > 0,
            "all classes present"
        );
        assert!(batch > interactive && batch > background, "batch dominates");
        assert!(
            stream
                .iter()
                .all(|j| (j.priority == Priority::Interactive) == j.deadline.is_some()),
            "exactly the interactive jobs carry deadlines"
        );
    }

    #[test]
    fn rerun_streams_are_pure_and_resubmit_byte_identical_jobs() {
        let shape = TrafficShape::steady(64, 42, 0).with_rerun_per_mille(400);
        let a = job_stream(&shape);
        let b = job_stream(&shape);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program, y.program, "pure function of the seed");
        }
        // Re-submissions are byte-identical clones of earlier slots.
        let dupes = a
            .iter()
            .enumerate()
            .filter(|(i, job)| a[..*i].iter().any(|prev| prev.program == job.program))
            .count();
        assert!(
            dupes >= 64 * 250 / 1000,
            "~40% rerun rate produces plenty of duplicates, got {dupes}"
        );
        for (i, job) in a.iter().enumerate() {
            if let Some(prev) = a[..i].iter().find(|p| p.program == job.program) {
                assert_eq!(prev.name, job.name);
                assert_eq!(prev.file, job.file);
                assert_eq!(prev.config, job.config);
                assert_eq!(prev.priority, job.priority);
                assert_eq!(prev.deadline, job.deadline);
            }
        }
        // rerun = 0 reproduces the legacy stream byte-for-byte.
        let legacy = job_stream(&TrafficShape::steady(64, 42, 0));
        let zero = job_stream(&TrafficShape::steady(64, 42, 0).with_rerun_per_mille(0));
        for (x, y) in legacy.iter().zip(&zero) {
            assert_eq!(x.program, y.program);
            assert_eq!(x.name, y.name);
        }
        // And the storm shape composes with reruns.
        let storm = job_stream(&TrafficShape::storm(128, 9, 100).with_rerun_per_mille(300));
        assert_eq!(storm.len(), 128);
        let storm_dupes = storm
            .iter()
            .enumerate()
            .filter(|(i, job)| storm[..*i].iter().any(|p| p.program == job.program))
            .count();
        assert!(storm_dupes > 10, "storm reruns exist, got {storm_dupes}");
    }

    #[test]
    fn arrival_gaps_are_deterministic_and_bursts_land_back_to_back() {
        let shape = TrafficShape::storm(64, 9, 500);
        let a = arrival_gaps(&shape);
        let b = arrival_gaps(&shape);
        assert_eq!(a, b, "the clock is a pure function of the shape");
        assert_eq!(a.len(), 64);
        // Positions 1..burst_len of each burst window arrive instantly.
        for start in (0..64).step_by(shape.burst_every) {
            for (i, gap) in a
                .iter()
                .enumerate()
                .take((start + shape.burst_len).min(64))
                .skip(start + 1)
            {
                assert_eq!(*gap, 0, "burst tail at {i}");
            }
        }
        assert!(a.iter().any(|&g| g > 0), "gaps exist outside bursts");
        // A zero-mean shape collapses to a flood.
        let flood = arrival_gaps(&TrafficShape::steady(8, 9, 0));
        assert_eq!(flood, vec![0; 8]);
    }
}
