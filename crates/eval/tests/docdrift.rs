//! Doc-drift guard: every `BENCH_<n>` reference in the living docs and
//! the CI workflow must name the current snapshot schema version.
//!
//! History files (CHANGES.md, ROADMAP.md, ISSUE.md) legitimately mention
//! old snapshot names and are exempt; the files checked here describe
//! the *current* interface, where a stale name means a reader runs the
//! wrong command or CI gates the wrong artifact.

use ccra_eval::perfsnap::BENCH_SCHEMA_VERSION;

/// Repo-root-relative files that must only reference the current schema.
const LIVING_DOCS: [&str; 4] = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    ".github/workflows/ci.yml",
];

fn repo_root() -> std::path::PathBuf {
    // crates/eval -> crates -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root exists")
        .to_path_buf()
}

/// Every `BENCH_<digits>` occurrence in `text`, with its line number.
fn bench_refs(text: &str) -> Vec<(usize, u32)> {
    let mut refs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(pos) = line[i..].find("BENCH_") {
            let start = i + pos + "BENCH_".len();
            let digits: String = line[start..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(v) = digits.parse::<u32>() {
                refs.push((lineno + 1, v));
            }
            i = start.min(bytes.len());
        }
    }
    refs
}

#[test]
fn living_docs_reference_only_the_current_bench_schema() {
    let root = repo_root();
    let mut stale = Vec::new();
    let mut total = 0;
    for doc in LIVING_DOCS {
        let path = root.join(doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        for (line, version) in bench_refs(&text) {
            total += 1;
            if version != BENCH_SCHEMA_VERSION {
                stale.push(format!(
                    "{doc}:{line}: BENCH_{version} (current schema is {BENCH_SCHEMA_VERSION})"
                ));
            }
        }
    }
    assert!(
        total > 0,
        "no BENCH_<n> references found in {LIVING_DOCS:?} — \
         the guard is grepping the wrong files"
    );
    assert!(
        stale.is_empty(),
        "stale BENCH_<n> references — update the docs alongside the schema bump:\n{}",
        stale.join("\n")
    );
}

#[test]
fn bench_ref_extraction_is_exact() {
    let refs = bench_refs("see BENCH_6.json and BENCH_12_par.json\nBENCH_ alone\nBENCH_3");
    assert_eq!(refs, vec![(1, 6), (1, 12), (3, 3)]);
}
