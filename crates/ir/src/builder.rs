//! A convenient builder for constructing [`Function`]s block by block.

use crate::entity::{BlockId, EntityVec, VReg};
use crate::function::{Block, Function, VRegData};
use crate::inst::{BinOp, Callee, CmpOp, Inst, Terminator, UnOp};
use crate::RegClass;

/// Builds a [`Function`] incrementally.
///
/// The builder maintains a *current block*; instruction-emitting methods
/// append to it, and terminator methods ([`jump`](Self::jump),
/// [`branch`](Self::branch), [`ret`](Self::ret)) seal it. Blocks for
/// forward control flow are created ahead of time with
/// [`reserve_block`](Self::reserve_block) and later targeted with
/// [`switch_to`](Self::switch_to).
///
/// # Example
///
/// A counted loop `for i in 0..10 { acc += i }`:
///
/// ```
/// use ccra_ir::{FunctionBuilder, RegClass, BinOp, CmpOp};
///
/// let mut b = FunctionBuilder::new("sum");
/// let i = b.new_vreg(RegClass::Int);
/// let acc = b.new_vreg(RegClass::Int);
/// let ten = b.new_vreg(RegClass::Int);
/// let one = b.new_vreg(RegClass::Int);
/// b.iconst(i, 0);
/// b.iconst(acc, 0);
/// b.iconst(ten, 10);
/// b.iconst(one, 1);
///
/// let head = b.reserve_block();
/// let body = b.reserve_block();
/// let exit = b.reserve_block();
/// b.jump(head);
///
/// b.switch_to(head);
/// let cond = b.new_vreg(RegClass::Int);
/// b.cmp(CmpOp::Lt, cond, i, ten);
/// b.branch(cond, body, exit);
///
/// b.switch_to(body);
/// b.binary(BinOp::Add, acc, acc, i);
/// b.binary(BinOp::Add, i, i, one);
/// b.jump(head);
///
/// b.switch_to(exit);
/// b.ret(Some(acc));
/// let f = b.finish();
/// assert_eq!(f.num_blocks(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<VReg>,
    blocks: EntityVec<BlockId, Option<Block>>,
    vregs: EntityVec<VReg, VRegData>,
    current: BlockId,
    pending: Vec<Inst>,
    sealed: bool,
}

impl FunctionBuilder {
    /// Starts building a function; the entry block is current.
    pub fn new(name: impl Into<String>) -> Self {
        let mut blocks = EntityVec::new();
        let entry = blocks.push(None);
        FunctionBuilder {
            name: name.into(),
            params: Vec::new(),
            blocks,
            vregs: EntityVec::new(),
            current: entry,
            pending: Vec::new(),
            sealed: false,
        }
    }

    /// Declares the parameter registers (must already exist).
    pub fn set_params(&mut self, params: Vec<VReg>) -> &mut Self {
        self.params = params;
        self
    }

    /// Creates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.vregs.push(VRegData {
            class,
            is_spill_temp: false,
        })
    }

    /// Reserves a block id for forward control flow.
    pub fn reserve_block(&mut self) -> BlockId {
        self.blocks.push(None)
    }

    /// The block currently being filled.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Makes a previously reserved (and not yet filled) block current.
    ///
    /// # Panics
    ///
    /// Panics if the current block has not been sealed with a terminator,
    /// or if `block` was already filled.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.sealed,
            "current block {:?} has no terminator yet",
            self.current
        );
        assert!(
            self.blocks[block].is_none(),
            "block {block:?} was already filled"
        );
        self.current = block;
        self.pending.clear();
        self.sealed = false;
    }

    fn emit(&mut self, inst: Inst) -> &mut Self {
        assert!(
            !self.sealed,
            "block {:?} is already terminated",
            self.current
        );
        self.pending.push(inst);
        self
    }

    /// Emits `dst = value` (integer constant).
    pub fn iconst(&mut self, dst: VReg, value: i64) -> &mut Self {
        self.emit(Inst::IConst { dst, value })
    }

    /// Emits `dst = value` (float constant).
    pub fn fconst(&mut self, dst: VReg, value: f64) -> &mut Self {
        self.emit(Inst::FConst { dst, value })
    }

    /// Emits `dst = lhs op rhs`.
    pub fn binary(&mut self, op: BinOp, dst: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.emit(Inst::Binary { op, dst, lhs, rhs })
    }

    /// Emits `dst = op src`.
    pub fn unary(&mut self, op: UnOp, dst: VReg, src: VReg) -> &mut Self {
        self.emit(Inst::Unary { op, dst, src })
    }

    /// Emits `dst = lhs cmp rhs`.
    pub fn cmp(&mut self, op: CmpOp, dst: VReg, lhs: VReg, rhs: VReg) -> &mut Self {
        self.emit(Inst::Cmp { op, dst, lhs, rhs })
    }

    /// Emits `dst = mem[addr + offset]`.
    pub fn load(&mut self, dst: VReg, addr: VReg, offset: i64) -> &mut Self {
        self.emit(Inst::Load { dst, addr, offset })
    }

    /// Emits `mem[addr + offset] = src`.
    pub fn store(&mut self, src: VReg, addr: VReg, offset: i64) -> &mut Self {
        self.emit(Inst::Store { src, addr, offset })
    }

    /// Emits `dst = src`.
    pub fn copy(&mut self, dst: VReg, src: VReg) -> &mut Self {
        self.emit(Inst::Copy { dst, src })
    }

    /// Emits `ret = call callee(args...)`.
    pub fn call(&mut self, callee: Callee, args: Vec<VReg>, ret: Option<VReg>) -> &mut Self {
        self.emit(Inst::Call { callee, args, ret })
    }

    fn seal(&mut self, term: Terminator) {
        assert!(
            !self.sealed,
            "block {:?} is already terminated",
            self.current
        );
        let insts = std::mem::take(&mut self.pending);
        self.blocks[self.current] = Some(Block { insts, term });
        self.sealed = true;
    }

    /// Seals the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump(target));
    }

    /// Seals the current block with a two-way branch.
    pub fn branch(&mut self, cond: VReg, then_bb: BlockId, else_bb: BlockId) {
        self.seal(Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.seal(Terminator::Return(value));
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if the current block is unterminated or any reserved block was
    /// never filled.
    pub fn finish(self) -> Function {
        assert!(
            self.sealed,
            "current block {:?} has no terminator",
            self.current
        );
        let blocks: EntityVec<BlockId, Block> = self
            .blocks
            .iter()
            .map(|(id, b)| {
                b.clone()
                    .unwrap_or_else(|| panic!("block {id:?} was reserved but never filled"))
            })
            .collect();
        Function::from_parts(self.name, self.params, BlockId(0), blocks, self.vregs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 42);
        b.ret(Some(x));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.block(f.entry()).insts.len(), 1);
        assert_eq!(f.block(f.entry()).term, Terminator::Return(Some(x)));
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_entry_panics() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "reserved but never filled")]
    fn unfilled_reserved_block_panics() {
        let mut b = FunctionBuilder::new("f");
        let _orphan = b.reserve_block();
        b.ret(None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn emitting_after_seal_panics() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg(RegClass::Int);
        b.ret(None);
        b.iconst(x, 1);
    }

    #[test]
    #[should_panic(expected = "already filled")]
    fn switching_to_filled_block_panics() {
        let mut b = FunctionBuilder::new("f");
        b.ret(None);
        let entry = b.current_block();
        b.switch_to(entry);
    }

    #[test]
    fn float_ops_build() {
        let mut b = FunctionBuilder::new("fp");
        let x = b.new_vreg(RegClass::Float);
        let y = b.new_vreg(RegClass::Float);
        b.fconst(x, 1.5);
        b.unary(UnOp::FNeg, y, x);
        b.binary(BinOp::FMul, y, y, x);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.num_insts(), 3);
        assert_eq!(f.class_of(y), RegClass::Float);
    }
}
