//! Typed entity indices and a small index-addressed vector.
//!
//! Compiler data structures are full of parallel arrays indexed by entity
//! ids. Newtyped indices ([`VReg`], [`BlockId`], [`FuncId`]) keep the id
//! spaces from being confused, and [`EntityVec`] gives `vec[id]` indexing
//! without casts at every use site.

use std::fmt;
use std::marker::PhantomData;

/// A trait for entity index newtypes backed by a `u32`.
pub trait EntityId: Copy + Eq {
    /// Build an id from a raw index.
    fn from_index(index: usize) -> Self;
    /// The raw index of this id.
    fn index(self) -> usize;
}

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl EntityId for $name {
            fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl $name {
            /// The raw index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id! {
    /// A virtual register. Allocators map these to physical registers or
    /// memory (spill slots).
    VReg, "v"
}

entity_id! {
    /// A basic block within one [`crate::Function`].
    BlockId, "bb"
}

entity_id! {
    /// A function within one [`crate::Program`].
    FuncId, "fn"
}

/// A vector addressed by an entity id instead of a bare `usize`.
///
/// # Example
///
/// ```
/// use ccra_ir::{EntityVec, VReg};
///
/// let mut names: EntityVec<VReg, &str> = EntityVec::new();
/// let a = names.push("alpha");
/// assert_eq!(names[a], "alpha");
/// assert_eq!(names.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct EntityVec<K, V> {
    items: Vec<V>,
    _marker: PhantomData<K>,
}

impl<K: EntityId, V> EntityVec<K, V> {
    /// Creates an empty entity vector.
    pub fn new() -> Self {
        EntityVec {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty entity vector with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EntityVec {
            items: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends a value and returns its id.
    pub fn push(&mut self, value: V) -> K {
        let id = K::from_index(self.items.len());
        self.items.push(value);
        id
    }

    /// The number of entities stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no entities are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the value for `id`, or `None` if out of range.
    pub fn get(&self, id: K) -> Option<&V> {
        self.items.get(id.index())
    }

    /// Whether `id` is a valid index into this vector.
    pub fn contains_id(&self, id: K) -> bool {
        id.index() < self.items.len()
    }

    /// Iterates over `(id, &value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over `(id, &mut value)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over all ids in order.
    pub fn ids(&self) -> impl Iterator<Item = K> + '_ {
        (0..self.items.len()).map(K::from_index)
    }

    /// Iterates over the stored values in id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.iter()
    }

    /// The id the next `push` would return.
    pub fn next_id(&self) -> K {
        K::from_index(self.items.len())
    }
}

impl<K: EntityId, V> Default for EntityVec<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityId, V> std::ops::Index<K> for EntityVec<K, V> {
    type Output = V;
    fn index(&self, id: K) -> &V {
        &self.items[id.index()]
    }
}

impl<K: EntityId, V> std::ops::IndexMut<K> for EntityVec<K, V> {
    fn index_mut(&mut self, id: K) -> &mut V {
        &mut self.items[id.index()]
    }
}

impl<K: EntityId, V: fmt::Debug> fmt::Debug for EntityVec<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<K: EntityId, V> FromIterator<V> for EntityVec<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        EntityVec {
            items: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<K: EntityId, V> Extend<V> for EntityVec<K, V> {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut v: EntityVec<VReg, i32> = EntityVec::new();
        let a = v.push(10);
        let b = v.push(20);
        assert_eq!(a, VReg(0));
        assert_eq!(b, VReg(1));
        assert_eq!(v[a], 10);
        assert_eq!(v[b], 20);
        v[a] = 15;
        assert_eq!(v[a], 15);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v: EntityVec<BlockId, char> = EntityVec::new();
        for c in ['a', 'b', 'c'] {
            v.push(c);
        }
        let ids: Vec<BlockId> = v.ids().collect();
        assert_eq!(ids, vec![BlockId(0), BlockId(1), BlockId(2)]);
        let pairs: Vec<(BlockId, char)> = v.iter().map(|(k, &c)| (k, c)).collect();
        assert_eq!(pairs[2], (BlockId(2), 'c'));
    }

    #[test]
    fn get_is_checked() {
        let mut v: EntityVec<FuncId, u8> = EntityVec::new();
        let a = v.push(1);
        assert_eq!(v.get(a), Some(&1));
        assert_eq!(v.get(FuncId(9)), None);
        assert!(v.contains_id(a));
        assert!(!v.contains_id(FuncId(9)));
    }

    #[test]
    fn next_id_tracks_len() {
        let mut v: EntityVec<VReg, ()> = EntityVec::new();
        assert_eq!(v.next_id(), VReg(0));
        v.push(());
        assert_eq!(v.next_id(), VReg(1));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut v: EntityVec<VReg, u32> = (0..3u32).collect();
        assert_eq!(v.len(), 3);
        v.extend([7, 8]);
        assert_eq!(v.len(), 5);
        assert_eq!(v[VReg(4)], 8);
    }

    #[test]
    fn debug_is_nonempty() {
        let v: EntityVec<VReg, u32> = EntityVec::new();
        assert_eq!(format!("{v:?}"), "[]");
        assert_eq!(format!("{:?}", VReg(3)), "v3");
        assert_eq!(format!("{}", BlockId(1)), "bb1");
        assert_eq!(format!("{}", FuncId(2)), "fn2");
    }
}
