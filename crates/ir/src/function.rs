//! Functions, basic blocks, and virtual-register metadata.

use crate::entity::{BlockId, EntityVec, VReg};
use crate::inst::{Inst, Terminator};
use crate::RegClass;

/// Per-virtual-register metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VRegData {
    /// The register class (bank) of this virtual register.
    pub class: RegClass,
    /// Whether this register was created by spill-code insertion. Spill
    /// temporaries are tiny live ranges that must not themselves be spilled
    /// again, so allocators give them effectively infinite spill cost.
    pub is_spill_temp: bool,
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions of the block, in execution order.
    pub insts: Vec<Inst>,
    /// The control-flow terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates a block with no instructions and the given terminator.
    pub fn new(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
        }
    }
}

/// A single function: a CFG of [`Block`]s over a set of virtual registers.
///
/// Construct functions with [`crate::FunctionBuilder`]; the register
/// allocators consume and rewrite them.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    params: Vec<VReg>,
    entry: BlockId,
    blocks: EntityVec<BlockId, Block>,
    vregs: EntityVec<VReg, VRegData>,
    num_spill_slots: u32,
}

impl Function {
    /// Creates a function from raw parts. Prefer [`crate::FunctionBuilder`].
    pub fn from_parts(
        name: String,
        params: Vec<VReg>,
        entry: BlockId,
        blocks: EntityVec<BlockId, Block>,
        vregs: EntityVec<VReg, VRegData>,
    ) -> Self {
        Function {
            name,
            params,
            entry,
            blocks,
            vregs,
            num_spill_slots: 0,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter registers, defined on entry.
    pub fn params(&self) -> &[VReg] {
        &self.params
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vregs.len()
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id]
    }

    /// Mutable access to the block with the given id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id]
    }

    /// Iterates over `(id, block)` pairs in id order.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter()
    }

    /// All block ids in order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks.ids()
    }

    /// The metadata of a virtual register.
    pub fn vreg(&self, v: VReg) -> &VRegData {
        &self.vregs[v]
    }

    /// The register class of a virtual register.
    pub fn class_of(&self, v: VReg) -> RegClass {
        self.vregs[v].class
    }

    /// All virtual-register ids in order.
    pub fn vreg_ids(&self) -> impl Iterator<Item = VReg> + '_ {
        self.vregs.ids()
    }

    /// Creates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.vregs.push(VRegData {
            class,
            is_spill_temp: false,
        })
    }

    /// Creates a fresh spill-temporary register of the given class.
    ///
    /// Spill temporaries carry effectively infinite spill cost so that the
    /// iterated allocator never spills the code it just inserted.
    pub fn new_spill_temp(&mut self, class: RegClass) -> VReg {
        self.vregs.push(VRegData {
            class,
            is_spill_temp: true,
        })
    }

    /// Appends a new block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        self.blocks.push(block)
    }

    /// The number of spill slots created so far.
    pub fn num_spill_slots(&self) -> u32 {
        self.num_spill_slots
    }

    /// Creates a fresh spill slot.
    pub fn new_spill_slot(&mut self) -> crate::SpillSlot {
        let slot = crate::SpillSlot(self.num_spill_slots);
        self.num_spill_slots += 1;
        slot
    }

    /// The successor blocks of `id`.
    pub fn successors(&self, id: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.blocks[id].term.successors()
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> EntityVec<BlockId, Vec<BlockId>> {
        let mut preds: EntityVec<BlockId, Vec<BlockId>> =
            self.blocks.ids().map(|_| Vec::new()).collect();
        for (id, block) in self.blocks.iter() {
            for succ in block.term.successors() {
                preds[succ].push(id);
            }
        }
        preds
    }

    /// Total number of instructions (terminators excluded).
    pub fn num_insts(&self) -> usize {
        self.blocks.values().map(|b| b.insts.len()).sum()
    }

    /// Iterates over every call instruction as `(block, index-in-block)`.
    pub fn call_sites(&self) -> Vec<(BlockId, usize)> {
        let mut sites = Vec::new();
        for (bb, block) in self.blocks.iter() {
            for (i, inst) in block.insts.iter().enumerate() {
                if inst.is_call() {
                    sites.push((bb, i));
                }
            }
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Callee};
    use crate::FunctionBuilder;

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("sample");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.set_params(vec![x]);
        b.iconst(y, 1);
        let z = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Add, z, x, y);
        b.call(Callee::External("f"), vec![z], None);
        b.ret(Some(z));
        b.finish()
    }

    #[test]
    fn basic_accessors() {
        let f = sample();
        assert_eq!(f.name(), "sample");
        assert_eq!(f.params().len(), 1);
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.num_vregs(), 3);
        assert_eq!(f.num_insts(), 3);
        assert_eq!(f.class_of(VReg(0)), RegClass::Int);
    }

    #[test]
    fn call_sites_found() {
        let f = sample();
        let sites = f.call_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0], (f.entry(), 2));
    }

    #[test]
    fn predecessors_of_diamond() {
        let mut b = FunctionBuilder::new("diamond");
        let c = b.new_vreg(RegClass::Int);
        b.iconst(c, 1);
        let (then_bb, else_bb, join) = (b.reserve_block(), b.reserve_block(), b.reserve_block());
        b.branch(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.jump(join);
        b.switch_to(else_bb);
        b.jump(join);
        b.switch_to(join);
        b.ret(None);
        let f = b.finish();
        let preds = f.predecessors();
        assert_eq!(preds[join].len(), 2);
        assert_eq!(preds[f.entry()].len(), 0);
    }

    #[test]
    fn spill_temp_flag() {
        let mut f = sample();
        let t = f.new_spill_temp(RegClass::Float);
        assert!(f.vreg(t).is_spill_temp);
        assert_eq!(f.class_of(t), RegClass::Float);
        assert!(!f.vreg(VReg(0)).is_spill_temp);
    }
}
