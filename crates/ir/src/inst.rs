//! Instructions and block terminators.

use crate::entity::{BlockId, FuncId, VReg};

/// Integer and floating-point binary operations.
///
/// Integer ops operate on [`crate::RegClass::Int`] registers, `F`-prefixed
/// ops on [`crate::RegClass::Float`] registers. Comparison results are
/// integers (0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (wrapping; division by zero yields 0).
    Div,
    /// Integer remainder (remainder by zero yields 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Shr,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
}

impl BinOp {
    /// Whether the operation reads and writes the floating-point bank.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation (wrapping).
    Neg,
    /// Bitwise not.
    Not,
    /// Floating-point negation.
    FNeg,
    /// Convert an integer to floating point (defines a float register).
    IntToFloat,
    /// Truncate a floating-point value to an integer (defines an int register).
    FloatToInt,
}

impl UnOp {
    /// The register class of the *result*.
    pub fn result_class(self) -> crate::RegClass {
        match self {
            UnOp::Neg | UnOp::Not | UnOp::FloatToInt => crate::RegClass::Int,
            UnOp::FNeg | UnOp::IntToFloat => crate::RegClass::Float,
        }
    }

    /// The register class of the *operand*.
    pub fn operand_class(self) -> crate::RegClass {
        match self {
            UnOp::Neg | UnOp::Not | UnOp::IntToFloat => crate::RegClass::Int,
            UnOp::FNeg | UnOp::FloatToInt => crate::RegClass::Float,
        }
    }
}

/// Comparison operators for [`Inst::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

/// The target of a call instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function in the same [`crate::Program`]; the profiler executes it.
    Internal(FuncId),
    /// An opaque external routine. The interpreter models it as a cheap
    /// deterministic function of its arguments; for register allocation it
    /// behaves exactly like any other call (it clobbers caller-save state).
    External(&'static str),
}

/// The kind of register-allocation overhead an [`Inst::Overhead`]
/// pseudo-instruction accounts for.
///
/// After allocation, the rewriting phases insert explicit overhead markers
/// into the instruction stream so the interpreter can *measure* (rather than
/// estimate) the overhead-operation counts of Section 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverheadKind {
    /// A spill load or store (a live range resides in memory).
    Spill,
    /// A caller-save save/restore around a call.
    CallerSave,
    /// A callee-save save/restore at function entry/exit.
    CalleeSave,
    /// A shuffle move between two live ranges in different locations.
    Shuffle,
}

impl OverheadKind {
    /// All overhead kinds, in a fixed order.
    pub const ALL: [OverheadKind; 4] = [
        OverheadKind::Spill,
        OverheadKind::CallerSave,
        OverheadKind::CalleeSave,
        OverheadKind::Shuffle,
    ];
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = value` — integer constant.
    IConst {
        /// Destination (int class).
        dst: VReg,
        /// The constant.
        value: i64,
    },
    /// `dst = value` — floating-point constant.
    FConst {
        /// Destination (float class).
        dst: VReg,
        /// The constant.
        value: f64,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// The operation.
        op: BinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = op src`.
    Unary {
        /// The operation.
        op: UnOp,
        /// Destination.
        dst: VReg,
        /// Operand.
        src: VReg,
    },
    /// `dst = lhs cmp rhs` — integer comparison producing 0 or 1.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Destination (int class).
        dst: VReg,
        /// Left operand (int class).
        lhs: VReg,
        /// Right operand (int class).
        rhs: VReg,
    },
    /// `dst = mem[addr + offset]` — load from program data memory.
    Load {
        /// Destination.
        dst: VReg,
        /// Base address (int class).
        addr: VReg,
        /// Constant byte offset.
        offset: i64,
    },
    /// `mem[addr + offset] = src` — store to program data memory.
    Store {
        /// Value to store.
        src: VReg,
        /// Base address (int class).
        addr: VReg,
        /// Constant byte offset.
        offset: i64,
    },
    /// `dst = src` — a register move and a coalescing candidate. Remaining
    /// (uncoalesced) copies whose operands land in different locations
    /// contribute *shuffle cost*.
    Copy {
        /// Destination.
        dst: VReg,
        /// Source (same class as `dst`).
        src: VReg,
    },
    /// `ret = call callee(args...)`.
    Call {
        /// The call target.
        callee: Callee,
        /// Argument registers, read by the call.
        args: Vec<VReg>,
        /// Optional return-value register, defined by the call.
        ret: Option<VReg>,
    },
    /// `slot = src` — spill a value to a stack slot. Inserted by spill-code
    /// insertion; executes semantically (the slot holds the value) and
    /// counts as one [`OverheadKind::Spill`] operation.
    SpillStore {
        /// The spill slot written.
        slot: SpillSlot,
        /// The value spilled.
        src: VReg,
    },
    /// `dst = slot` — reload a value from a stack slot. Counts as one
    /// [`OverheadKind::Spill`] operation.
    SpillLoad {
        /// The destination register.
        dst: VReg,
        /// The spill slot read.
        slot: SpillSlot,
    },
    /// A semantically inert marker counting `ops` overhead operations of
    /// `kind` each time it executes. Inserted by save/restore- and
    /// shuffle-code insertion after register allocation; never present in
    /// pre-allocation IR.
    Overhead {
        /// What kind of overhead this marker accounts for.
        kind: OverheadKind,
        /// How many overhead operations executing this marker costs.
        ops: u32,
    },
}

/// A per-function stack slot created by spill-code insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpillSlot(pub u32);

impl SpillSlot {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SpillSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match *self {
            Inst::IConst { dst, .. }
            | Inst::FConst { dst, .. }
            | Inst::Binary { dst, .. }
            | Inst::Unary { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::SpillLoad { dst, .. } => Some(dst),
            Inst::Call { ret, .. } => ret,
            Inst::Store { .. } | Inst::SpillStore { .. } | Inst::Overhead { .. } => None,
        }
    }

    /// Appends the registers read by this instruction to `out`.
    pub fn collect_uses(&self, out: &mut Vec<VReg>) {
        match self {
            Inst::IConst { .. }
            | Inst::FConst { .. }
            | Inst::Overhead { .. }
            | Inst::SpillLoad { .. } => {}
            Inst::SpillStore { src, .. } => out.push(*src),
            Inst::Binary { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Inst::Unary { src, .. } | Inst::Copy { src, .. } => out.push(*src),
            Inst::Load { addr, .. } => out.push(*addr),
            Inst::Store { src, addr, .. } => {
                out.push(*src);
                out.push(*addr);
            }
            Inst::Call { args, .. } => out.extend(args.iter().copied()),
        }
    }

    /// The registers read by this instruction, as a fresh vector.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        self.collect_uses(&mut v);
        v
    }

    /// Whether this instruction is a call (the event caller-save cost
    /// attaches to).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }

    /// Whether this is a copy (a coalescing candidate).
    pub fn is_copy(&self) -> bool {
        matches!(self, Inst::Copy { .. })
    }
}

/// The control-flow terminator ending every basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch: goes to `then_bb` when `cond != 0`, else `else_bb`.
    Branch {
        /// The condition register (int class).
        cond: VReg,
        /// Successor when the condition is non-zero.
        then_bb: BlockId,
        /// Successor when the condition is zero.
        else_bb: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return(Option<VReg>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match *self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => (Some(then_bb), Some(else_bb)),
            Terminator::Return(_) => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// The register read by this terminator, if any.
    pub fn use_reg(&self) -> Option<VReg> {
        match *self {
            Terminator::Branch { cond, .. } => Some(cond),
            Terminator::Return(v) => v,
            Terminator::Jump(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Inst::Binary {
            op: BinOp::Add,
            dst: VReg(2),
            lhs: VReg(0),
            rhs: VReg(1),
        };
        assert_eq!(i.def(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);

        let s = Inst::Store {
            src: VReg(3),
            addr: VReg(4),
            offset: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VReg(3), VReg(4)]);

        let c = Inst::Call {
            callee: Callee::External("sin"),
            args: vec![VReg(5)],
            ret: Some(VReg(6)),
        };
        assert_eq!(c.def(), Some(VReg(6)));
        assert_eq!(c.uses(), vec![VReg(5)]);
        assert!(c.is_call());

        let o = Inst::Overhead {
            kind: OverheadKind::Spill,
            ops: 1,
        };
        assert_eq!(o.def(), None);
        assert!(o.uses().is_empty());
    }

    #[test]
    fn call_without_return_defines_nothing() {
        let c = Inst::Call {
            callee: Callee::Internal(FuncId(0)),
            args: vec![],
            ret: None,
        };
        assert_eq!(c.def(), None);
    }

    #[test]
    fn terminator_successors() {
        let j = Terminator::Jump(BlockId(3));
        assert_eq!(j.successors().collect::<Vec<_>>(), vec![BlockId(3)]);

        let b = Terminator::Branch {
            cond: VReg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(
            b.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        assert_eq!(b.use_reg(), Some(VReg(0)));

        let r = Terminator::Return(Some(VReg(7)));
        assert_eq!(r.successors().count(), 0);
        assert_eq!(r.use_reg(), Some(VReg(7)));
    }

    #[test]
    fn binop_classes() {
        assert!(BinOp::FMul.is_float());
        assert!(!BinOp::Add.is_float());
        assert_eq!(UnOp::IntToFloat.result_class(), crate::RegClass::Float);
        assert_eq!(UnOp::IntToFloat.operand_class(), crate::RegClass::Int);
        assert_eq!(UnOp::FloatToInt.result_class(), crate::RegClass::Int);
    }

    #[test]
    fn copy_is_copy() {
        assert!(Inst::Copy {
            dst: VReg(0),
            src: VReg(1)
        }
        .is_copy());
        assert!(!Inst::IConst {
            dst: VReg(0),
            value: 3
        }
        .is_copy());
    }
}
