//! A compact RISC-style three-address intermediate representation.
//!
//! This crate provides the compiler substrate for the call-cost directed
//! register-allocation study (Lueh & Gross, PLDI 1997). The IR models the
//! essentials the paper's allocators observe:
//!
//! * **virtual registers** ([`VReg`]) in two register classes
//!   ([`RegClass::Int`], [`RegClass::Float`]), mirroring the MIPS integer and
//!   floating-point banks;
//! * **basic blocks** ([`Block`]) holding straight-line [`Inst`]s and ending
//!   in a [`Terminator`];
//! * **calls** ([`Inst::Call`]) — the source of caller-/callee-save cost;
//! * **copies** ([`Inst::Copy`]) — the coalescing and shuffle-cost substrate;
//! * **counted loops** expressible with plain branches, so the profiling
//!   interpreter in `ccra-analysis` can execute programs deterministically.
//!
//! # Example
//!
//! ```
//! use ccra_ir::{FunctionBuilder, Program, RegClass, BinOp};
//!
//! let mut b = FunctionBuilder::new("double_it");
//! let x = b.new_vreg(RegClass::Int);
//! let two = b.new_vreg(RegClass::Int);
//! let y = b.new_vreg(RegClass::Int);
//! b.set_params(vec![x]);
//! b.iconst(two, 2);
//! b.binary(BinOp::Mul, y, x, two);
//! b.ret(Some(y));
//! let f = b.finish();
//! assert_eq!(f.num_blocks(), 1);
//!
//! let mut program = Program::new();
//! let id = program.add_function(f);
//! program.set_main(id);
//! program.verify().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod entity;
mod function;
mod inst;
mod parse;
mod print;
mod program;
mod stablehash;
mod verify;

pub use builder::FunctionBuilder;
pub use entity::{BlockId, EntityVec, FuncId, VReg};
pub use function::{Block, Function, VRegData};
pub use inst::{BinOp, Callee, CmpOp, Inst, OverheadKind, SpillSlot, Terminator, UnOp};
pub use parse::{parse_function, parse_program, ParseError};
pub use print::display_function;
pub use program::Program;
pub use stablehash::{StableHash, StableHasher};
pub use verify::{verify_function, verify_program, VerifyError};

/// The register class (bank) a virtual register belongs to.
///
/// The MIPS machine of the paper has separate integer and floating-point
/// register banks; a live range can only be assigned registers from the bank
/// matching its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Integer bank (addresses, integers, booleans).
    Int,
    /// Floating-point bank.
    Float,
}

impl RegClass {
    /// All register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// A stable index for the class: `Int = 0`, `Float = 1`.
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }
}

impl std::fmt::Display for RegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}
