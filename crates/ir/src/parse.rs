//! A parser for the textual IR format produced by
//! [`crate::display_function`].
//!
//! Useful for writing compact test cases and for round-trip testing. The
//! grammar is line-oriented:
//!
//! ```text
//! func <name>(<params>) {
//!   int v0, v1, v2!          // `!` marks a spill temporary
//!   float v3
//!   slots <n>
//! bb0:
//!   v1 = iconst 5
//!   v2 = add v1, v1
//!   br v2 ? bb1 : bb2
//! ...
//! }
//! ```

use std::collections::HashMap;

use crate::entity::{BlockId, EntityVec, VReg};
use crate::function::{Block, Function, VRegData};
use crate::inst::{BinOp, Callee, CmpOp, Inst, SpillSlot, Terminator, UnOp};
use crate::{FuncId, Program, RegClass};

/// A textual-IR parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_vreg(line: usize, tok: &str) -> Result<VReg, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    match tok.strip_prefix('v').and_then(|n| n.parse::<u32>().ok()) {
        Some(n) => Ok(VReg(n)),
        None => err(line, format!("expected vreg, found `{tok}`")),
    }
}

fn parse_block_id(line: usize, tok: &str) -> Result<BlockId, ParseError> {
    match tok
        .trim()
        .strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
    {
        Some(n) => Ok(BlockId(n)),
        None => err(line, format!("expected block id, found `{tok}`")),
    }
}

fn parse_slot(line: usize, tok: &str) -> Result<SpillSlot, ParseError> {
    match tok
        .trim()
        .strip_prefix("slot")
        .and_then(|n| n.parse::<u32>().ok())
    {
        Some(n) => Ok(SpillSlot(n)),
        None => err(line, format!("expected spill slot, found `{tok}`")),
    }
}

fn binop_of(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn unop_of(m: &str) -> Option<UnOp> {
    Some(match m {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "fneg" => UnOp::FNeg,
        "i2f" => UnOp::IntToFloat,
        "f2i" => UnOp::FloatToInt,
        _ => return None,
    })
}

fn cmp_of(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

/// Parses `[vN+OFF]` into `(addr, offset)`.
fn parse_mem(line: usize, tok: &str) -> Result<(VReg, i64), ParseError> {
    let inner = tok
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected [vN+off], found `{tok}`"),
        })?;
    let plus = inner.rfind('+').ok_or_else(|| ParseError {
        line,
        message: format!("expected +offset in `{tok}`"),
    })?;
    let addr = parse_vreg(line, &inner[..plus])?;
    let offset: i64 = inner[plus + 1..].trim().parse().map_err(|_| ParseError {
        line,
        message: format!("bad offset in `{tok}`"),
    })?;
    Ok((addr, offset))
}

/// Parses a call tail `target(args...)` into `(callee, args)`.
fn parse_call(
    line: usize,
    rest: &str,
    funcs: &HashMap<String, FuncId>,
) -> Result<(Callee, Vec<VReg>), ParseError> {
    let open = rest.find('(').ok_or_else(|| ParseError {
        line,
        message: "call needs (args)".into(),
    })?;
    let close = rest.rfind(')').ok_or_else(|| ParseError {
        line,
        message: "call needs closing )".into(),
    })?;
    let target = rest[..open].trim();
    let callee = if let Some(name) = target.strip_prefix('@') {
        // External names must be 'static; intern via a leaked string (test
        // and tooling use only).
        Callee::External(Box::leak(name.to_string().into_boxed_str()))
    } else if let Some(n) = target
        .strip_prefix("fn")
        .and_then(|n| n.parse::<u32>().ok())
    {
        Callee::Internal(FuncId(n))
    } else if let Some(&id) = funcs.get(target) {
        Callee::Internal(id)
    } else {
        return err(line, format!("unknown call target `{target}`"));
    };
    let args_str = rest[open + 1..close].trim();
    let mut args = Vec::new();
    if !args_str.is_empty() {
        for tok in args_str.split(',') {
            args.push(parse_vreg(line, tok)?);
        }
    }
    Ok((callee, args))
}

fn parse_inst(
    line: usize,
    text: &str,
    funcs: &HashMap<String, FuncId>,
) -> Result<Inst, ParseError> {
    // Statements without a destination first.
    if let Some(rest) = text.strip_prefix("store ") {
        // store [vA+off], vS
        let comma = rest.rfind(',').ok_or_else(|| ParseError {
            line,
            message: "store needs `, src`".into(),
        })?;
        let (addr, offset) = parse_mem(line, &rest[..comma])?;
        let src = parse_vreg(line, &rest[comma + 1..])?;
        return Ok(Inst::Store { src, addr, offset });
    }
    if let Some(rest) = text.strip_prefix("call ") {
        let (callee, args) = parse_call(line, rest, funcs)?;
        return Ok(Inst::Call {
            callee,
            args,
            ret: None,
        });
    }
    if let Some(rest) = text.strip_prefix("overhead ") {
        let mut parts = rest.split_whitespace();
        let kind = match parts.next() {
            Some("spill") => crate::OverheadKind::Spill,
            Some("caller_save") => crate::OverheadKind::CallerSave,
            Some("callee_save") => crate::OverheadKind::CalleeSave,
            Some("shuffle") => crate::OverheadKind::Shuffle,
            other => return err(line, format!("bad overhead kind {other:?}")),
        };
        let ops = parts
            .next()
            .and_then(|t| t.strip_prefix('x'))
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| ParseError {
                line,
                message: "overhead needs xN".into(),
            })?;
        return Ok(Inst::Overhead { kind, ops });
    }

    // `<lhs> = <op> ...`
    let eq = text.find('=').ok_or_else(|| ParseError {
        line,
        message: format!("unrecognised instruction `{text}`"),
    })?;
    let lhs = text[..eq].trim();
    let rest = text[eq + 1..].trim();

    if let Ok(slot) = parse_slot(line, lhs) {
        let src = rest.strip_prefix("spill_store").ok_or_else(|| ParseError {
            line,
            message: "slot target needs spill_store".into(),
        })?;
        return Ok(Inst::SpillStore {
            slot,
            src: parse_vreg(line, src)?,
        });
    }
    let dst = parse_vreg(line, lhs)?;
    let (op, tail) = match rest.find(' ') {
        Some(sp) => (&rest[..sp], rest[sp + 1..].trim()),
        None => (rest, ""),
    };
    if op == "iconst" {
        let value: i64 = tail.parse().map_err(|_| ParseError {
            line,
            message: format!("bad int constant `{tail}`"),
        })?;
        return Ok(Inst::IConst { dst, value });
    }
    if op == "fconst" {
        let value: f64 = tail.parse().map_err(|_| ParseError {
            line,
            message: format!("bad float constant `{tail}`"),
        })?;
        return Ok(Inst::FConst { dst, value });
    }
    if let Some(b) = binop_of(op) {
        let comma = tail.find(',').ok_or_else(|| ParseError {
            line,
            message: "binary op needs two operands".into(),
        })?;
        return Ok(Inst::Binary {
            op: b,
            dst,
            lhs: parse_vreg(line, &tail[..comma])?,
            rhs: parse_vreg(line, &tail[comma + 1..])?,
        });
    }
    if let Some(u) = unop_of(op) {
        return Ok(Inst::Unary {
            op: u,
            dst,
            src: parse_vreg(line, tail)?,
        });
    }
    if let Some(c) = op.strip_prefix("cmp.").and_then(cmp_of) {
        let comma = tail.find(',').ok_or_else(|| ParseError {
            line,
            message: "cmp needs two operands".into(),
        })?;
        return Ok(Inst::Cmp {
            op: c,
            dst,
            lhs: parse_vreg(line, &tail[..comma])?,
            rhs: parse_vreg(line, &tail[comma + 1..])?,
        });
    }
    match op {
        "copy" => Ok(Inst::Copy {
            dst,
            src: parse_vreg(line, tail)?,
        }),
        "load" => {
            let (addr, offset) = parse_mem(line, tail)?;
            Ok(Inst::Load { dst, addr, offset })
        }
        "spill_load" => Ok(Inst::SpillLoad {
            dst,
            slot: parse_slot(line, tail)?,
        }),
        "call" => {
            let (callee, args) = parse_call(line, tail, funcs)?;
            Ok(Inst::Call {
                callee,
                args,
                ret: Some(dst),
            })
        }
        _ => err(line, format!("unknown operation `{op}`")),
    }
}

fn parse_term(line: usize, text: &str) -> Result<Option<Terminator>, ParseError> {
    if let Some(t) = text.strip_prefix("jump ") {
        return Ok(Some(Terminator::Jump(parse_block_id(line, t)?)));
    }
    if let Some(rest) = text.strip_prefix("br ") {
        // br vC ? bbT : bbE
        let q = rest.find('?').ok_or_else(|| ParseError {
            line,
            message: "br needs ?".into(),
        })?;
        let colon = rest.rfind(':').ok_or_else(|| ParseError {
            line,
            message: "br needs :".into(),
        })?;
        return Ok(Some(Terminator::Branch {
            cond: parse_vreg(line, &rest[..q])?,
            then_bb: parse_block_id(line, &rest[q + 1..colon])?,
            else_bb: parse_block_id(line, &rest[colon + 1..])?,
        }));
    }
    if text == "ret" {
        return Ok(Some(Terminator::Return(None)));
    }
    if let Some(v) = text.strip_prefix("ret ") {
        return Ok(Some(Terminator::Return(Some(parse_vreg(line, v)?))));
    }
    Ok(None)
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split("//").next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.peek();
        self.pos += 1;
        item
    }

    fn parse_function(&mut self, funcs: &HashMap<String, FuncId>) -> Result<Function, ParseError> {
        let (line, header) = self.next().ok_or_else(|| ParseError {
            line: 0,
            message: "expected `func`".into(),
        })?;
        let header = header.strip_prefix("func ").ok_or_else(|| ParseError {
            line,
            message: "expected `func <name>(…) {`".into(),
        })?;
        let open = header.find('(').ok_or_else(|| ParseError {
            line,
            message: "func needs (params)".into(),
        })?;
        let close = header.find(')').ok_or_else(|| ParseError {
            line,
            message: "func needs closing )".into(),
        })?;
        if !header[close..].contains('{') {
            return err(line, "func needs opening {");
        }
        let name = header[..open].trim().to_string();
        let mut params = Vec::new();
        let params_str = header[open + 1..close].trim();
        if !params_str.is_empty() {
            for tok in params_str.split(',') {
                params.push(parse_vreg(line, tok)?);
            }
        }

        // Declarations.
        let mut classes: HashMap<VReg, (RegClass, bool)> = HashMap::new();
        let mut slots = 0u32;
        while let Some((line, text)) = self.peek() {
            let class = if text.starts_with("int ") {
                Some(RegClass::Int)
            } else if text.starts_with("float ") {
                Some(RegClass::Float)
            } else {
                None
            };
            if let Some(class) = class {
                for tok in text[class.to_string().len()..].split(',') {
                    let tok = tok.trim();
                    if tok.is_empty() {
                        continue;
                    }
                    let (tok, is_temp) = match tok.strip_suffix('!') {
                        Some(t) => (t, true),
                        None => (tok, false),
                    };
                    classes.insert(parse_vreg(line, tok)?, (class, is_temp));
                }
                self.pos += 1;
            } else if let Some(n) = text.strip_prefix("slots ") {
                slots = n.trim().parse().map_err(|_| ParseError {
                    line,
                    message: "bad slot count".into(),
                })?;
                self.pos += 1;
            } else {
                break;
            }
        }

        // Dense vreg table.
        let max = classes
            .keys()
            .map(|v| v.index())
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut vregs: EntityVec<VReg, VRegData> = EntityVec::new();
        for i in 0..max {
            let (class, is_spill_temp) = classes
                .get(&VReg(i as u32))
                .copied()
                .unwrap_or((RegClass::Int, false));
            vregs.push(VRegData {
                class,
                is_spill_temp,
            });
        }

        // Blocks.
        let mut blocks: EntityVec<BlockId, Block> = EntityVec::new();
        let mut current: Option<(BlockId, Vec<Inst>)> = None;
        loop {
            let Some((line, text)) = self.next() else {
                return err(0, "unexpected end of input (missing `}`)");
            };
            if text == "}" {
                if current.is_some() {
                    return err(line, "block has no terminator before `}`");
                }
                break;
            }
            if let Some(label) = text.strip_suffix(':') {
                if current.is_some() {
                    return err(line, "previous block has no terminator");
                }
                let id = parse_block_id(line, label)?;
                if id.index() != blocks.len() {
                    return err(
                        line,
                        format!("blocks must be dense: expected bb{}", blocks.len()),
                    );
                }
                current = Some((id, Vec::new()));
                continue;
            }
            let Some((_, insts)) = current.as_mut() else {
                return err(line, "instruction outside a block");
            };
            if let Some(term) = parse_term(line, text)? {
                let (_, insts) = current.take().unwrap();
                blocks.push(Block { insts, term });
            } else {
                insts.push(parse_inst(line, text, funcs)?);
            }
        }
        if blocks.is_empty() {
            return err(line, "function has no blocks");
        }

        let mut f = Function::from_parts(name, params, BlockId(0), blocks, vregs);
        for _ in 0..slots {
            f.new_spill_slot();
        }
        Ok(f)
    }
}

/// Parses one function from the textual format.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
///
/// # Example
///
/// ```
/// let f = ccra_ir::parse_function(
///     "func double(v0) {\n  int v0, v1\nbb0:\n  v1 = add v0, v0\n  ret v1\n}",
/// )?;
/// assert_eq!(f.name(), "double");
/// assert_eq!(f.num_insts(), 1);
/// ccra_ir::verify_function(&f)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    Parser::new(text).parse_function(&HashMap::new())
}

/// Parses a whole program: a sequence of functions followed by an optional
/// `main <name>` directive (defaults to the function named `main`, else the
/// last function). Call targets may be written `fnN` or by function name
/// (backward references only).
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(text);
    let mut program = Program::new();
    let mut names: HashMap<String, FuncId> = HashMap::new();
    let mut main_directive: Option<(usize, String)> = None;
    while let Some((line, text)) = parser.peek() {
        if let Some(name) = text.strip_prefix("main ") {
            main_directive = Some((line, name.trim().to_string()));
            parser.pos += 1;
            continue;
        }
        let f = parser.parse_function(&names)?;
        let name = f.name().to_string();
        let id = program.add_function(f);
        names.insert(name, id);
    }
    let main = match main_directive {
        Some((line, name)) => Some(*names.get(&name).ok_or_else(|| ParseError {
            line,
            message: format!("unknown main `{name}`"),
        })?),
        None => names
            .get("main")
            .copied()
            .or_else(|| program.func_ids().last()),
    };
    if let Some(main) = main {
        program.set_main(main);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{display_function, FunctionBuilder};

    #[test]
    fn parse_minimal() {
        let f = parse_function("func f() {\n  int v0\nbb0:\n  v0 = iconst 7\n  ret v0\n}").unwrap();
        assert_eq!(f.name(), "f");
        assert_eq!(f.num_vregs(), 1);
        crate::verify_function(&f).unwrap();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_function("func f() {\n  int v0\nbb0:\n  v0 = bogus 7\n  ret\n}").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("bogus"));

        let e = parse_function("func f() {\nbb0:\n  ret\nbb2:\n  ret\n}").unwrap_err();
        assert!(e.message.contains("dense"));
    }

    #[test]
    fn missing_terminator_rejected() {
        let e = parse_function("func f() {\n  int v0\nbb0:\n  v0 = iconst 1\n}").unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    fn roundtrip(f: &crate::Function) {
        let text = display_function(f);
        let parsed =
            parse_function(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let text2 = display_function(&parsed);
        assert_eq!(text, text2, "round-trip mismatch");
    }

    #[test]
    fn roundtrips_every_construct() {
        let mut b = FunctionBuilder::new("everything");
        let p = b.new_vreg(RegClass::Int);
        b.set_params(vec![p]);
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Float);
        let z = b.new_vreg(RegClass::Float);
        b.iconst(x, -42);
        b.fconst(y, 1.5);
        b.binary(BinOp::Xor, x, x, p);
        b.binary(BinOp::FMul, z, y, y);
        b.unary(UnOp::IntToFloat, z, x);
        b.unary(UnOp::FloatToInt, x, z);
        b.cmp(CmpOp::Ge, x, x, p);
        b.load(x, p, -8);
        b.store(x, p, 16);
        b.copy(x, p);
        b.call(Callee::External("sin"), vec![x, p], Some(x));
        b.call(Callee::Internal(FuncId(0)), vec![], None);
        let t = b.reserve_block();
        let e = b.reserve_block();
        b.branch(x, t, e);
        b.switch_to(t);
        b.jump(e);
        b.switch_to(e);
        b.ret(Some(x));
        let mut f = b.finish();
        let slot = f.new_spill_slot();
        let temp = f.new_spill_temp(RegClass::Float);
        let entry = f.entry();
        f.block_mut(entry)
            .insts
            .push(Inst::SpillStore { slot, src: p });
        f.block_mut(entry)
            .insts
            .push(Inst::SpillLoad { dst: temp, slot });
        f.block_mut(entry).insts.push(Inst::Overhead {
            kind: crate::OverheadKind::CallerSave,
            ops: 4,
        });
        roundtrip(&f);
    }

    #[test]
    fn float_constants_roundtrip_exactly() {
        let mut b = FunctionBuilder::new("floats");
        let v = b.new_vreg(RegClass::Float);
        b.fconst(v, 0.1 + 0.2); // a value that needs full precision
        b.fconst(v, 1e300);
        b.fconst(v, -0.0);
        b.ret(None);
        let f = b.finish();
        let parsed = parse_function(&display_function(&f)).unwrap();
        assert_eq!(f.block(f.entry()).insts, parsed.block(parsed.entry()).insts);
    }

    #[test]
    fn parse_program_with_calls_by_name() {
        let text = "\
func helper(v0) {
  int v0
bb0:
  ret v0
}
func main() {
  int v0, v1
bb0:
  v0 = iconst 3
  v1 = call helper(v0)
  ret v1
}
";
        let p = parse_program(text).unwrap();
        assert_eq!(p.num_functions(), 2);
        assert!(p.main().is_some());
        assert_eq!(p.function(p.main().unwrap()).name(), "main");
        p.verify().unwrap();
        assert_eq!(p.call_edges().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let f = parse_function(
            "func f() { // header\n\n  int v0 // decl\nbb0:\n  // nothing\n  v0 = iconst 1\n  ret v0\n}",
        )
        .unwrap();
        assert_eq!(f.num_insts(), 1);
    }
}
