//! Human-readable (and machine-parseable) IR printing.
//!
//! The format round-trips through [`crate::parse_function`]:
//!
//! ```text
//! func tiny(v0) {
//!   int v0, v1
//!   float v2
//!   slots 1
//! bb0:
//!   v1 = iconst 5
//!   ret v1
//! }
//! ```

use std::fmt::Write as _;

use crate::function::Function;
use crate::inst::{BinOp, Callee, CmpOp, Inst, Terminator, UnOp};
use crate::RegClass;

pub(crate) fn binop_mnemonic(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::FAdd => "fadd",
        BinOp::FSub => "fsub",
        BinOp::FMul => "fmul",
        BinOp::FDiv => "fdiv",
    }
}

pub(crate) fn unop_mnemonic(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::FNeg => "fneg",
        UnOp::IntToFloat => "i2f",
        UnOp::FloatToInt => "f2i",
    }
}

pub(crate) fn cmp_mnemonic(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn write_inst(out: &mut String, inst: &Inst) {
    match inst {
        Inst::IConst { dst, value } => {
            let _ = writeln!(out, "  {dst} = iconst {value}");
        }
        Inst::FConst { dst, value } => {
            let _ = writeln!(out, "  {dst} = fconst {value:?}");
        }
        Inst::Binary { op, dst, lhs, rhs } => {
            let _ = writeln!(out, "  {dst} = {} {lhs}, {rhs}", binop_mnemonic(*op));
        }
        Inst::Unary { op, dst, src } => {
            let _ = writeln!(out, "  {dst} = {} {src}", unop_mnemonic(*op));
        }
        Inst::Cmp { op, dst, lhs, rhs } => {
            let _ = writeln!(out, "  {dst} = cmp.{} {lhs}, {rhs}", cmp_mnemonic(*op));
        }
        Inst::Load { dst, addr, offset } => {
            let _ = writeln!(out, "  {dst} = load [{addr}+{offset}]");
        }
        Inst::Store { src, addr, offset } => {
            let _ = writeln!(out, "  store [{addr}+{offset}], {src}");
        }
        Inst::Copy { dst, src } => {
            let _ = writeln!(out, "  {dst} = copy {src}");
        }
        Inst::Call { callee, args, ret } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let target = match callee {
                Callee::Internal(id) => format!("{id}"),
                Callee::External(name) => format!("@{name}"),
            };
            match ret {
                Some(r) => {
                    let _ = writeln!(out, "  {r} = call {target}({})", args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "  call {target}({})", args.join(", "));
                }
            }
        }
        Inst::SpillStore { slot, src } => {
            let _ = writeln!(out, "  {slot} = spill_store {src}");
        }
        Inst::SpillLoad { dst, slot } => {
            let _ = writeln!(out, "  {dst} = spill_load {slot}");
        }
        Inst::Overhead { kind, ops } => {
            let kind = match kind {
                crate::OverheadKind::Spill => "spill",
                crate::OverheadKind::CallerSave => "caller_save",
                crate::OverheadKind::CalleeSave => "callee_save",
                crate::OverheadKind::Shuffle => "shuffle",
            };
            let _ = writeln!(out, "  overhead {kind} x{ops}");
        }
    }
}

/// Renders a function as text; [`crate::parse_function`] parses it back.
///
/// # Example
///
/// ```
/// use ccra_ir::{FunctionBuilder, RegClass, display_function};
///
/// let mut b = FunctionBuilder::new("tiny");
/// let x = b.new_vreg(RegClass::Int);
/// b.iconst(x, 5);
/// b.ret(Some(x));
/// let text = display_function(&b.finish());
/// assert!(text.contains("func tiny"));
/// assert!(text.contains("v0 = iconst 5"));
/// ```
pub fn display_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params().iter().map(|p| p.to_string()).collect();
    let _ = writeln!(out, "func {}({}) {{", f.name(), params.join(", "));
    // Class declarations.
    for class in RegClass::ALL {
        let members: Vec<String> = f
            .vreg_ids()
            .filter(|&v| f.class_of(v) == class)
            .map(|v| {
                if f.vreg(v).is_spill_temp {
                    format!("{v}!")
                } else {
                    v.to_string()
                }
            })
            .collect();
        if !members.is_empty() {
            let _ = writeln!(out, "  {class} {}", members.join(", "));
        }
    }
    if f.num_spill_slots() > 0 {
        let _ = writeln!(out, "  slots {}", f.num_spill_slots());
    }
    for (id, block) in f.blocks() {
        let _ = writeln!(out, "{id}:");
        for inst in &block.insts {
            write_inst(&mut out, inst);
        }
        match &block.term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  jump {t}");
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let _ = writeln!(out, "  br {cond} ? {then_bb} : {else_bb}");
            }
            Terminator::Return(Some(v)) => {
                let _ = writeln!(out, "  ret {v}");
            }
            Terminator::Return(None) => {
                let _ = writeln!(out, "  ret");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, RegClass};

    #[test]
    fn prints_all_inst_kinds() {
        let mut b = FunctionBuilder::new("all");
        let i = b.new_vreg(RegClass::Int);
        let j = b.new_vreg(RegClass::Int);
        let x = b.new_vreg(RegClass::Float);
        b.iconst(i, 3);
        b.fconst(x, 2.5);
        b.binary(BinOp::Add, j, i, i);
        b.unary(UnOp::Neg, j, j);
        b.cmp(CmpOp::Lt, j, i, j);
        b.load(i, j, 4);
        b.store(i, j, 8);
        b.copy(i, j);
        b.call(Callee::External("puts"), vec![i], Some(j));
        b.ret(Some(j));
        let text = display_function(&b.finish());
        for needle in [
            "func all()",
            "int v0, v1",
            "float v2",
            "iconst",
            "fconst",
            "add",
            "neg",
            "cmp.lt",
            "load",
            "store",
            "copy",
            "call @puts",
            "ret v1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn prints_branches_and_slots() {
        let mut b = FunctionBuilder::new("br");
        let c = b.new_vreg(RegClass::Int);
        b.iconst(c, 0);
        let t = b.reserve_block();
        let e = b.reserve_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(e);
        b.switch_to(e);
        b.ret(None);
        let mut f = b.finish();
        let slot = f.new_spill_slot();
        let temp = f.new_spill_temp(RegClass::Int);
        let entry = f.entry();
        f.block_mut(entry)
            .insts
            .push(crate::Inst::SpillStore { slot, src: c });
        f.block_mut(entry)
            .insts
            .push(crate::Inst::SpillLoad { dst: temp, slot });
        let text = display_function(&f);
        assert!(text.contains("br v0 ? bb1 : bb2"));
        assert!(text.contains("jump bb2"));
        assert!(text.contains("slots 1"));
        assert!(text.contains("slot0 = spill_store v0"));
        assert!(text.contains("v1! = spill_load slot0") || text.contains("v1 = spill_load slot0"));
        assert!(text.contains("v1!"), "spill temps are marked: {text}");
    }
}
