//! Whole programs: a set of functions plus an entry point.

use crate::entity::{EntityVec, FuncId};
use crate::function::Function;
use crate::inst::{Callee, Inst};

/// A whole program: functions plus a designated `main`.
///
/// Register allocation is intra-procedural (one [`Function`] at a time, as in
/// the paper), but frequency estimation and profiling are whole-program: how
/// often a function is *entered* determines its callee-save cost.
///
/// # Ordering invariant
///
/// [`FuncId`]s are **dense and assigned in insertion order**:
/// [`Program::add_function`] hands out ids `0, 1, 2, …`, functions are
/// never removed or reordered, and [`Program::functions`] /
/// [`Program::func_ids`] iterate in ascending id order. This is a stable,
/// documented invariant — the allocation drivers report per-function
/// results indexed by id, and the parallel driver's deterministic merge
/// reassembles programs in id order relying on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    functions: EntityVec<FuncId, Function>,
    main: Option<FuncId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            functions: EntityVec::new(),
            main: None,
        }
    }

    /// Adds a function and returns its id — the next dense id in
    /// insertion order (see the ordering invariant on [`Program`]).
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f)
    }

    /// Sets the entry function executed by the profiler.
    pub fn set_main(&mut self, id: FuncId) {
        assert!(self.functions.contains_id(id), "unknown function {id:?}");
        self.main = Some(id);
    }

    /// The entry function, if one was set.
    pub fn main(&self) -> Option<FuncId> {
        self.main
    }

    /// The function with the given id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id]
    }

    /// Mutable access to the function with the given id.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id]
    }

    /// The number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Iterates over `(id, function)` pairs, in ascending id (= insertion)
    /// order.
    pub fn functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions.iter()
    }

    /// All function ids, in ascending (= insertion) order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        self.functions.ids()
    }

    /// Finds a function id by name, if present.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .find(|(_, f)| f.name() == name)
            .map(|(id, _)| id)
    }

    /// The static call edges `(caller, callee)` for internal calls.
    pub fn call_edges(&self) -> Vec<(FuncId, FuncId)> {
        let mut edges = Vec::new();
        for (caller, f) in self.functions.iter() {
            for (_, block) in f.blocks() {
                for inst in &block.insts {
                    if let Inst::Call {
                        callee: Callee::Internal(target),
                        ..
                    } = inst
                    {
                        edges.push((caller, *target));
                    }
                }
            }
        }
        edges
    }

    /// Verifies every function and the entry point. See [`crate::verify_program`].
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::VerifyError`] found.
    pub fn verify(&self) -> Result<(), crate::VerifyError> {
        crate::verify_program(self)
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.functions.values().map(|f| f.num_insts()).sum()
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, RegClass};

    fn leaf(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 7);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn add_and_find() {
        let mut p = Program::new();
        let a = p.add_function(leaf("a"));
        let b = p.add_function(leaf("b"));
        assert_eq!(p.num_functions(), 2);
        assert_eq!(p.find("a"), Some(a));
        assert_eq!(p.find("b"), Some(b));
        assert_eq!(p.find("zzz"), None);
    }

    #[test]
    fn main_selection() {
        let mut p = Program::new();
        let a = p.add_function(leaf("a"));
        assert_eq!(p.main(), None);
        p.set_main(a);
        assert_eq!(p.main(), Some(a));
    }

    #[test]
    #[should_panic(expected = "unknown function")]
    fn set_main_validates() {
        let mut p = Program::new();
        p.set_main(FuncId(3));
    }

    #[test]
    fn function_ids_are_dense_and_in_insertion_order() {
        let mut p = Program::new();
        let names = ["c", "a", "b", "z"];
        let ids: Vec<FuncId> = names.iter().map(|n| p.add_function(leaf(n))).collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i, "ids are dense, in insertion order");
        }
        let iterated: Vec<(FuncId, &str)> = p.functions().map(|(id, f)| (id, f.name())).collect();
        assert_eq!(
            iterated,
            ids.iter().copied().zip(names).collect::<Vec<_>>(),
            "iteration follows insertion order, not name order"
        );
        assert_eq!(p.func_ids().collect::<Vec<_>>(), ids);
    }

    #[test]
    fn call_edges_found() {
        let mut p = Program::new();
        let callee = p.add_function(leaf("callee"));
        let mut b = FunctionBuilder::new("caller");
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::Internal(callee), vec![], Some(r));
        b.call(Callee::External("ext"), vec![], None);
        b.ret(Some(r));
        let caller = p.add_function(b.finish());
        let edges = p.call_edges();
        assert_eq!(edges, vec![(caller, callee)]);
    }
}
