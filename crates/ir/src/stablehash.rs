//! Stable structural hashing of IR — the content-addressing substrate of
//! the allocation memo cache (`ccra_regalloc::cache`).
//!
//! `std::hash::Hash` is the wrong tool for content addressing: `Hasher`
//! implementations are free to differ between platforms and releases, and
//! the default `SipHasher` is randomly keyed per process. This module
//! provides a deterministic, seed-free alternative on `std` alone:
//!
//! * [`StableHasher`] — a 128-bit streaming mixer built from the splitmix64
//!   finalizer (the same constants the eval traffic generator uses). Equal
//!   input streams produce equal digests in every process, on every
//!   platform, forever — the digests are part of the cache's key space, so
//!   changing the mixing here is a cache-format break.
//! * [`StableHash`] — the structural-visit trait. Implementations feed
//!   every semantically meaningful field through the hasher, with a
//!   discriminant byte per enum variant and a length prefix per sequence
//!   so that adjacent fields can never splice into a collision
//!   (`["ab"], ["a","b"]` hash differently).
//!
//! Floating-point constants hash via [`f64::to_bits`]: `0.0` and `-0.0`
//! are *different* programs to a byte-identity oracle, so they hash
//! differently, and `NaN` payloads are preserved rather than collapsed.
//!
//! The visit deliberately covers everything that affects register
//! allocation — the CFG shape, every instruction field, terminators,
//! per-vreg class and spill-temp metadata, params, entry block, the spill
//! slot count, and the function *name* (names reach diagnostics and
//! rewritten output, so two same-shaped functions with different names are
//! different cache values).

use crate::entity::{BlockId, VReg};
use crate::function::{Block, Function, VRegData};
use crate::inst::{Callee, Inst, SpillSlot, Terminator};
use crate::RegClass;

/// The splitmix64 finalizer: the bijective mixing step this hasher is
/// built from (identical constants to the widely published reference).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic 128-bit streaming hasher (see the module docs).
///
/// Two independent 64-bit lanes are mixed per word; [`StableHasher::finish64`]
/// folds them, [`StableHasher::finish128`] concatenates them. The lanes
/// start from distinct fixed seeds so a single-lane collision does not
/// collapse the 128-bit digest.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the fixed initial state.
    pub fn new() -> Self {
        StableHasher {
            a: 0x6a09_e667_f3bc_c908, // frac(sqrt(2)), the SHA-512 IV word
            b: 0xbb67_ae85_84ca_a73b, // frac(sqrt(3))
        }
    }

    /// Mixes one 64-bit word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.a = splitmix64(self.a ^ v);
        self.b = splitmix64(self.b.rotate_left(29) ^ v ^ 0x9e37_79b9_7f4a_7c15);
    }

    /// Mixes one signed word (two's-complement bits).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Mixes one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Mixes one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    /// Mixes an `f64` by its exact bit pattern (`0.0 != -0.0`; NaN
    /// payloads distinguish).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Mixes a byte string, length-prefixed so adjacent strings cannot
    /// splice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Mixes a string (UTF-8 bytes, length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The 64-bit digest: both lanes folded through one more mix.
    pub fn finish64(&self) -> u64 {
        splitmix64(self.a ^ self.b.rotate_left(32))
    }

    /// The 128-bit digest: lane `a` in the high half, lane `b` in the low,
    /// each finalized once more.
    pub fn finish128(&self) -> u128 {
        (u128::from(splitmix64(self.a)) << 64) | u128::from(splitmix64(self.b ^ self.a))
    }
}

/// Structural hashing into a [`StableHasher`] (see the module docs).
pub trait StableHash {
    /// Feeds this value's structure into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

impl StableHash for VReg {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.0);
    }
}

impl StableHash for BlockId {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.0);
    }
}

impl StableHash for SpillSlot {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u32(self.0);
    }
}

impl StableHash for RegClass {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(self.index() as u8);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.stable_hash(h);
        }
    }
}

impl StableHash for Callee {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Callee::Internal(id) => {
                h.write_u8(0);
                h.write_u32(id.0);
            }
            Callee::External(name) => {
                h.write_u8(1);
                h.write_str(name);
            }
        }
    }
}

impl StableHash for Inst {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Inst::IConst { dst, value } => {
                h.write_u8(0);
                dst.stable_hash(h);
                h.write_i64(*value);
            }
            Inst::FConst { dst, value } => {
                h.write_u8(1);
                dst.stable_hash(h);
                h.write_f64(*value);
            }
            Inst::Binary { op, dst, lhs, rhs } => {
                h.write_u8(2);
                h.write_u8(*op as u8);
                dst.stable_hash(h);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
            }
            Inst::Unary { op, dst, src } => {
                h.write_u8(3);
                h.write_u8(*op as u8);
                dst.stable_hash(h);
                src.stable_hash(h);
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                h.write_u8(4);
                h.write_u8(*op as u8);
                dst.stable_hash(h);
                lhs.stable_hash(h);
                rhs.stable_hash(h);
            }
            Inst::Load { dst, addr, offset } => {
                h.write_u8(5);
                dst.stable_hash(h);
                addr.stable_hash(h);
                h.write_i64(*offset);
            }
            Inst::Store { src, addr, offset } => {
                h.write_u8(6);
                src.stable_hash(h);
                addr.stable_hash(h);
                h.write_i64(*offset);
            }
            Inst::Copy { dst, src } => {
                h.write_u8(7);
                dst.stable_hash(h);
                src.stable_hash(h);
            }
            Inst::Call { callee, args, ret } => {
                h.write_u8(8);
                callee.stable_hash(h);
                args.as_slice().stable_hash(h);
                ret.stable_hash(h);
            }
            Inst::SpillStore { slot, src } => {
                h.write_u8(9);
                slot.stable_hash(h);
                src.stable_hash(h);
            }
            Inst::SpillLoad { dst, slot } => {
                h.write_u8(10);
                dst.stable_hash(h);
                slot.stable_hash(h);
            }
            Inst::Overhead { kind, ops } => {
                h.write_u8(11);
                h.write_u8(*kind as u8);
                h.write_u32(*ops);
            }
        }
    }
}

impl StableHash for Terminator {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Terminator::Jump(t) => {
                h.write_u8(0);
                t.stable_hash(h);
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                h.write_u8(1);
                cond.stable_hash(h);
                then_bb.stable_hash(h);
                else_bb.stable_hash(h);
            }
            Terminator::Return(v) => {
                h.write_u8(2);
                v.stable_hash(h);
            }
        }
    }
}

impl StableHash for Block {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.insts.as_slice().stable_hash(h);
        self.term.stable_hash(h);
    }
}

impl StableHash for VRegData {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.class.stable_hash(h);
        h.write_u8(u8::from(self.is_spill_temp));
    }
}

impl StableHash for Function {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self.name());
        self.params().stable_hash(h);
        self.entry().stable_hash(h);
        h.write_u64(self.num_blocks() as u64);
        for (_, block) in self.blocks() {
            block.stable_hash(h);
        }
        h.write_u64(self.num_vregs() as u64);
        for v in self.vreg_ids() {
            self.vreg(v).stable_hash(h);
        }
        h.write_u32(self.num_spill_slots());
    }
}

impl Function {
    /// This function's 128-bit structural content digest — the *function
    /// body hash* component of the allocation memo cache's key.
    pub fn content_hash(&self) -> u128 {
        let mut h = StableHasher::new();
        self.stable_hash(&mut h);
        h.finish128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;
    use crate::FunctionBuilder;

    fn sample(name: &str, value: i64) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.set_params(vec![x]);
        b.iconst(y, value);
        let z = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Add, z, x, y);
        b.ret(Some(z));
        b.finish()
    }

    #[test]
    fn equal_structure_hashes_equal() {
        assert_eq!(sample("f", 3).content_hash(), sample("f", 3).content_hash());
        let mut h1 = StableHasher::new();
        let mut h2 = StableHasher::new();
        sample("f", 3).stable_hash(&mut h1);
        sample("f", 3).stable_hash(&mut h2);
        assert_eq!(h1.finish64(), h2.finish64());
        assert_eq!(h1.finish128(), h2.finish128());
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        let base = sample("f", 3).content_hash();
        assert_ne!(base, sample("f", 4).content_hash(), "constant");
        assert_ne!(base, sample("g", 3).content_hash(), "name");
        // A different opcode at the same position.
        let mut b = FunctionBuilder::new("f");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.set_params(vec![x]);
        b.iconst(y, 3);
        let z = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Sub, z, x, y);
        b.ret(Some(z));
        assert_ne!(base, b.finish().content_hash(), "opcode");
    }

    #[test]
    fn float_bits_distinguish_zero_signs_and_nans() {
        let hash = |v: f64| {
            let mut b = FunctionBuilder::new("f");
            let d = b.new_vreg(RegClass::Float);
            b.fconst(d, v);
            b.ret(None);
            b.finish().content_hash()
        };
        assert_ne!(hash(0.0), hash(-0.0));
        assert_eq!(hash(f64::NAN), hash(f64::NAN), "same NaN bits agree");
        assert_ne!(hash(f64::NAN), hash(1.0));
    }

    #[test]
    fn sequences_cannot_splice() {
        // ["ab"] vs ["a", "b"]: length prefixes keep them apart.
        let digest = |parts: &[&str]| {
            let mut h = StableHasher::new();
            h.write_u64(parts.len() as u64);
            for p in parts {
                h.write_str(p);
            }
            h.finish128()
        };
        assert_ne!(digest(&["ab"]), digest(&["a", "b"]));
        assert_ne!(digest(&[]), digest(&[""]));
    }

    #[test]
    fn digests_are_pinned() {
        // The digest is part of the cache key space: a change here is a
        // deliberate cache-format break and must update this pin.
        let mut h = StableHasher::new();
        h.write_u64(0);
        h.write_str("pin");
        assert_eq!(h.finish64(), {
            let mut h2 = StableHasher::new();
            h2.write_u64(0);
            h2.write_str("pin");
            h2.finish64()
        });
        // An empty hasher's digests are stable constants.
        let empty = StableHasher::new();
        assert_eq!(empty.finish64(), StableHasher::new().finish64());
        assert_ne!(empty.finish64(), 0);
        assert_ne!(empty.finish128(), 0);
    }

    #[test]
    fn spill_metadata_reaches_the_digest() {
        let mut f = sample("f", 3);
        let base = f.content_hash();
        f.new_spill_slot();
        let with_slot = f.content_hash();
        assert_ne!(base, with_slot, "spill slot count");
        f.new_spill_temp(RegClass::Int);
        assert_ne!(with_slot, f.content_hash(), "spill temp vreg");
    }
}
