//! IR well-formedness checking.
//!
//! The verifier enforces the structural invariants every later phase relies
//! on: in-range ids, class-correct operands, and sane control flow. Running
//! it after construction and after every rewriting phase turns silent
//! miscompiles into loud errors.

use crate::entity::{BlockId, VReg};
use crate::function::Function;
use crate::inst::{Callee, Inst, Terminator};
use crate::program::Program;
use crate::RegClass;

/// An IR well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block id referenced by a terminator does not exist.
    UnknownBlock {
        /// The function name.
        func: String,
        /// The offending target.
        target: BlockId,
    },
    /// A virtual register referenced by an instruction does not exist.
    UnknownVReg {
        /// The function name.
        func: String,
        /// The offending register.
        vreg: VReg,
    },
    /// An operand has the wrong register class.
    ClassMismatch {
        /// The function name.
        func: String,
        /// The offending register.
        vreg: VReg,
        /// The class the context requires.
        expected: RegClass,
        /// The class the register actually has.
        actual: RegClass,
    },
    /// An internal call targets a function id not present in the program.
    UnknownCallee {
        /// The calling function's name.
        func: String,
        /// The missing callee id.
        callee: crate::FuncId,
    },
    /// A spill instruction references a slot the function never created.
    UnknownSlot {
        /// The function name.
        func: String,
        /// The missing slot.
        slot: crate::SpillSlot,
    },
    /// A program has no `main` set.
    NoMain,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownBlock { func, target } => {
                write!(
                    f,
                    "function `{func}`: terminator targets unknown block {target}"
                )
            }
            VerifyError::UnknownVReg { func, vreg } => {
                write!(f, "function `{func}`: reference to unknown vreg {vreg}")
            }
            VerifyError::ClassMismatch {
                func,
                vreg,
                expected,
                actual,
            } => write!(
                f,
                "function `{func}`: {vreg} has class {actual} where {expected} is required"
            ),
            VerifyError::UnknownCallee { func, callee } => {
                write!(f, "function `{func}`: call to unknown function {callee}")
            }
            VerifyError::UnknownSlot { func, slot } => {
                write!(
                    f,
                    "function `{func}`: reference to unknown spill slot {slot}"
                )
            }
            VerifyError::NoMain => write!(f, "program has no main function"),
        }
    }
}

impl std::error::Error for VerifyError {}

struct Checker<'a> {
    f: &'a Function,
    num_funcs: Option<usize>,
}

impl<'a> Checker<'a> {
    fn vreg(&self, v: VReg) -> Result<RegClass, VerifyError> {
        if v.index() < self.f.num_vregs() {
            Ok(self.f.class_of(v))
        } else {
            Err(VerifyError::UnknownVReg {
                func: self.f.name().to_string(),
                vreg: v,
            })
        }
    }

    fn expect_class(&self, v: VReg, expected: RegClass) -> Result<(), VerifyError> {
        let actual = self.vreg(v)?;
        if actual == expected {
            Ok(())
        } else {
            Err(VerifyError::ClassMismatch {
                func: self.f.name().to_string(),
                vreg: v,
                expected,
                actual,
            })
        }
    }

    fn slot(&self, s: crate::SpillSlot) -> Result<(), VerifyError> {
        if s.index() < self.f.num_spill_slots() as usize {
            Ok(())
        } else {
            Err(VerifyError::UnknownSlot {
                func: self.f.name().to_string(),
                slot: s,
            })
        }
    }

    fn block(&self, b: BlockId) -> Result<(), VerifyError> {
        if b.index() < self.f.num_blocks() {
            Ok(())
        } else {
            Err(VerifyError::UnknownBlock {
                func: self.f.name().to_string(),
                target: b,
            })
        }
    }

    fn check_inst(&self, inst: &Inst) -> Result<(), VerifyError> {
        match inst {
            Inst::IConst { dst, .. } => self.expect_class(*dst, RegClass::Int),
            Inst::FConst { dst, .. } => self.expect_class(*dst, RegClass::Float),
            Inst::Binary { op, dst, lhs, rhs } => {
                let class = if op.is_float() {
                    RegClass::Float
                } else {
                    RegClass::Int
                };
                self.expect_class(*dst, class)?;
                self.expect_class(*lhs, class)?;
                self.expect_class(*rhs, class)
            }
            Inst::Unary { op, dst, src } => {
                self.expect_class(*dst, op.result_class())?;
                self.expect_class(*src, op.operand_class())
            }
            Inst::Cmp { dst, lhs, rhs, .. } => {
                self.expect_class(*dst, RegClass::Int)?;
                self.expect_class(*lhs, RegClass::Int)?;
                self.expect_class(*rhs, RegClass::Int)
            }
            Inst::Load { dst, addr, .. } => {
                self.vreg(*dst)?;
                self.expect_class(*addr, RegClass::Int)
            }
            Inst::Store { src, addr, .. } => {
                self.vreg(*src)?;
                self.expect_class(*addr, RegClass::Int)
            }
            Inst::Copy { dst, src } => {
                let dc = self.vreg(*dst)?;
                self.expect_class(*src, dc)
            }
            Inst::Call { callee, args, ret } => {
                for a in args {
                    self.vreg(*a)?;
                }
                if let Some(r) = ret {
                    self.vreg(*r)?;
                }
                if let (Callee::Internal(id), Some(n)) = (callee, self.num_funcs) {
                    if id.index() >= n {
                        return Err(VerifyError::UnknownCallee {
                            func: self.f.name().to_string(),
                            callee: *id,
                        });
                    }
                }
                Ok(())
            }
            Inst::SpillStore { slot, src } => {
                self.vreg(*src)?;
                self.slot(*slot)
            }
            Inst::SpillLoad { dst, slot } => {
                self.vreg(*dst)?;
                self.slot(*slot)
            }
            Inst::Overhead { .. } => Ok(()),
        }
    }

    fn check_term(&self, term: &Terminator) -> Result<(), VerifyError> {
        match term {
            Terminator::Jump(t) => self.block(*t),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                self.expect_class(*cond, RegClass::Int)?;
                self.block(*then_bb)?;
                self.block(*else_bb)
            }
            Terminator::Return(v) => {
                if let Some(v) = v {
                    self.vreg(*v)?;
                }
                Ok(())
            }
        }
    }

    fn run(&self) -> Result<(), VerifyError> {
        for p in self.f.params() {
            self.vreg(*p)?;
        }
        for (_, block) in self.f.blocks() {
            for inst in &block.insts {
                self.check_inst(inst)?;
            }
            self.check_term(&block.term)?;
        }
        Ok(())
    }
}

/// Verifies a single function in isolation (internal call targets are not
/// resolvable and are skipped).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    Checker { f, num_funcs: None }.run()
}

/// Verifies every function of a program, including internal call targets
/// and the presence of a `main`.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    if p.main().is_none() {
        return Err(VerifyError::NoMain);
    }
    let n = p.num_functions();
    for (_, f) in p.functions() {
        Checker {
            f,
            num_funcs: Some(n),
        }
        .run()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, FunctionBuilder, Program};

    #[test]
    fn good_function_verifies() {
        let mut b = FunctionBuilder::new("ok");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Float);
        b.iconst(x, 1);
        b.unary(crate::UnOp::IntToFloat, y, x);
        b.ret(Some(x));
        assert!(verify_function(&b.finish()).is_ok());
    }

    #[test]
    fn class_mismatch_detected() {
        let mut b = FunctionBuilder::new("bad");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Float);
        b.binary(BinOp::Add, x, x, y); // float operand to int add
        b.ret(None);
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(matches!(err, VerifyError::ClassMismatch { .. }));
        assert!(err.to_string().contains("class"));
    }

    #[test]
    fn copy_requires_same_class() {
        let mut b = FunctionBuilder::new("badcopy");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Float);
        b.copy(x, y);
        b.ret(None);
        assert!(matches!(
            verify_function(&b.finish()),
            Err(VerifyError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn unknown_callee_detected() {
        let mut p = Program::new();
        let mut b = FunctionBuilder::new("m");
        b.call(Callee::Internal(crate::FuncId(42)), vec![], None);
        b.ret(None);
        let id = p.add_function(b.finish());
        p.set_main(id);
        assert!(matches!(p.verify(), Err(VerifyError::UnknownCallee { .. })));
    }

    #[test]
    fn no_main_detected() {
        let p = Program::new();
        assert_eq!(verify_program(&p), Err(VerifyError::NoMain));
    }

    #[test]
    fn branch_cond_must_be_int() {
        let mut b = FunctionBuilder::new("badbr");
        let c = b.new_vreg(RegClass::Float);
        b.fconst(c, 1.0);
        let t = b.reserve_block();
        let e = b.reserve_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        assert!(matches!(
            verify_function(&b.finish()),
            Err(VerifyError::ClassMismatch { .. })
        ));
    }
}
