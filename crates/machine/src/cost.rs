//! Overhead-operation and cycle cost weights.

/// The overhead-operation weights of the paper's cost model (Section 3).
///
/// The register-allocation cost of a function is the weighted number of
/// *overhead operations* — operations a perfect allocator with unbounded
/// registers would not execute:
///
/// * **spill** — a load before each use and a store after each def of a live
///   range kept in memory;
/// * **caller-save** — a store before and a load after every call a live
///   range in a caller-save register spans;
/// * **callee-save** — a store at entry and a load at exit of every function
///   that uses a callee-save register;
/// * **shuffle** — a move between the different locations assigned to
///   copy-related live ranges.
///
/// All weights default to the operation counts the paper uses (each memory
/// touch is one overhead operation; a save/restore *pair* is two).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Overhead operations per executed spill load or store.
    pub spill_ref_ops: f64,
    /// Overhead operations per call crossed by a caller-save live range
    /// (one save + one restore).
    pub caller_save_pair_ops: f64,
    /// Overhead operations per function invocation per callee-save register
    /// used (one save at entry + one restore at exit).
    pub callee_save_pair_ops: f64,
    /// Overhead operations per executed shuffle move.
    pub shuffle_move_ops: f64,
}

impl CostModel {
    /// The paper's cost model: 1 op per memory touch, 2 per save/restore
    /// pair, 1 per move.
    pub fn paper() -> Self {
        CostModel {
            spill_ref_ops: 1.0,
            caller_save_pair_ops: 2.0,
            callee_save_pair_ops: 2.0,
            shuffle_move_ops: 1.0,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

/// The simple cycle model used to reproduce the execution-time experiment
/// (Table 4).
///
/// The paper measured wall-clock time on a DECstation 5000; we model a
/// single-issue in-order RISC where every useful instruction costs one cycle
/// and every overhead operation that touches memory costs
/// [`CycleModel::memory_op_cycles`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Cycles per executed (non-overhead) instruction.
    pub inst_cycles: f64,
    /// Cycles per overhead operation that touches memory (spill,
    /// caller-save, callee-save).
    pub memory_op_cycles: f64,
    /// Cycles per register-register shuffle move.
    pub move_cycles: f64,
}

impl CycleModel {
    /// A DECstation-like model: 1 cycle per instruction, 2 per memory
    /// overhead operation, 1 per move.
    pub fn decstation() -> Self {
        CycleModel {
            inst_cycles: 1.0,
            memory_op_cycles: 2.0,
            move_cycles: 1.0,
        }
    }

    /// Total simulated cycles for a run that executed `insts` useful
    /// instructions, `memory_ops` memory-touching overhead operations, and
    /// `moves` shuffle moves.
    pub fn cycles(&self, insts: f64, memory_ops: f64, moves: f64) -> f64 {
        insts * self.inst_cycles + memory_ops * self.memory_op_cycles + moves * self.move_cycles
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::decstation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights() {
        let m = CostModel::paper();
        assert_eq!(m.spill_ref_ops, 1.0);
        assert_eq!(m.caller_save_pair_ops, 2.0);
        assert_eq!(m.callee_save_pair_ops, 2.0);
        assert_eq!(m.shuffle_move_ops, 1.0);
        assert_eq!(CostModel::default(), m);
    }

    #[test]
    fn cycle_totals() {
        let c = CycleModel::decstation();
        assert_eq!(c.cycles(100.0, 10.0, 5.0), 100.0 + 20.0 + 5.0);
        assert_eq!(CycleModel::default(), c);
    }
}
