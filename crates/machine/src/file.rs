//! Register-file combinations `(Ri, Rf, Ei, Ef)` and the paper's sweeps.

use crate::reg::{PhysReg, SaveKind};
use ccra_ir::RegClass;
use std::fmt;

/// One register combination: how many caller-save and callee-save registers
/// each bank offers to the allocator.
///
/// Written `(Ri, Rf, Ei, Ef)` as in the paper: `Ri`/`Rf` caller-save
/// integer/float registers, `Ei`/`Ef` callee-save integer/float registers.
///
/// The MIPS calling convention dedicates 4 integer argument registers and 2
/// integer return-value registers, plus 2 + 2 floating-point ones — all
/// caller-save — so every sensible combination has `Ri >= 6` and `Rf >= 4`
/// ([`RegisterFile::minimum`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegisterFile {
    caller_int: u8,
    caller_float: u8,
    callee_int: u8,
    callee_float: u8,
}

impl RegisterFile {
    /// Maximum caller-save integer registers on the modelled MIPS (the full
    /// machine has 26 allocatable integer registers).
    pub const MAX_CALLER_INT: u8 = 17;
    /// Maximum caller-save float registers (16 allocatable in total).
    pub const MAX_CALLER_FLOAT: u8 = 10;
    /// Maximum callee-save integer registers (`$s0..$s8`).
    pub const MAX_CALLEE_INT: u8 = 9;
    /// Maximum callee-save float registers (`$f20..$f30`, even pairs).
    pub const MAX_CALLEE_FLOAT: u8 = 6;

    /// Creates a register combination `(Ri, Rf, Ei, Ef)`.
    ///
    /// # Panics
    ///
    /// Panics if the combination is below the calling-convention minimum
    /// `(6,4,0,0)` — the argument/return registers always exist and are
    /// caller-save.
    pub fn new(caller_int: u8, caller_float: u8, callee_int: u8, callee_float: u8) -> Self {
        assert!(
            caller_int >= 6 && caller_float >= 4,
            "register combination ({caller_int},{caller_float},{callee_int},{callee_float}) \
             is below the MIPS calling-convention minimum (6,4,0,0)"
        );
        RegisterFile {
            caller_int,
            caller_float,
            callee_int,
            callee_float,
        }
    }

    /// The calling-convention minimum `(6,4,0,0)`: only the argument and
    /// return registers are allocatable.
    pub fn minimum() -> Self {
        RegisterFile::new(6, 4, 0, 0)
    }

    /// The full modelled MIPS machine: 26 integer (17 caller + 9 callee) and
    /// 16 floating-point (10 caller + 6 callee) registers, as used for the
    /// execution-time experiment (Table 4: "all registers (26 int, 16
    /// float)").
    pub fn mips_full() -> Self {
        RegisterFile::new(
            Self::MAX_CALLER_INT,
            Self::MAX_CALLER_FLOAT,
            Self::MAX_CALLEE_INT,
            Self::MAX_CALLEE_FLOAT,
        )
    }

    /// The number of registers of the given bank and save kind.
    pub fn count(&self, class: RegClass, kind: SaveKind) -> usize {
        (match (class, kind) {
            (RegClass::Int, SaveKind::CallerSave) => self.caller_int,
            (RegClass::Int, SaveKind::CalleeSave) => self.callee_int,
            (RegClass::Float, SaveKind::CallerSave) => self.caller_float,
            (RegClass::Float, SaveKind::CalleeSave) => self.callee_float,
        }) as usize
    }

    /// The total number of registers in a bank — the `N` of graph coloring
    /// for live ranges of that class.
    pub fn bank_size(&self, class: RegClass) -> usize {
        self.count(class, SaveKind::CallerSave) + self.count(class, SaveKind::CalleeSave)
    }

    /// All registers of a bank, caller-save first.
    pub fn regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        self.regs_of(class, SaveKind::CallerSave)
            .chain(self.regs_of(class, SaveKind::CalleeSave))
    }

    /// The registers of a bank with the given save kind.
    pub fn regs_of(&self, class: RegClass, kind: SaveKind) -> impl Iterator<Item = PhysReg> + '_ {
        (0..self.count(class, kind) as u8).map(move |i| PhysReg::new(class, kind, i))
    }

    /// Dense index of `reg` within its bank (caller-save first), for array
    /// addressing.
    pub fn dense_index(&self, reg: PhysReg) -> usize {
        reg.dense_index(self.count(reg.class, SaveKind::CallerSave) as u8)
    }

    /// The register combination sequence used as the x-axis of the paper's
    /// figures: start at the calling-convention minimum, then
    ///
    /// 1. grow all four groups in lock step — `(7,5,1,1)` … `(10,8,4,4)`;
    /// 2. grow the callee-save groups to their maxima;
    /// 3. grow the caller-save groups to the full machine.
    ///
    /// This yields a monotone 17-point sweep from `(6,4,0,0)` to the full
    /// `(17,10,9,6)` machine, matching the shape (register pressure relief
    /// first, then callee-save abundance, then caller-save abundance) of the
    /// paper's x-axes.
    pub fn paper_sweep() -> Vec<RegisterFile> {
        let mut sweep = vec![RegisterFile::minimum()];
        let mut cur = RegisterFile::minimum();
        // Phase 1: lock-step growth.
        for _ in 0..4 {
            cur = RegisterFile::new(
                cur.caller_int + 1,
                cur.caller_float + 1,
                cur.callee_int + 1,
                cur.callee_float + 1,
            );
            sweep.push(cur);
        }
        // Phase 2: callee-save growth to maxima.
        while cur.callee_int < Self::MAX_CALLEE_INT || cur.callee_float < Self::MAX_CALLEE_FLOAT {
            cur = RegisterFile::new(
                cur.caller_int,
                cur.caller_float,
                (cur.callee_int + 1).min(Self::MAX_CALLEE_INT),
                (cur.callee_float + 1).min(Self::MAX_CALLEE_FLOAT),
            );
            sweep.push(cur);
        }
        // Phase 3: caller-save growth to the full machine.
        while cur.caller_int < Self::MAX_CALLER_INT || cur.caller_float < Self::MAX_CALLER_FLOAT {
            cur = RegisterFile::new(
                (cur.caller_int + 1).min(Self::MAX_CALLER_INT),
                (cur.caller_float + 1).min(Self::MAX_CALLER_FLOAT),
                cur.callee_int,
                cur.callee_float,
            );
            sweep.push(cur);
        }
        sweep
    }

    /// A short 5-point sweep for quick tests and examples.
    pub fn short_sweep() -> Vec<RegisterFile> {
        vec![
            RegisterFile::new(6, 4, 0, 0),
            RegisterFile::new(8, 6, 2, 2),
            RegisterFile::new(10, 8, 4, 4),
            RegisterFile::new(10, 8, 9, 6),
            RegisterFile::mips_full(),
        ]
    }

    /// The four components `(Ri, Rf, Ei, Ef)`.
    pub fn components(&self) -> (u8, u8, u8, u8) {
        (
            self.caller_int,
            self.caller_float,
            self.callee_int,
            self.callee_float,
        )
    }
}

impl fmt::Display for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{})",
            self.caller_int, self.caller_float, self.callee_int, self.callee_float
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_bank_sizes() {
        let f = RegisterFile::new(9, 7, 3, 3);
        assert_eq!(f.count(RegClass::Int, SaveKind::CallerSave), 9);
        assert_eq!(f.count(RegClass::Int, SaveKind::CalleeSave), 3);
        assert_eq!(f.count(RegClass::Float, SaveKind::CallerSave), 7);
        assert_eq!(f.count(RegClass::Float, SaveKind::CalleeSave), 3);
        assert_eq!(f.bank_size(RegClass::Int), 12);
        assert_eq!(f.bank_size(RegClass::Float), 10);
    }

    #[test]
    fn full_machine_is_26_int_16_float() {
        let f = RegisterFile::mips_full();
        assert_eq!(f.bank_size(RegClass::Int), 26);
        assert_eq!(f.bank_size(RegClass::Float), 16);
    }

    #[test]
    #[should_panic(expected = "below the MIPS calling-convention minimum")]
    fn below_minimum_rejected() {
        let _ = RegisterFile::new(5, 4, 0, 0);
    }

    #[test]
    fn regs_iterates_caller_first() {
        let f = RegisterFile::new(6, 4, 2, 1);
        let int_regs: Vec<PhysReg> = f.regs(RegClass::Int).collect();
        assert_eq!(int_regs.len(), 8);
        assert_eq!(
            int_regs[0],
            PhysReg::new(RegClass::Int, SaveKind::CallerSave, 0)
        );
        assert_eq!(
            int_regs[6],
            PhysReg::new(RegClass::Int, SaveKind::CalleeSave, 0)
        );
        let dense: Vec<usize> = int_regs.iter().map(|&r| f.dense_index(r)).collect();
        assert_eq!(dense, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn paper_sweep_shape() {
        let sweep = RegisterFile::paper_sweep();
        assert_eq!(sweep[0], RegisterFile::minimum());
        assert_eq!(*sweep.last().unwrap(), RegisterFile::mips_full());
        // Monotone in every component.
        for w in sweep.windows(2) {
            let (a, b) = (w[0].components(), w[1].components());
            assert!(
                b.0 >= a.0 && b.1 >= a.1 && b.2 >= a.2 && b.3 >= a.3,
                "{a:?} -> {b:?}"
            );
            assert_ne!(a, b);
        }
        // The lock-step prefix the paper quotes explicitly.
        assert!(sweep.contains(&RegisterFile::new(9, 7, 3, 3)));
        assert!(sweep.contains(&RegisterFile::new(10, 8, 4, 4)));
        assert_eq!(sweep.len(), 17);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(RegisterFile::new(10, 8, 4, 4).to_string(), "(10,8,4,4)");
    }

    #[test]
    fn short_sweep_is_monotone_subset() {
        let sweep = RegisterFile::short_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].bank_size(RegClass::Int) >= w[0].bank_size(RegClass::Int));
        }
    }
}
