//! The target machine model: a MIPS-like RISC with two register banks.
//!
//! The paper's measurements are parameterised over *register combinations*
//! `(Ri, Rf, Ei, Ef)` — the number of caller-save integer, caller-save
//! floating-point, callee-save integer, and callee-save floating-point
//! registers (Section 3.2, Figure 2). This crate provides:
//!
//! * [`RegisterFile`] — one such combination, plus the paper's fixed points
//!   ([`RegisterFile::minimum`] `(6,4,0,0)` and [`RegisterFile::mips_full`]
//!   with 26 integer / 16 floating-point registers);
//! * [`RegisterFile::paper_sweep`] — the monotone sequence of combinations
//!   used as the x-axis of the paper's figures;
//! * [`PhysReg`] / [`SaveKind`] — physical registers tagged with their
//!   storage class;
//! * [`CostModel`] — the overhead-operation weights of Section 3 and the
//!   cycle weights used for the execution-time experiment (Table 4).
//!
//! # Example
//!
//! ```
//! use ccra_machine::{RegisterFile, SaveKind};
//! use ccra_ir::RegClass;
//!
//! let file = RegisterFile::new(9, 7, 3, 3);
//! assert_eq!(file.bank_size(RegClass::Int), 12);
//! assert_eq!(file.count(RegClass::Float, SaveKind::CalleeSave), 3);
//! assert_eq!(file.to_string(), "(9,7,3,3)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod file;
mod reg;

pub use cost::{CostModel, CycleModel};
pub use file::RegisterFile;
pub use reg::{PhysReg, SaveKind};
