//! Physical registers and their save discipline.

use ccra_ir::RegClass;
use std::fmt;

/// Who is responsible for preserving a register's value across a call.
///
/// This is the *storage class* distinction at the heart of the paper: a live
/// range in a caller-save register pays save/restore operations around every
/// call it spans; a live range in a callee-save register pays one
/// save/restore pair at the entry/exit of the function that uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SaveKind {
    /// The caller preserves the register (a.k.a. scratch / temporary).
    CallerSave,
    /// The callee preserves the register (a.k.a. saved).
    CalleeSave,
}

impl SaveKind {
    /// Both save kinds, in a fixed order.
    pub const ALL: [SaveKind; 2] = [SaveKind::CallerSave, SaveKind::CalleeSave];

    /// The other kind.
    pub fn other(self) -> SaveKind {
        match self {
            SaveKind::CallerSave => SaveKind::CalleeSave,
            SaveKind::CalleeSave => SaveKind::CallerSave,
        }
    }
}

impl fmt::Display for SaveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveKind::CallerSave => write!(f, "caller-save"),
            SaveKind::CalleeSave => write!(f, "callee-save"),
        }
    }
}

/// A physical register: a bank, a save discipline, and an index within that
/// `(bank, kind)` group.
///
/// Registers print MIPS-style: caller-save integer registers as `$t<n>`,
/// callee-save integer registers as `$s<n>`, and floating-point registers as
/// `$ft<n>` / `$fs<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg {
    /// The register bank.
    pub class: RegClass,
    /// Caller-save or callee-save.
    pub kind: SaveKind,
    /// Index within the `(class, kind)` group, starting at 0.
    pub index: u8,
}

impl PhysReg {
    /// Creates a physical register.
    pub fn new(class: RegClass, kind: SaveKind, index: u8) -> Self {
        PhysReg { class, kind, index }
    }

    /// A dense index usable as an array key, given the owning register file
    /// layout: caller-save registers first, then callee-save, per bank.
    pub fn dense_index(self, caller_count: u8) -> usize {
        match self.kind {
            SaveKind::CallerSave => self.index as usize,
            SaveKind::CalleeSave => caller_count as usize + self.index as usize,
        }
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match (self.class, self.kind) {
            (RegClass::Int, SaveKind::CallerSave) => "$t",
            (RegClass::Int, SaveKind::CalleeSave) => "$s",
            (RegClass::Float, SaveKind::CallerSave) => "$ft",
            (RegClass::Float, SaveKind::CalleeSave) => "$fs",
        };
        write!(f, "{prefix}{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_mips_flavoured() {
        assert_eq!(
            PhysReg::new(RegClass::Int, SaveKind::CallerSave, 3).to_string(),
            "$t3"
        );
        assert_eq!(
            PhysReg::new(RegClass::Int, SaveKind::CalleeSave, 0).to_string(),
            "$s0"
        );
        assert_eq!(
            PhysReg::new(RegClass::Float, SaveKind::CallerSave, 2).to_string(),
            "$ft2"
        );
        assert_eq!(
            PhysReg::new(RegClass::Float, SaveKind::CalleeSave, 5).to_string(),
            "$fs5"
        );
    }

    #[test]
    fn other_kind_flips() {
        assert_eq!(SaveKind::CallerSave.other(), SaveKind::CalleeSave);
        assert_eq!(SaveKind::CalleeSave.other(), SaveKind::CallerSave);
    }

    #[test]
    fn dense_index_layout() {
        let caller = PhysReg::new(RegClass::Int, SaveKind::CallerSave, 2);
        let callee = PhysReg::new(RegClass::Int, SaveKind::CalleeSave, 1);
        assert_eq!(caller.dense_index(6), 2);
        assert_eq!(callee.dense_index(6), 7);
    }

    #[test]
    fn ordering_groups_caller_before_callee() {
        let a = PhysReg::new(RegClass::Int, SaveKind::CallerSave, 9);
        let b = PhysReg::new(RegClass::Int, SaveKind::CalleeSave, 0);
        assert!(a < b);
    }
}
