//! Property tests for the register-file model.

use ccra_ir::RegClass;
use ccra_machine::{PhysReg, RegisterFile, SaveKind};
use proptest::prelude::*;

proptest! {
    /// Dense indices enumerate a bank without gaps or collisions.
    #[test]
    fn dense_index_is_a_bijection(
        ri in 6u8..=RegisterFile::MAX_CALLER_INT,
        rf in 4u8..=RegisterFile::MAX_CALLER_FLOAT,
        ei in 0u8..=RegisterFile::MAX_CALLEE_INT,
        ef in 0u8..=RegisterFile::MAX_CALLEE_FLOAT,
    ) {
        let file = RegisterFile::new(ri, rf, ei, ef);
        for class in RegClass::ALL {
            let regs: Vec<PhysReg> = file.regs(class).collect();
            prop_assert_eq!(regs.len(), file.bank_size(class));
            let mut seen = vec![false; regs.len()];
            for r in regs {
                let d = file.dense_index(r);
                prop_assert!(d < seen.len());
                prop_assert!(!seen[d], "dense index collision at {}", d);
                seen[d] = true;
            }
        }
    }

    /// Counts always decompose the bank size.
    #[test]
    fn counts_decompose_bank(
        ri in 6u8..=RegisterFile::MAX_CALLER_INT,
        rf in 4u8..=RegisterFile::MAX_CALLER_FLOAT,
        ei in 0u8..=RegisterFile::MAX_CALLEE_INT,
        ef in 0u8..=RegisterFile::MAX_CALLEE_FLOAT,
    ) {
        let file = RegisterFile::new(ri, rf, ei, ef);
        for class in RegClass::ALL {
            prop_assert_eq!(
                file.bank_size(class),
                file.count(class, SaveKind::CallerSave) + file.count(class, SaveKind::CalleeSave)
            );
        }
    }

    /// The display notation carries the exact components.
    #[test]
    fn display_roundtrips_components(
        ri in 6u8..=RegisterFile::MAX_CALLER_INT,
        rf in 4u8..=RegisterFile::MAX_CALLER_FLOAT,
        ei in 0u8..=RegisterFile::MAX_CALLEE_INT,
        ef in 0u8..=RegisterFile::MAX_CALLEE_FLOAT,
    ) {
        let file = RegisterFile::new(ri, rf, ei, ef);
        prop_assert_eq!(file.to_string(), format!("({ri},{rf},{ei},{ef})"));
        prop_assert_eq!(file.components(), (ri, rf, ei, ef));
    }
}

#[test]
fn paper_sweep_never_shrinks_any_bank() {
    let sweep = RegisterFile::paper_sweep();
    for w in sweep.windows(2) {
        for class in RegClass::ALL {
            assert!(w[1].bank_size(class) >= w[0].bank_size(class));
            for kind in SaveKind::ALL {
                assert!(w[1].count(class, kind) >= w[0].count(class, kind));
            }
        }
    }
}

#[test]
fn sweep_registers_are_valid_members() {
    for file in RegisterFile::paper_sweep() {
        for class in RegClass::ALL {
            for reg in file.regs(class) {
                assert_eq!(reg.class, class);
                assert!((reg.index as usize) < file.count(class, reg.kind));
            }
        }
    }
}
