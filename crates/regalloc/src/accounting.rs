//! Overhead accounting: the register-allocation cost of Section 3.
//!
//! The analytic accounting walks the fully rewritten function (spill
//! instructions plus overhead markers) and weights each overhead event by
//! the execution frequency of its block. Under dynamic (profiled)
//! frequencies this matches what the interpreter *measures* exactly,
//! because neither spill-code nor marker insertion changes control flow.

use ccra_analysis::{FuncFreq, RunStats};
use ccra_ir::{Function, Inst, OverheadKind};

use crate::types::Overhead;

/// Computes the weighted overhead of a rewritten function.
pub fn weighted_overhead(f: &Function, freq: &FuncFreq) -> Overhead {
    let mut overhead = Overhead::zero();
    for (bb, block) in f.blocks() {
        let w = freq.block(bb);
        for inst in &block.insts {
            match inst {
                Inst::SpillLoad { .. } | Inst::SpillStore { .. } => overhead.spill += w,
                Inst::Overhead { kind, ops } => {
                    let ops = w * f64::from(*ops);
                    match kind {
                        OverheadKind::Spill => overhead.spill += ops,
                        OverheadKind::CallerSave => overhead.caller_save += ops,
                        OverheadKind::CalleeSave => overhead.callee_save += ops,
                        OverheadKind::Shuffle => overhead.shuffle += ops,
                    }
                }
                _ => {}
            }
        }
    }
    overhead
}

/// Converts the interpreter's measured overhead counters into an
/// [`Overhead`] (whole-program totals).
pub fn measured_overhead(stats: &RunStats) -> Overhead {
    Overhead {
        spill: stats.overhead(OverheadKind::Spill) as f64,
        caller_save: stats.overhead(OverheadKind::CallerSave) as f64,
        callee_save: stats.overhead(OverheadKind::CalleeSave) as f64,
        shuffle: stats.overhead(OverheadKind::Shuffle) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::{FrequencyInfo, InterpConfig};
    use ccra_ir::{FunctionBuilder, Program, RegClass};

    #[test]
    fn weighted_overhead_counts_markers_and_spills() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.ret(Some(x));
        let mut f = b.finish();
        let slot = f.new_spill_slot();
        let entry = f.entry();
        f.block_mut(entry).insts.insert(
            0,
            Inst::Overhead {
                kind: OverheadKind::CalleeSave,
                ops: 3,
            },
        );
        f.block_mut(entry)
            .insts
            .push(Inst::SpillStore { slot, src: x });
        f.block_mut(entry).insts.push(Inst::Overhead {
            kind: OverheadKind::Shuffle,
            ops: 1,
        });

        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let overhead = weighted_overhead(p.function(id), freq.func(id));
        assert_eq!(overhead.callee_save, 3.0);
        assert_eq!(overhead.spill, 1.0);
        assert_eq!(overhead.shuffle, 1.0);
        assert_eq!(overhead.total(), 5.0);

        // Measured == analytic for a profile of the same run.
        let stats = ccra_analysis::run(&p, &InterpConfig::default()).expect("program runs");
        let measured = measured_overhead(&stats);
        assert_eq!(measured, overhead);
    }
}
