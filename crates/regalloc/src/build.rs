//! Graph construction and live-range coalescing (the first two phases of
//! the register-allocation framework, Figure 1 of the paper).

use std::collections::{HashMap, HashSet};

use ccra_analysis::{FuncFreq, Liveness, WebId, Webs};
use ccra_ir::{BlockId, Function, Inst, RegClass, VReg};
use ccra_machine::CostModel;

use crate::error::AllocError;
use crate::graph::InterferenceGraph;
use crate::node::{CallSite, NodeInfo, SPILL_TEMP_COST};

/// Everything one allocation pass needs about a function: coalesced nodes,
/// their interference graph, and the call sites.
#[derive(Debug, Clone)]
pub struct FuncContext {
    /// The allocation nodes (coalesced live ranges).
    pub nodes: Vec<NodeInfo>,
    /// Interference between nodes; only same-bank nodes ever interfere.
    pub graph: InterferenceGraph,
    /// The call sites of the function, with frequencies.
    pub callsites: Vec<CallSite>,
    /// How many times the function is invoked (the callee-save cost basis).
    pub entry_freq: f64,
    /// Map from web to its node.
    pub web_node: HashMap<WebId, u32>,
    /// The webs of the current function body (for operand → node lookup).
    pub webs: Webs,
}

impl FuncContext {
    /// The node a web belongs to.
    pub fn node_of(&self, web: WebId) -> u32 {
        self.web_node[&web]
    }

    /// The node ids of the given bank.
    pub fn bank_nodes(&self, class: RegClass) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&n| self.nodes[n as usize].class == class)
            .collect()
    }

    /// The node defined by instruction `(bb, idx)` writing `v`, if any.
    pub fn def_node(&self, bb: BlockId, idx: u32, v: VReg) -> Option<u32> {
        self.webs.def_web(bb, idx, v).map(|w| self.web_node[&w])
    }

    /// The node read by instruction `(bb, idx)` through `v`, if any.
    pub fn use_node(&self, bb: BlockId, idx: u32, v: VReg) -> Option<u32> {
        self.webs.use_web(bb, idx, v).map(|w| self.web_node[&w])
    }
}

struct WebScan {
    graph: InterferenceGraph,
    calls_crossed: Vec<HashSet<u32>>,
    blocks_spanned: Vec<HashSet<BlockId>>,
    copies: Vec<(WebId, WebId)>,
    callsites: Vec<CallSite>,
}

/// Backward scan computing web-level interference, call crossings, block
/// spans, and copy pairs.
fn scan_webs(
    f: &Function,
    live: &Liveness,
    webs: &Webs,
    freq: &FuncFreq,
) -> Result<WebScan, AllocError> {
    let nw = webs.len();
    let mut graph = InterferenceGraph::new(nw);
    let mut calls_crossed: Vec<HashSet<u32>> = vec![HashSet::new(); nw];
    let mut blocks_spanned: Vec<HashSet<BlockId>> = vec![HashSet::new(); nw];
    let mut copies: Vec<(WebId, WebId)> = Vec::new();

    // Enumerate call sites in block/instruction order.
    let mut callsites = Vec::new();
    let mut site_index: HashMap<(BlockId, u32), u32> = HashMap::new();
    for (bb, idx) in f.call_sites() {
        site_index.insert((bb, idx as u32), callsites.len() as u32);
        callsites.push(CallSite {
            bb,
            idx: idx as u32,
            freq: freq.block(bb),
        });
    }

    // Last def index of each vreg per block, to resolve live-out webs.
    let mut last_def: HashMap<(BlockId, VReg), u32> = HashMap::new();
    for (bb, block) in f.blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                last_def.insert((bb, d), i as u32);
            }
        }
    }

    let mut uses_buf = Vec::new();
    for (bb, block) in f.blocks() {
        let mut live_webs: HashSet<WebId> = HashSet::new();
        for v_idx in live.live_out(bb).iter() {
            let v = VReg(v_idx as u32);
            let w = match last_def.get(&(bb, v)) {
                Some(&i) => webs.def_web(bb, i, v),
                None => webs.live_in_web(bb, v),
            };
            if let Some(w) = w {
                live_webs.insert(w);
            }
        }
        let mut touched: HashSet<WebId> = live_webs.clone();

        // Terminator use.
        if let Some(u) = block.term.use_reg() {
            if let Some(w) = webs.use_web(bb, block.insts.len() as u32, u) {
                live_webs.insert(w);
                touched.insert(w);
            }
        }

        for (i, inst) in block.insts.iter().enumerate().rev() {
            // The def interferes with everything live after it — except,
            // for a copy, the source web (the coalescing special case).
            if let Some(d) = inst.def() {
                let w = webs
                    .def_web(bb, i as u32, d)
                    .ok_or(AllocError::MissingDefWeb {
                        vreg: d,
                        block: bb,
                        idx: i as u32,
                    })?;
                let exclude = match inst {
                    Inst::Copy { src, .. } => webs.use_web(bb, i as u32, *src),
                    _ => None,
                };
                for &l in &live_webs {
                    if l != w && Some(l) != exclude {
                        graph.add_edge(w.0, l.0);
                    }
                }
                live_webs.remove(&w);
                touched.insert(w);
            }
            // Everything still live here is live across a call.
            if inst.is_call() {
                let site = site_index[&(bb, i as u32)];
                for &l in &live_webs {
                    calls_crossed[l.index()].insert(site);
                }
            }
            // Record copy pairs for coalescing.
            if let Inst::Copy { dst, src } = inst {
                if let (Some(dw), Some(sw)) = (
                    webs.def_web(bb, i as u32, *dst),
                    webs.use_web(bb, i as u32, *src),
                ) {
                    copies.push((dw, sw));
                }
            }
            // Uses become live above this instruction.
            uses_buf.clear();
            inst.collect_uses(&mut uses_buf);
            for &u in &uses_buf {
                if let Some(w) = webs.use_web(bb, i as u32, u) {
                    live_webs.insert(w);
                    touched.insert(w);
                }
            }
        }

        // Parameters are all defined simultaneously on entry: the webs live
        // at the top of the entry block form a clique.
        if bb == f.entry() {
            let at_top: Vec<WebId> = live_webs.iter().copied().collect();
            for (ai, &a) in at_top.iter().enumerate() {
                for &b in &at_top[ai + 1..] {
                    graph.add_edge(a.0, b.0);
                }
            }
        }

        for w in touched {
            blocks_spanned[w.index()].insert(bb);
        }
    }

    Ok(WebScan {
        graph,
        calls_crossed,
        blocks_spanned,
        copies,
        callsites,
    })
}

/// Aggressive coalescing: merge copy-related webs that do not interfere,
/// iterating to a fixpoint (the coalescing phase of Figure 1).
fn coalesce(nw: usize, scan: &WebScan) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..nw as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut c = x;
        while parent[c as usize] != r {
            let n = parent[c as usize];
            parent[c as usize] = r;
            c = n;
        }
        r
    }

    // classes_interfere: any member pair interferes.
    let mut members: Vec<Vec<u32>> = (0..nw as u32).map(|i| vec![i]).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &(a, b) in &scan.copies {
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra == rb {
                continue;
            }
            let conflict = members[ra as usize].iter().any(|&x| {
                members[rb as usize]
                    .iter()
                    .any(|&y| scan.graph.interferes(x, y))
            });
            if !conflict {
                parent[rb as usize] = ra;
                let moved = std::mem::take(&mut members[rb as usize]);
                members[ra as usize].extend(moved);
                changed = true;
            }
        }
    }
    (0..nw as u32).map(|i| find(&mut parent, i)).collect()
}

/// Builds the full allocation context for one function.
///
/// This runs the *graph construction* and *live-range coalescing* phases:
/// liveness, webs, web-level interference, aggressive coalescing, and the
/// per-node cost attributes (spill / caller-save / callee-save cost, block
/// span, calls crossed).
pub fn build_context(
    f: &Function,
    freq: &FuncFreq,
    cost: &CostModel,
) -> Result<FuncContext, AllocError> {
    let mut sink = crate::trace::NoopSink;
    let mut tr = crate::trace::TraceCtx::new(&mut sink, f.name(), 1);
    build_context_traced(f, freq, cost, &mut tr)
}

/// Like [`build_context`], emitting `build` and `coalesce` phase spans
/// through the trace context.
pub fn build_context_traced(
    f: &Function,
    freq: &FuncFreq,
    cost: &CostModel,
    tr: &mut crate::trace::TraceCtx<'_>,
) -> Result<FuncContext, AllocError> {
    let span = tr.span();
    let live = Liveness::compute(f);
    let webs = Webs::compute(f);
    let scan = scan_webs(f, &live, &webs, freq)?;
    tr.span_end(span, crate::trace::Phase::Build);
    tr.observe("analysis_liveness_iterations", live.iterations() as u64);
    tr.observe("analysis_webs", webs.len() as u64);
    tr.count("analysis_web_refs_total", webs.total_refs() as u64);

    let span = tr.span();
    let roots = coalesce(webs.len(), &scan);

    // Dense node ids per root.
    let mut node_of_root: HashMap<u32, u32> = HashMap::new();
    let mut web_node: HashMap<WebId, u32> = HashMap::new();
    let mut node_webs: Vec<Vec<WebId>> = Vec::new();
    for (w, &root) in roots.iter().enumerate() {
        let n = *node_of_root.entry(root).or_insert_with(|| {
            node_webs.push(Vec::new());
            (node_webs.len() - 1) as u32
        });
        node_webs[n as usize].push(WebId(w as u32));
        web_node.insert(WebId(w as u32), n);
    }

    let entry_freq = freq.invocations;
    let mut nodes: Vec<NodeInfo> = Vec::with_capacity(node_webs.len());
    for webs_in_node in &node_webs {
        let mut spill_cost = 0.0;
        let mut crossed: HashSet<u32> = HashSet::new();
        let mut blocks: HashSet<BlockId> = HashSet::new();
        let mut is_spill_temp = false;
        let mut class = RegClass::Int;
        let mut defs = Vec::new();
        let mut uses = Vec::new();
        let mut param_vregs = Vec::new();
        for &w in webs_in_node {
            let data = webs.web(w);
            class = f.class_of(data.vreg);
            if f.vreg(data.vreg).is_spill_temp {
                is_spill_temp = true;
            }
            for &(bb, i) in &data.defs {
                spill_cost += freq.block(bb) * cost.spill_ref_ops;
                defs.push((bb, i, data.vreg));
            }
            for &(bb, i) in &data.uses {
                spill_cost += freq.block(bb) * cost.spill_ref_ops;
                uses.push((bb, i, data.vreg));
            }
            if data.is_param {
                // The entry store a spilled parameter would need is itself
                // a spill operation.
                spill_cost += freq.invocations * cost.spill_ref_ops;
                param_vregs.push(data.vreg);
            }
            crossed.extend(scan.calls_crossed[w.index()].iter().copied());
            blocks.extend(scan.blocks_spanned[w.index()].iter().copied());
        }
        if is_spill_temp {
            spill_cost = SPILL_TEMP_COST;
        }
        let mut calls_crossed: Vec<u32> = crossed.into_iter().collect();
        calls_crossed.sort_unstable();
        let caller_cost: f64 = calls_crossed
            .iter()
            .map(|&s| scan.callsites[s as usize].freq * cost.caller_save_pair_ops)
            .sum();
        let callee_cost = entry_freq * cost.callee_save_pair_ops;
        nodes.push(NodeInfo {
            class,
            spill_cost,
            caller_cost,
            callee_cost,
            size: blocks.len().max(1) as u32,
            calls_crossed,
            webs: webs_in_node.clone(),
            is_spill_temp,
            defs,
            uses,
            param_vregs,
        });
    }

    // Node-level interference graph.
    let mut graph = InterferenceGraph::new(nodes.len());
    for a in 0..webs.len() as u32 {
        for &b in scan.graph.neighbors(a) {
            if a < b {
                let (na, nb) = (web_node[&WebId(a)], web_node[&WebId(b)]);
                if na != nb && nodes[na as usize].class == nodes[nb as usize].class {
                    graph.add_edge(na, nb);
                }
            }
        }
    }

    let ctx = FuncContext {
        nodes,
        graph,
        callsites: scan.callsites,
        entry_freq,
        web_node,
        webs,
    };
    tr.span_end(span, crate::trace::Phase::Coalesce);
    tr.count(
        "coalesce_merged_webs_total",
        (ctx.webs.len() - ctx.nodes.len()) as u64,
    );
    tr.observe("build_callsites", ctx.callsites.len() as u64);
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, Callee, FunctionBuilder, Program};

    fn ctx_for(f: Function) -> (FuncContext, Program, ccra_ir::FuncId) {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        let ctx = build_context(p.function(id), freq.func(id), &CostModel::paper())
            .expect("context builds");
        (ctx, p, id)
    }

    #[test]
    fn simultaneously_live_values_interfere() {
        // x and y both live across the add -> interfere.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        let z = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.iconst(y, 2);
        b.binary(BinOp::Add, z, x, y);
        b.binary(BinOp::Add, z, z, y);
        b.ret(Some(z));
        let (ctx, ..) = ctx_for(b.finish());
        // Webs: x, y, and *two* z webs (the second `z = z + y` def starts a
        // fresh lifetime joined only with the return's use).
        assert_eq!(ctx.nodes.len(), 4);
        // x and y are simultaneously live before the first add, and y is
        // live when the first z lifetime is defined.
        assert!(
            ctx.graph.num_edges() >= 2,
            "edges: {}",
            ctx.graph.num_edges()
        );
        assert_eq!(ctx.callsites.len(), 0);
        assert_eq!(ctx.entry_freq, 1.0);
    }

    #[test]
    fn copy_related_nonconflicting_webs_coalesce() {
        // y = copy x; x dead after -> coalesced into one node.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.iconst(x, 5);
        b.copy(y, x);
        b.ret(Some(y));
        let (ctx, ..) = ctx_for(b.finish());
        assert_eq!(ctx.nodes.len(), 1, "copy-related webs must coalesce");
        assert_eq!(ctx.graph.num_edges(), 0);
    }

    #[test]
    fn conflicting_copy_webs_do_not_coalesce() {
        // y = copy x, but x is used again after y is redefined... make x
        // live while y live: y = copy x; z = x + y -> x live after copy.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        let z = b.new_vreg(RegClass::Int);
        b.iconst(x, 5);
        b.copy(y, x);
        b.binary(BinOp::Add, y, y, y);
        b.binary(BinOp::Add, z, x, y);
        b.ret(Some(z));
        let (ctx, ..) = ctx_for(b.finish());
        // x and y interfere (y redefined while x live) so cannot merge.
        assert!(ctx.nodes.len() >= 2);
    }

    #[test]
    fn call_crossing_recorded_with_frequency() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let r = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.call(Callee::External("g"), vec![], Some(r));
        b.binary(BinOp::Add, r, r, x); // x live across the call
        b.ret(Some(r));
        let (ctx, ..) = ctx_for(b.finish());
        assert_eq!(ctx.callsites.len(), 1);
        let x_node = ctx
            .nodes
            .iter()
            .position(|n| n.crosses_calls())
            .expect("some node crosses the call");
        let n = &ctx.nodes[x_node];
        assert_eq!(n.calls_crossed, vec![0]);
        assert_eq!(n.caller_cost, 2.0); // one call, freq 1, pair = 2 ops
        assert_eq!(n.callee_cost, 2.0); // one invocation
    }

    #[test]
    fn call_args_and_results_do_not_cross() {
        let mut b = FunctionBuilder::new("main");
        let a = b.new_vreg(RegClass::Int);
        let r = b.new_vreg(RegClass::Int);
        b.iconst(a, 1);
        b.call(Callee::External("g"), vec![a], Some(r));
        b.ret(Some(r));
        let (ctx, ..) = ctx_for(b.finish());
        assert!(
            ctx.nodes.iter().all(|n| !n.crosses_calls()),
            "arg dies at the call; result is born at it"
        );
    }

    #[test]
    fn different_banks_never_interfere() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        let f1 = b.new_vreg(RegClass::Float);
        let f2 = b.new_vreg(RegClass::Float);
        b.iconst(x, 1);
        b.fconst(f1, 1.0);
        b.binary(BinOp::FAdd, f2, f1, f1);
        b.binary(BinOp::Add, x, x, x);
        b.binary(BinOp::FAdd, f2, f2, f1);
        b.ret(Some(x));
        let (ctx, ..) = ctx_for(b.finish());
        for a in 0..ctx.nodes.len() as u32 {
            for &bn in ctx.graph.neighbors(a) {
                assert_eq!(
                    ctx.nodes[a as usize].class, ctx.nodes[bn as usize].class,
                    "cross-bank interference edge"
                );
            }
        }
        let ints = ctx.bank_nodes(RegClass::Int);
        let floats = ctx.bank_nodes(RegClass::Float);
        assert!(!ints.is_empty() && !floats.is_empty());
    }

    #[test]
    fn spill_cost_is_frequency_weighted() {
        // A value referenced inside a loop has a higher spill cost than one
        // referenced once outside.
        let mut b = FunctionBuilder::new("main");
        let hot = b.new_vreg(RegClass::Int);
        let cold = b.new_vreg(RegClass::Int);
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        b.iconst(hot, 3);
        b.iconst(cold, 4);
        b.iconst(i, 0);
        b.iconst(n, 50);
        b.iconst(one, 1);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(ccra_ir::CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.binary(BinOp::Add, i, i, hot); // hot used 50x
        b.jump(head);
        b.switch_to(exit);
        b.binary(BinOp::Add, i, i, cold); // cold used once
        b.ret(Some(i));
        let (ctx, ..) = ctx_for(b.finish());
        let hot_cost = ctx
            .nodes
            .iter()
            .map(|n| n.spill_cost)
            .fold(0.0f64, f64::max);
        assert!(
            hot_cost >= 51.0,
            "hot value: def(1) + 50 uses, got {hot_cost}"
        );
    }
}
