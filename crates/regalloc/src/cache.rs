//! The incremental allocation service: a content-addressed per-function
//! memo cache.
//!
//! Per-function allocation is a pure function of `(function body, config,
//! register file, frequencies, cost model)` — the exact purity the
//! byte-determinism oracle pins — so its results are memoizable *by
//! construction*: a cache hit must replay the stored rewritten body and
//! [`FuncAllocation`] byte-identically to recomputation, at any worker
//! count. This module provides that memo store; the
//! [`crate::driver::ParallelDriver`] consults it before scheduling jobs
//! and the batch service shares one cache across submissions via
//! `BatchConfig::cache`.
//!
//! # Key derivation
//!
//! A [`CacheKey`] is four content fingerprints, all derived with the
//! deterministic [`StableHasher`] (no `serde`, no platform dependence):
//!
//! * `body` — the 128-bit structural digest of the pre-allocation
//!   [`Function`] ([`Function::content_hash`]): CFG shape, every
//!   instruction field (floats by bit pattern), terminators, vreg classes,
//!   and the name;
//! * `cfg` — [`config_fingerprint`]: every [`AllocatorConfig`] knob plus
//!   the [`CostModel`] weights (the weights steer SC/BS/PR decisions, so
//!   they are key material, not metadata);
//! * `file` — [`file_fingerprint`]: the register file's four bank sizes;
//! * `freq` — [`freq_fingerprint`]: the frequency *source* (static
//!   estimate vs dynamic profile) and the function's actual invocation and
//!   block counts. Frequencies are whole-program facts — a function's
//!   profile changes when its *callers* change — so the values themselves
//!   are hashed, not just the mode.
//!
//! # Storage, eviction, and bounds
//!
//! Entries live in mutex-protected shards (selected by the body digest's
//! low bits) so concurrent lookups from the work-stealing pool contend
//! per-shard, not globally. Memory is bounded **by retained bytes, not by
//! entry count**: every entry is charged an estimate of the bytes its
//! rewritten body + allocation summary keep resident
//! ([`CacheStats::bytes`]), each shard owns an equal slice of the
//! configured budget, and inserting past the slice evicts the shard's
//! least-recently-used entries (a monotonic clock stamp per touch — cheap,
//! and within a factor of bookkeeping of true LRU) until the new entry
//! fits. An entry larger than a whole shard slice is never admitted, so
//! the budget invariant `bytes <= byte_budget` holds at every instant.
//!
//! # Invalidation
//!
//! Three explicit levers, plus versioning:
//!
//! * [`AllocCache::invalidate`] — drop one key;
//! * [`AllocCache::invalidate_config`] — flush every entry carrying a
//!   config fingerprint (the "config changed" lever: flush the old
//!   fingerprint's entries without touching other configs' warm state);
//! * [`AllocCache::clear`] — drop everything eagerly;
//! * [`AllocCache::bump_version`] — entries are stamped with the cache
//!   version at insert; bumping it makes every existing entry stale
//!   *lazily* (a stale entry is removed on next touch and counts as a
//!   miss), which is O(1) where `clear` is O(entries).
//!
//! # Metrics
//!
//! The cache keeps its own atomic hit/miss/insert/evict tallies
//! ([`AllocCache::stats`]) and can render them into the existing
//! [`MetricsRegistry`] vocabulary ([`AllocCache::publish`]) for the
//! `/metrics` Prometheus surface. Cache traffic never lands in the merged
//! *program* registry: a warm run must stay byte-identical to a cold one,
//! and observability must not perturb the oracle.
//!
//! # Poisoning (test hook)
//!
//! [`CacheConfig::poison`] deliberately collapses every fingerprint to a
//! constant, so all functions collide on one key. This exists to prove
//! the byte-identity gates *fire*: under poison, a warm run replays the
//! wrong function's allocation and the `incr --check` / determinism
//! oracles must exit nonzero. Never enable it outside that proof.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ccra_analysis::{FreqMode, FuncFreq};
use ccra_ir::{Function, StableHasher};
use ccra_machine::{CostModel, PhysReg, RegisterFile};

use crate::metrics::MetricsRegistry;
use crate::pipeline::{FuncAllocation, RangeSummary};
use crate::types::{AllocatorConfig, AllocatorKind, BsKey, CalleeCostModel, PriorityOrdering};

/// The content-addressed key of one memoized allocation (see the module
/// docs for what each fingerprint covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The function body's 128-bit structural digest.
    pub body: u128,
    /// The allocator-config + cost-model fingerprint.
    pub cfg: u64,
    /// The register-file fingerprint.
    pub file: u64,
    /// The frequency-source fingerprint.
    pub freq: u64,
}

/// Size and behavior knobs for [`AllocCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of mutex-protected shards (clamped to ≥ 1). More shards,
    /// less lock contention under the work-stealing pool.
    pub shards: usize,
    /// Total retained-byte budget across all shards. Each shard owns
    /// `byte_budget / shards`; eviction keeps every shard within its
    /// slice, so the whole cache never exceeds the budget.
    pub byte_budget: u64,
    /// Collapse all fingerprints to a constant so every function collides
    /// (see the module docs). Test hook for gate-fires proofs only.
    pub poison: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            byte_budget: 64 * 1024 * 1024,
            poison: false,
        }
    }
}

/// A snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a stored allocation.
    pub hits: u64,
    /// Lookups that found nothing (stale-version touches included).
    pub misses: u64,
    /// Entries actually inserted.
    pub insertions: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Inserts dropped because another thread already stored the key —
    /// N threads hammering one key still produce exactly one entry.
    pub races_lost: u64,
    /// Inserts dropped because a single entry exceeded a whole shard's
    /// byte slice.
    pub oversize_skips: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Retained bytes currently charged.
    pub bytes: u64,
    /// The configured byte budget.
    pub byte_budget: u64,
}

impl CacheStats {
    /// Hits over lookups, in `0.0 ..= 1.0` (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// What [`AllocCache::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the entry was stored (false: lost a race or oversized).
    pub inserted: bool,
    /// How many resident entries were evicted to make room.
    pub evicted: u64,
}

/// The [`AllocatorConfig`] + [`CostModel`] fingerprint (see module docs).
pub fn config_fingerprint(config: &AllocatorConfig, cost: &CostModel) -> u64 {
    let mut h = StableHasher::new();
    let (kind, ordering) = match config.kind {
        AllocatorKind::Chaitin => (0u8, 0u8),
        AllocatorKind::Optimistic => (1, 0),
        AllocatorKind::Priority(ord) => (
            2,
            match ord {
                PriorityOrdering::RemovingUnconstrained => 1,
                PriorityOrdering::SortingUnconstrained => 2,
                PriorityOrdering::Sorting => 3,
            },
        ),
        AllocatorKind::Cbh => (3, 0),
    };
    h.write_u8(kind);
    h.write_u8(ordering);
    h.write_u8(u8::from(config.storage_class));
    h.write_u8(match config.callee_cost_model {
        CalleeCostModel::FirstUser => 0,
        CalleeCostModel::Shared => 1,
    });
    h.write_u8(match config.benefit_simplify {
        None => 0,
        Some(BsKey::MaxBenefit) => 1,
        Some(BsKey::BenefitDelta) => 2,
    });
    h.write_u8(u8::from(config.preference));
    h.write_u8(u8::from(config.incremental_reconstruction));
    h.write_u32(config.max_spill_rounds);
    h.write_f64(cost.spill_ref_ops);
    h.write_f64(cost.caller_save_pair_ops);
    h.write_f64(cost.callee_save_pair_ops);
    h.write_f64(cost.shuffle_move_ops);
    h.finish64()
}

/// The register-file fingerprint: the four bank sizes.
pub fn file_fingerprint(file: &RegisterFile) -> u64 {
    let (ci, cf, ei, ef) = file.components();
    let mut h = StableHasher::new();
    h.write_u8(ci);
    h.write_u8(cf);
    h.write_u8(ei);
    h.write_u8(ef);
    h.finish64()
}

/// The frequency-source fingerprint of one function: the source mode plus
/// the actual invocation and per-block execution counts (frequencies are
/// whole-program facts; see the module docs).
pub fn freq_fingerprint(mode: FreqMode, freq: &FuncFreq) -> u64 {
    let mut h = StableHasher::new();
    h.write_u8(match mode {
        FreqMode::Static => 0,
        FreqMode::Dynamic => 1,
    });
    h.write_f64(freq.invocations);
    h.write_u64(freq.block_freq.len() as u64);
    for (_, &f) in freq.block_freq.iter() {
        h.write_f64(f);
    }
    h.finish64()
}

/// An estimate of the bytes one cached entry keeps resident: the rewritten
/// body's instruction stream plus the allocation summary's ranges and
/// per-reference assignment. An estimate — what matters for the bound is
/// that every entry is charged consistently and in proportion to its real
/// footprint.
pub fn retained_bytes(body: &Function, alloc: &FuncAllocation) -> u64 {
    use std::mem::size_of;
    let mut bytes = size_of::<Function>() + size_of::<FuncAllocation>();
    bytes += body.name().len();
    bytes += std::mem::size_of_val(body.params());
    bytes += body.num_vregs() * size_of::<ccra_ir::VRegData>();
    for (_, block) in body.blocks() {
        bytes += size_of::<ccra_ir::Block>() + block.insts.len() * size_of::<ccra_ir::Inst>();
    }
    bytes += alloc.ranges.len() * size_of::<RangeSummary>();
    // One assignment entry: key tuple + value + hash-table slot overhead.
    bytes += alloc.assignment.len()
        * (size_of::<(ccra_ir::BlockId, u32, ccra_ir::VReg, bool)>() + size_of::<PhysReg>() + 16);
    bytes as u64
}

struct Entry {
    body: Function,
    alloc: FuncAllocation,
    bytes: u64,
    stamp: u64,
    version: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    bytes: u64,
}

/// The content-addressed per-function memo cache (see the module docs).
pub struct AllocCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    byte_budget: u64,
    poison: bool,
    clock: AtomicU64,
    version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    races_lost: AtomicU64,
    oversize_skips: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
}

impl std::fmt::Debug for AllocCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllocCache")
            .field("shards", &self.shards.len())
            .field("byte_budget", &self.byte_budget)
            .field("poison", &self.poison)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for AllocCache {
    fn default() -> Self {
        AllocCache::new(CacheConfig::default())
    }
}

impl AllocCache {
    /// A cache with the given shard count and byte budget.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        AllocCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: config.byte_budget / shards as u64,
            byte_budget: config.byte_budget,
            poison: config.poison,
            clock: AtomicU64::new(0),
            version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            races_lost: AtomicU64::new(0),
            oversize_skips: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// A cache with default sharding and the given byte budget.
    pub fn with_budget(byte_budget: u64) -> Self {
        AllocCache::new(CacheConfig {
            byte_budget,
            ..CacheConfig::default()
        })
    }

    /// Whether this cache was built with poisoned fingerprints (test hook).
    pub fn is_poisoned(&self) -> bool {
        self.poison
    }

    /// Derives the key for one function under the request's fingerprints
    /// (compute `cfg_fp`/`file_fp` once per program with
    /// [`config_fingerprint`]/[`file_fingerprint`]).
    pub fn key(
        &self,
        func: &Function,
        mode: FreqMode,
        freq: &FuncFreq,
        cfg_fp: u64,
        file_fp: u64,
    ) -> CacheKey {
        if self.poison {
            // Deliberate total collision (see the module docs).
            return CacheKey {
                body: 0,
                cfg: 0,
                file: 0,
                freq: 0,
            };
        }
        CacheKey {
            body: func.content_hash(),
            cfg: cfg_fp,
            file: file_fp,
            freq: freq_fingerprint(mode, freq),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.body as usize ^ key.freq as usize) % self.shards.len()]
    }

    /// Looks up a key, returning clones of the stored rewritten body and
    /// allocation. A stale-versioned entry is removed and reported as a
    /// miss.
    pub fn get(&self, key: &CacheKey) -> Option<(Function, FuncAllocation)> {
        let version = self.version.load(Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get_mut(key) {
            Some(entry) if entry.version == version => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.body.clone(), entry.alloc.clone()))
            }
            Some(_) => {
                let stale = shard.map.remove(key).expect("entry just observed");
                shard.bytes -= stale.bytes;
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(stale.bytes, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores one allocation under `key`, evicting least-recently-used
    /// entries from the key's shard until the entry fits its byte slice.
    /// A key already present keeps the *existing* entry (the insert counts
    /// as a lost race): concurrent recomputations of one function collapse
    /// to one resident copy. An entry larger than a whole shard slice is
    /// never admitted.
    pub fn insert(&self, key: CacheKey, body: &Function, alloc: &FuncAllocation) -> InsertOutcome {
        let bytes = retained_bytes(body, alloc);
        if bytes > self.shard_budget {
            self.oversize_skips.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome {
                inserted: false,
                evicted: 0,
            };
        }
        let version = self.version.load(Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(existing) = shard.map.get(&key) {
            if existing.version == version {
                self.races_lost.fetch_add(1, Ordering::Relaxed);
                return InsertOutcome {
                    inserted: false,
                    evicted: 0,
                };
            }
            // Stale under an old version: replace it below.
            let stale = shard.map.remove(&key).expect("entry just observed");
            shard.bytes -= stale.bytes;
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.bytes.fetch_sub(stale.bytes, Ordering::Relaxed);
        }
        let mut evicted = 0u64;
        while shard.bytes + bytes > self.shard_budget {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty shard over budget");
            let gone = shard.map.remove(&victim).expect("victim resident");
            shard.bytes -= gone.bytes;
            self.entries.fetch_sub(1, Ordering::Relaxed);
            self.bytes.fetch_sub(gone.bytes, Ordering::Relaxed);
            evicted += 1;
        }
        shard.map.insert(
            key,
            Entry {
                body: body.clone(),
                alloc: alloc.clone(),
                bytes,
                stamp: self.clock.fetch_add(1, Ordering::Relaxed),
                version,
            },
        );
        shard.bytes += bytes;
        self.entries.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        InsertOutcome {
            inserted: true,
            evicted,
        }
    }

    /// Removes one key. Returns whether it was resident.
    pub fn invalidate(&self, key: &CacheKey) -> bool {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.remove(key) {
            Some(entry) => {
                shard.bytes -= entry.bytes;
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Flushes every entry carrying the given config fingerprint (the
    /// "this config changed" lever). Returns how many entries dropped.
    pub fn invalidate_config(&self, cfg_fp: u64) -> usize {
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let victims: Vec<CacheKey> = shard
                .map
                .keys()
                .filter(|k| k.cfg == cfg_fp)
                .copied()
                .collect();
            for key in victims {
                let entry = shard.map.remove(&key).expect("victim resident");
                shard.bytes -= entry.bytes;
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
                removed += 1;
            }
        }
        removed
    }

    /// Drops every entry eagerly.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.bytes = 0;
        }
        self.entries.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Bumps the entry version: every currently resident entry becomes
    /// stale lazily — O(1) now, each stale entry removed (and counted a
    /// miss) on its next touch. The coarse invalidation lever when a
    /// whole-world input (e.g. the toolchain itself) changes.
    pub fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters (each counter is
    /// individually exact; the set is read without a global lock).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            races_lost: self.races_lost.load(Ordering::Relaxed),
            oversize_skips: self.oversize_skips.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            byte_budget: self.byte_budget,
        }
    }

    /// Renders the stats into `metrics` under the `cache_*` names —
    /// counters `cache_hits_total`, `cache_misses_total`,
    /// `cache_insertions_total`, `cache_evictions_total`; gauges
    /// `cache_entries`, `cache_bytes`, `cache_budget_bytes`,
    /// `cache_hit_rate`. Call on a fresh scrape-time registry (counters
    /// are *added*, so publishing twice into one registry double-counts).
    pub fn publish(&self, metrics: &mut MetricsRegistry) {
        let stats = self.stats();
        metrics.add("cache_hits_total", stats.hits);
        metrics.add("cache_misses_total", stats.misses);
        metrics.add("cache_insertions_total", stats.insertions);
        metrics.add("cache_evictions_total", stats.evictions);
        metrics.gauge_set("cache_entries", stats.entries as f64);
        metrics.gauge_set("cache_bytes", stats.bytes as f64);
        metrics.gauge_set("cache_budget_bytes", stats.byte_budget as f64);
        metrics.gauge_set("cache_hit_rate", stats.hit_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::allocate_function;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, FunctionBuilder, Program, RegClass};

    fn sample_function(name: &str, value: i64) -> Function {
        let mut b = FunctionBuilder::new(name);
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        b.set_params(vec![x]);
        b.iconst(y, value);
        let z = b.new_vreg(RegClass::Int);
        b.binary(BinOp::Add, z, x, y);
        b.ret(Some(z));
        b.finish()
    }

    /// One allocated sample: the pre-allocation function, its key inputs,
    /// and the stored value (rewritten body + allocation).
    fn allocated(name: &str, value: i64) -> (Function, Function, FuncAllocation) {
        let f = sample_function(name, value);
        let mut program = Program::new();
        let id = program.add_function(f.clone());
        program.set_main(id);
        let freq = FrequencyInfo::estimate(&program);
        let (body, alloc) = allocate_function(
            &f,
            freq.func(id),
            &RegisterFile::mips_full(),
            &AllocatorConfig::improved(),
            &CostModel::paper(),
        )
        .expect("sample allocates");
        (f, body, alloc)
    }

    fn key_of(cache: &AllocCache, f: &Function) -> CacheKey {
        let mut program = Program::new();
        let id = program.add_function(f.clone());
        program.set_main(id);
        let freq = FrequencyInfo::estimate(&program);
        let cfg = config_fingerprint(&AllocatorConfig::improved(), &CostModel::paper());
        let file = file_fingerprint(&RegisterFile::mips_full());
        cache.key(f, freq.mode(), freq.func(id), cfg, file)
    }

    #[test]
    fn roundtrip_hit_returns_the_stored_allocation() {
        let cache = AllocCache::default();
        let (f, body, alloc) = allocated("f", 3);
        let key = key_of(&cache, &f);
        assert!(cache.get(&key).is_none(), "cold lookup misses");
        assert!(cache.insert(key, &body, &alloc).inserted);
        let (got_body, got_alloc) = cache.get(&key).expect("warm lookup hits");
        assert_eq!(got_body, body);
        assert_eq!(got_alloc, alloc);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0 && stats.bytes <= stats.byte_budget);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn every_fingerprint_component_keys_the_cache() {
        let cache = AllocCache::default();
        let (f, body, alloc) = allocated("f", 3);
        let key = key_of(&cache, &f);
        cache.insert(key, &body, &alloc);

        // Different body.
        let g = sample_function("f", 4);
        assert!(
            cache.get(&key_of(&cache, &g)).is_none(),
            "body change misses"
        );
        // Different config.
        let base_cfg = config_fingerprint(&AllocatorConfig::base(), &CostModel::paper());
        assert!(cache
            .get(&CacheKey {
                cfg: base_cfg,
                ..key
            })
            .is_none());
        // Different cost model: also a config-fingerprint change.
        let heavy = CostModel {
            spill_ref_ops: 9.0,
            ..CostModel::paper()
        };
        let heavy_cfg = config_fingerprint(&AllocatorConfig::improved(), &heavy);
        assert_ne!(heavy_cfg, key.cfg, "cost weights are key material");
        // Different register file.
        let tight = file_fingerprint(&RegisterFile::new(8, 6, 2, 2));
        assert!(cache.get(&CacheKey { file: tight, ..key }).is_none());
        // Different frequencies.
        assert!(cache
            .get(&CacheKey {
                freq: key.freq ^ 1,
                ..key
            })
            .is_none());
    }

    #[test]
    fn invalidation_levers_work() {
        let cache = AllocCache::default();
        let (f, body, alloc) = allocated("f", 3);
        let (g, gbody, galloc) = allocated("g", 5);
        let kf = key_of(&cache, &f);
        let kg = key_of(&cache, &g);
        cache.insert(kf, &body, &alloc);
        cache.insert(kg, &gbody, &galloc);

        // Per-key invalidate.
        assert!(cache.invalidate(&kf));
        assert!(!cache.invalidate(&kf), "already gone");
        assert!(cache.get(&kf).is_none());
        assert!(cache.get(&kg).is_some(), "sibling untouched");

        // Flush by config fingerprint.
        cache.insert(kf, &body, &alloc);
        assert_eq!(
            cache.invalidate_config(kf.cfg),
            2,
            "both entries share the config"
        );
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().bytes, 0);

        // clear() and bump_version().
        cache.insert(kf, &body, &alloc);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        cache.insert(kf, &body, &alloc);
        cache.bump_version();
        assert!(cache.get(&kf).is_none(), "stale version is a miss");
        assert_eq!(cache.stats().entries, 0, "stale entry removed on touch");
        // Re-inserting under the new version works.
        assert!(cache.insert(kf, &body, &alloc).inserted);
        assert!(cache.get(&kf).is_some());
    }

    #[test]
    fn eviction_never_violates_the_byte_budget() {
        let (_f, body, alloc) = allocated("f", 3);
        let per_entry = retained_bytes(&body, &alloc);
        // Room for about three entries in one shard.
        let cache = AllocCache::new(CacheConfig {
            shards: 1,
            byte_budget: per_entry * 3 + per_entry / 2,
            poison: false,
        });
        let mut keys = Vec::new();
        for i in 0..16 {
            let g = sample_function(&format!("f{i}"), i);
            let key = key_of(&cache, &g);
            cache.insert(key, &body, &alloc);
            keys.push(key);
            let stats = cache.stats();
            assert!(
                stats.bytes <= stats.byte_budget,
                "after insert {i}: {} > {}",
                stats.bytes,
                stats.byte_budget
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.insertions, 16);
        assert_eq!(stats.entries, 3, "budget admits three entries");
        assert_eq!(stats.evictions, 13, "the rest were evicted LRU");
        // LRU-ish: the most recently inserted keys are the survivors.
        assert!(cache.get(&keys[15]).is_some());
        assert!(cache.get(&keys[0]).is_none());
    }

    #[test]
    fn recently_touched_entries_survive_eviction() {
        let (_f, body, alloc) = allocated("f", 3);
        let per_entry = retained_bytes(&body, &alloc);
        let cache = AllocCache::new(CacheConfig {
            shards: 1,
            byte_budget: per_entry * 2 + per_entry / 2,
            poison: false,
        });
        let k0 = key_of(&cache, &sample_function("a", 0));
        let k1 = key_of(&cache, &sample_function("b", 1));
        let k2 = key_of(&cache, &sample_function("c", 2));
        cache.insert(k0, &body, &alloc);
        cache.insert(k1, &body, &alloc);
        // Touch k0 so k1 is now the least recently used.
        assert!(cache.get(&k0).is_some());
        cache.insert(k2, &body, &alloc);
        assert!(cache.get(&k0).is_some(), "recently touched survives");
        assert!(cache.get(&k1).is_none(), "LRU entry evicted");
        assert!(cache.get(&k2).is_some());
    }

    #[test]
    fn oversized_entries_are_never_admitted() {
        let (f, body, alloc) = allocated("f", 3);
        let cache = AllocCache::new(CacheConfig {
            shards: 2,
            byte_budget: 16, // each shard slice is 8 bytes — nothing fits
            poison: false,
        });
        let key = key_of(&cache, &f);
        let outcome = cache.insert(key, &body, &alloc);
        assert!(!outcome.inserted);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.oversize_skips, 1);
    }

    #[test]
    fn hammering_one_key_produces_one_insert() {
        let (f, body, alloc) = allocated("f", 3);
        let cache = std::sync::Arc::new(AllocCache::default());
        let key = key_of(&cache, &f);
        let threads = 8;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cache = std::sync::Arc::clone(&cache);
                let (body, alloc) = (body.clone(), alloc.clone());
                scope.spawn(move || {
                    for _ in 0..50 {
                        if cache.get(&key).is_none() {
                            cache.insert(key, &body, &alloc);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "one resident copy");
        assert_eq!(stats.insertions, 1, "exactly one insert won");
        assert_eq!(
            stats.hits + stats.misses,
            threads * 50,
            "every lookup accounted"
        );
        assert_eq!(
            stats.races_lost,
            stats.misses - 1,
            "every miss after the winner lost the insert race"
        );
    }

    #[test]
    fn poison_collapses_every_key() {
        let cache = AllocCache::new(CacheConfig {
            poison: true,
            ..CacheConfig::default()
        });
        assert!(cache.is_poisoned());
        let (f, body, alloc) = allocated("f", 3);
        let (g, ..) = allocated("g", 5);
        let kf = key_of(&cache, &f);
        let kg = key_of(&cache, &g);
        assert_eq!(kf, kg, "poison collides distinct functions");
        cache.insert(kf, &body, &alloc);
        let (got, _) = cache.get(&kg).expect("collision hits");
        assert_eq!(
            got, body,
            "g's lookup replays f's allocation — wrong on purpose"
        );
    }

    #[test]
    fn publish_renders_cache_metrics() {
        let cache = AllocCache::default();
        let (f, body, alloc) = allocated("f", 3);
        let key = key_of(&cache, &f);
        cache.get(&key); // miss
        cache.insert(key, &body, &alloc);
        cache.get(&key); // hit
        let mut m = MetricsRegistry::new();
        cache.publish(&mut m);
        assert_eq!(m.counter("cache_hits_total"), 1);
        assert_eq!(m.counter("cache_misses_total"), 1);
        assert_eq!(m.counter("cache_insertions_total"), 1);
        assert_eq!(m.counter("cache_evictions_total"), 0);
        assert_eq!(m.gauge("cache_entries"), Some(1.0));
        assert!(m.gauge("cache_bytes").unwrap() > 0.0);
        assert_eq!(m.gauge("cache_hit_rate"), Some(0.5));
        let text = m.to_prometheus_text();
        assert!(text.contains("cache_hits_total 1"), "{text}");
    }
}
