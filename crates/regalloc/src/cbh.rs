//! The CBH (Chaitin/Briggs-Hierarchical) call-cost model of Section 10.
//!
//! CBH extends Chaitin-style coloring with an *explicit* encoding of the
//! calling convention:
//!
//! * live ranges that cross calls interfere with **all caller-save
//!   registers** — only callee-save registers (or memory) can hold them;
//! * each callee-save register is represented by a **callee-save-register
//!   live range** spanning the whole function, whose spill cost is the
//!   entry/exit save/restore cost. Spilling it "frees" the register for
//!   ordinary live ranges at that price.

use std::collections::{HashMap, HashSet};

use ccra_ir::RegClass;
use ccra_machine::{PhysReg, RegisterFile, SaveKind};

use crate::build::FuncContext;
use crate::chaitin::{emit_bank_decisions, BankResult, DecisionMeta};
use crate::error::AllocError;
use crate::trace::{Phase, TraceCtx};

/// Per-spill reasons collected during assignment, only when tracing.
type Reasons = Vec<(u32, &'static str)>;

/// Runs CBH coloring on one register bank.
pub fn allocate_bank_cbh(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
) -> Result<BankResult, AllocError> {
    let mut sink = crate::trace::NoopSink;
    let mut tr = TraceCtx::new(&mut sink, "", 1);
    allocate_bank_cbh_traced(ctx, class, file, &mut tr)
}

/// Like [`allocate_bank_cbh`], emitting `simplify`/`select` phase spans and
/// one decision record per live range through the trace context.
pub fn allocate_bank_cbh_traced(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    tr: &mut TraceCtx<'_>,
) -> Result<BankResult, AllocError> {
    let bank = ctx.bank_nodes(class);
    let n_caller = file.count(class, SaveKind::CallerSave);
    let n_callee = file.count(class, SaveKind::CalleeSave);
    if n_caller + n_callee == 0 {
        let result = BankResult {
            colors: HashMap::new(),
            spilled: bank,
        };
        if tr.enabled() {
            let reasons: Reasons = result.spilled.iter().map(|&n| (n, "bank_empty")).collect();
            let meta = DecisionMeta {
                bs: None,
                forced: None,
            };
            emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
        }
        return Ok(result);
    }
    let span = tr.span();
    let mut reasons: Option<Reasons> = tr.enabled().then(Vec::new);

    // The save/restore cost of one callee-save-register live range.
    let callee_range_cost = ctx.entry_freq * 2.0;

    let mut alive: HashSet<u32> = bank.iter().copied().collect();
    let mut degree: HashMap<u32, usize> = bank
        .iter()
        .map(|&n| {
            (
                n,
                ctx.graph
                    .neighbors(n)
                    .iter()
                    .filter(|m| alive.contains(m))
                    .count(),
            )
        })
        .collect();
    // Callee-save-register live ranges still alive (index < n_callee).
    let mut synthetic_alive: HashSet<u8> = (0..n_callee as u8).collect();
    // Callee-save registers freed by spilling their synthetic live range.
    let mut freed: Vec<PhysReg> = Vec::new();

    let allowed_count = |crossing: bool, freed: usize| -> usize {
        if crossing {
            freed
        } else {
            n_caller + freed
        }
    };

    let mut stack: Vec<u32> = Vec::new();
    let mut spilled: Vec<u32> = Vec::new();

    while !alive.is_empty() {
        // Unconstrained ordinary node: its ordinary degree is below the
        // number of registers it could currently legally use.
        let mut pick: Option<u32> = None;
        {
            let mut ids: Vec<u32> = alive.iter().copied().collect();
            ids.sort_unstable();
            for n in ids {
                let crossing = ctx.nodes[n as usize].crosses_calls();
                if degree[&n] < allowed_count(crossing, freed.len()) {
                    pick = Some(n);
                    break;
                }
            }
        }
        if let Some(n) = pick {
            alive.remove(&n);
            for &m in ctx.graph.neighbors(n) {
                if alive.contains(&m) {
                    match degree.get_mut(&m) {
                        Some(d) => *d -= 1,
                        None => {
                            return Err(AllocError::DegreeUnderflow {
                                node: n,
                                neighbor: m,
                            })
                        }
                    }
                }
            }
            stack.push(n);
            continue;
        }

        // Blocked: choose the least-spill-cost live range among the
        // remaining ordinary *and* callee-save-register live ranges
        // (Section 10: "one live range with the least spill cost is
        // chosen ... including the callee-save-register live ranges").
        let ordinary_victim = alive.iter().copied().min_by(|&a, &b| {
            ctx.nodes[a as usize]
                .spill_cost
                .partial_cmp(&ctx.nodes[b as usize].spill_cost)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let synthetic_victim = synthetic_alive.iter().copied().min();

        enum Victim {
            Synthetic(u8),
            Ordinary(u32),
        }
        let victim = match (ordinary_victim, synthetic_victim) {
            (Some(o), Some(s)) => {
                if callee_range_cost <= ctx.nodes[o as usize].spill_cost {
                    Victim::Synthetic(s)
                } else {
                    Victim::Ordinary(o)
                }
            }
            (None, Some(s)) => Victim::Synthetic(s),
            (Some(o), None) => Victim::Ordinary(o),
            (None, None) => return Err(AllocError::NoSpillCandidate { class }),
        };

        match victim {
            Victim::Synthetic(s) => {
                synthetic_alive.remove(&s);
                freed.push(PhysReg::new(class, SaveKind::CalleeSave, s));
            }
            Victim::Ordinary(v) => {
                alive.remove(&v);
                for &m in ctx.graph.neighbors(v) {
                    if alive.contains(&m) {
                        match degree.get_mut(&m) {
                            Some(d) => *d -= 1,
                            None => {
                                return Err(AllocError::DegreeUnderflow {
                                    node: v,
                                    neighbor: m,
                                })
                            }
                        }
                    }
                }
                spilled.push(v);
                if let Some(r) = reasons.as_mut() {
                    r.push((v, "pressure_spill"));
                }
            }
        }
    }
    tr.span_end(span, Phase::Simplify);
    tr.count("cbh_banks_total", 1);

    // Color assignment: callee-save registers are usable only if freed;
    // call-crossing nodes may not use caller-save registers at all.
    let span = tr.span();
    let mut colors: HashMap<u32, PhysReg> = HashMap::new();
    for &n in stack.iter().rev() {
        let node = &ctx.nodes[n as usize];
        let taken: HashSet<PhysReg> = ctx
            .graph
            .neighbors(n)
            .iter()
            .filter_map(|m| colors.get(m).copied())
            .collect();
        let crossing = node.crosses_calls();
        let callee_free = freed.iter().copied().find(|r| !taken.contains(r));
        let caller_free = if crossing {
            None
        } else {
            file.regs_of(class, SaveKind::CallerSave)
                .find(|r| !taken.contains(r))
        };
        // Non-crossing live ranges prefer caller-save registers; crossing
        // ones have no choice.
        let reg = if crossing {
            callee_free
        } else {
            caller_free.or(callee_free)
        };
        match reg {
            Some(r) => {
                colors.insert(n, r);
            }
            None => {
                spilled.push(n);
                if let Some(r) = reasons.as_mut() {
                    r.push((n, "no_color"));
                }
            }
        }
    }
    tr.span_end(span, Phase::Select);

    let result = BankResult { colors, spilled };
    tr.count("select_colored_total", result.colors.len() as u64);
    tr.count("select_spilled_total", result.spilled.len() as u64);
    if let Some(reasons) = reasons {
        let meta = DecisionMeta {
            bs: None,
            forced: None,
        };
        emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, Callee, CmpOp, FunctionBuilder, Program};
    use ccra_machine::CostModel;

    fn ctx_for(f: ccra_ir::Function) -> FuncContext {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        build_context(p.function(id), freq.func(id), &CostModel::paper()).expect("context builds")
    }

    /// `k` hot values live across a call inside a loop.
    fn crossing_pressure(k: usize, trips: i64) -> ccra_ir::Function {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (j, &v) in vs.iter().enumerate() {
            b.iconst(v, j as i64 + 1);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, trips);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn crossing_ranges_never_get_caller_save() {
        let ctx = ctx_for(crossing_pressure(3, 40));
        let file = RegisterFile::new(10, 4, 5, 0);
        let res = allocate_bank_cbh(&ctx, RegClass::Int, &file).expect("bank allocates");
        for (&n, &reg) in &res.colors {
            if ctx.nodes[n as usize].crosses_calls() {
                assert_eq!(
                    reg.kind,
                    SaveKind::CalleeSave,
                    "CBH put crossing node {n} in caller-save {reg}"
                );
            }
        }
    }

    #[test]
    fn scarce_callee_saves_force_spills() {
        // 6 hot crossing values but only 2 callee-save registers: CBH must
        // spill crossing values even though caller-save registers sit idle.
        let ctx = ctx_for(crossing_pressure(6, 40));
        let file = RegisterFile::new(10, 4, 2, 0);
        let res = allocate_bank_cbh(&ctx, RegClass::Int, &file).expect("bank allocates");
        let spilled_crossing = res
            .spilled
            .iter()
            .filter(|&&n| ctx.nodes[n as usize].crosses_calls())
            .count();
        assert!(
            spilled_crossing >= 4,
            "with 2 callee-save registers, ≥4 of 6 crossing values spill \
             (got {spilled_crossing})"
        );
    }

    #[test]
    fn coloring_is_conflict_free() {
        let ctx = ctx_for(crossing_pressure(4, 10));
        let file = RegisterFile::new(8, 4, 3, 0);
        let res = allocate_bank_cbh(&ctx, RegClass::Int, &file).expect("bank allocates");
        for (&a, &ra) in &res.colors {
            for (&b, &rb) in &res.colors {
                if a != b && ctx.graph.interferes(a, b) {
                    assert_ne!(ra, rb);
                }
            }
        }
    }

    #[test]
    fn callee_register_freed_only_when_worth_it() {
        // A single cold crossing value in a function entered once: the
        // callee-save-register live range costs 2 ops, the value's spill
        // cost is 2 ops — CBH spills whichever is cheaper, but must not
        // free more callee registers than needed.
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::External("g"), vec![], Some(r));
        b.binary(BinOp::Add, r, r, x);
        b.ret(Some(r));
        let ctx = ctx_for(b.finish());
        let file = RegisterFile::new(6, 4, 4, 0);
        let res = allocate_bank_cbh(&ctx, RegClass::Int, &file).expect("bank allocates");
        let callee_used: HashSet<PhysReg> = res
            .colors
            .values()
            .copied()
            .filter(|r| r.kind == SaveKind::CalleeSave)
            .collect();
        assert!(
            callee_used.len() <= 1,
            "at most one callee register is needed"
        );
    }
}
