//! Chaitin-style and optimistic coloring, with the paper's three
//! improvements: storage-class analysis (SC), benefit-driven simplification
//! (BS), and preference decision (PR).

use std::collections::{HashMap, HashSet};

use ccra_ir::RegClass;
use ccra_machine::{PhysReg, RegisterFile, SaveKind};

use crate::build::FuncContext;
use crate::error::AllocError;
use crate::trace::{AllocEvent, Decision, Phase, TraceCtx};
use crate::types::{AllocatorConfig, AllocatorKind, BsKey, CalleeCostModel, Loc};

/// Per-spill reasons collected during assignment, only when tracing.
type Reasons = Vec<(u32, &'static str)>;

/// Simplification output: the removal stack plus the nodes Chaitin-style
/// simplification forced to spill outright.
type SimplifyOutcome = (Vec<(u32, Removal)>, Vec<u32>);

/// The outcome of coloring one register bank.
#[derive(Debug, Clone, Default)]
pub struct BankResult {
    /// Node → register assignments.
    pub colors: HashMap<u32, PhysReg>,
    /// Nodes that must live in memory (pressure spills and storage-class
    /// spills alike); spill code will be inserted for them.
    pub spilled: Vec<u32>,
}

/// How a node left the simplification phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Removal {
    /// Removed as unconstrained — a color is guaranteed.
    Guaranteed,
    /// Pushed optimistically while blocked — may fail to find a color.
    Optimistic,
}

/// The *preference decision* pass (Section 6): walk call sites from most to
/// least frequent; wherever more live ranges want callee-save registers than
/// exist (`L > M`), force the `L − M` cheapest of them to prefer caller-save
/// registers instead. Returns the set of nodes forced to prefer caller-save.
pub fn preference_decision(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
) -> HashSet<u32> {
    let m = file.count(class, SaveKind::CalleeSave);
    let mut forced: HashSet<u32> = HashSet::new();

    // Call site -> crossing nodes of this bank.
    let mut site_nodes: Vec<Vec<u32>> = vec![Vec::new(); ctx.callsites.len()];
    for (n, node) in ctx.nodes.iter().enumerate() {
        if node.class != class {
            continue;
        }
        for &s in &node.calls_crossed {
            site_nodes[s as usize].push(n as u32);
        }
    }

    let mut order: Vec<u32> = (0..ctx.callsites.len() as u32).collect();
    order.sort_by(|&a, &b| {
        ctx.callsites[b as usize]
            .freq
            .partial_cmp(&ctx.callsites[a as usize].freq)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    for s in order {
        let mut candidates: Vec<u32> = site_nodes[s as usize]
            .iter()
            .copied()
            .filter(|&n| {
                let node = &ctx.nodes[n as usize];
                !forced.contains(&n) && node.benefit_callee() > node.benefit_caller()
            })
            .collect();
        let l = candidates.len();
        if l <= m {
            continue;
        }
        // Key: the penalty of *not* getting a callee-save register —
        // caller_cost when a caller-save register is still profitable,
        // spill cost otherwise (storage-class analysis will spill it).
        candidates.sort_by(|&a, &b| {
            let key = |n: u32| {
                let node = &ctx.nodes[n as usize];
                if node.benefit_caller() > 0.0 {
                    node.caller_cost
                } else {
                    node.spill_cost
                }
            };
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &n in candidates.iter().take(l - m) {
            forced.insert(n);
        }
    }
    forced
}

/// The simplification phase: repeatedly remove unconstrained nodes (degree
/// < N), spilling (Chaitin) or optimistically pushing (Briggs) a low
/// `spill_cost/degree` victim when blocked.
///
/// With benefit-driven simplification enabled, the unconstrained node with
/// the *smallest* BS key is removed first, leaving high-stakes live ranges
/// near the top of the color stack.
fn simplify(
    ctx: &FuncContext,
    class: RegClass,
    bank: &[u32],
    n_colors: usize,
    config: &AllocatorConfig,
) -> Result<SimplifyOutcome, AllocError> {
    let optimistic = config.kind == AllocatorKind::Optimistic;
    let mut alive: HashSet<u32> = bank.iter().copied().collect();
    let mut degree: HashMap<u32, usize> = bank
        .iter()
        .map(|&n| {
            (
                n,
                ctx.graph
                    .neighbors(n)
                    .iter()
                    .filter(|&&m| alive.contains(&m))
                    .count(),
            )
        })
        .collect();
    let mut stack: Vec<(u32, Removal)> = Vec::new();
    let mut pre_spilled: Vec<u32> = Vec::new();

    let remove = |n: u32,
                  alive: &mut HashSet<u32>,
                  degree: &mut HashMap<u32, usize>|
     -> Result<(), AllocError> {
        alive.remove(&n);
        for &m in ctx.graph.neighbors(n) {
            if alive.contains(&m) {
                match degree.get_mut(&m) {
                    Some(d) => *d -= 1,
                    None => {
                        return Err(AllocError::DegreeUnderflow {
                            node: n,
                            neighbor: m,
                        })
                    }
                }
            }
        }
        Ok(())
    };

    while !alive.is_empty() {
        // Unconstrained candidates.
        let pick = match config.benefit_simplify {
            Some(key) => alive
                .iter()
                .copied()
                .filter(|n| degree[n] < n_colors)
                .min_by(|&a, &b| {
                    let (ka, kb) = (
                        ctx.nodes[a as usize].bs_key(key),
                        ctx.nodes[b as usize].bs_key(key),
                    );
                    ka.partial_cmp(&kb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                }),
            None => {
                // Deterministic arbitrary order: lowest id first.
                let mut ids: Vec<u32> = alive
                    .iter()
                    .copied()
                    .filter(|n| degree[n] < n_colors)
                    .collect();
                ids.sort_unstable();
                ids.first().copied()
            }
        };

        if let Some(n) = pick {
            remove(n, &mut alive, &mut degree)?;
            stack.push((n, Removal::Guaranteed));
            continue;
        }

        // Blocked: pick the cheapest victim by spill_cost / degree.
        let victim = alive
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ma = ctx.nodes[a as usize].spill_metric(degree[&a]);
                let mb = ctx.nodes[b as usize].spill_metric(degree[&b]);
                ma.partial_cmp(&mb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .ok_or(AllocError::NoSpillCandidate { class })?;
        remove(victim, &mut alive, &mut degree)?;
        if optimistic {
            stack.push((victim, Removal::Optimistic));
        } else {
            pre_spilled.push(victim);
        }
    }
    Ok((stack, pre_spilled))
}

/// The color-assignment phase, including storage-class analysis.
///
/// `reasons` collects a spill reason per spilled node when tracing (`None`
/// when telemetry is off, so the untraced path allocates nothing).
#[allow(clippy::too_many_arguments)]
fn assign(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    config: &AllocatorConfig,
    stack: Vec<(u32, Removal)>,
    mut spilled: Vec<u32>,
    forced_caller: &HashSet<u32>,
    mut reasons: Option<&mut Reasons>,
) -> BankResult {
    let mut colors: HashMap<u32, PhysReg> = HashMap::new();
    // Share sets δ(r) for the shared callee-cost model.
    let mut delta: HashMap<PhysReg, Vec<u32>> = HashMap::new();
    let mut callee_used: HashSet<PhysReg> = HashSet::new();

    for &(n, removal) in stack.iter().rev() {
        let node = &ctx.nodes[n as usize];
        let taken: HashSet<PhysReg> = ctx
            .graph
            .neighbors(n)
            .iter()
            .filter_map(|m| colors.get(m).copied())
            .collect();
        let free_of = |kind: SaveKind| -> Option<PhysReg> {
            file.regs_of(class, kind).find(|r| !taken.contains(r))
        };

        // Decide the preferred kind of register. The preference-decision
        // annotation overrides both the SC benefit comparison and the base
        // crosses-calls heuristic.
        let prefer_callee = !forced_caller.contains(&n)
            && if config.storage_class {
                node.benefit_callee() > node.benefit_caller()
            } else {
                node.crosses_calls()
            };
        let (first, second) = if prefer_callee {
            (SaveKind::CalleeSave, SaveKind::CallerSave)
        } else {
            (SaveKind::CallerSave, SaveKind::CalleeSave)
        };

        let chosen = free_of(first).or_else(|| free_of(second));
        let Some(reg) = chosen else {
            debug_assert_eq!(
                removal,
                Removal::Optimistic,
                "guaranteed node found no color"
            );
            spilled.push(n);
            if let Some(r) = reasons.as_deref_mut() {
                r.push((n, "no_color"));
            }
            continue;
        };

        if config.storage_class && !node.is_spill_temp {
            match reg.kind {
                SaveKind::CallerSave => {
                    // Caller-save residence costs more than memory: spill.
                    if node.benefit_caller() < 0.0 {
                        spilled.push(n);
                        if let Some(r) = reasons.as_deref_mut() {
                            r.push((n, "sc_caller_spill"));
                        }
                        continue;
                    }
                }
                SaveKind::CalleeSave => match config.callee_cost_model {
                    CalleeCostModel::FirstUser => {
                        if !callee_used.contains(&reg) && node.benefit_callee() < 0.0 {
                            spilled.push(n);
                            if let Some(r) = reasons.as_deref_mut() {
                                r.push((n, "sc_callee_first_spill"));
                            }
                            continue;
                        }
                    }
                    CalleeCostModel::Shared => {
                        delta.entry(reg).or_default().push(n);
                    }
                },
            }
        }
        if reg.kind == SaveKind::CalleeSave {
            callee_used.insert(reg);
        }
        colors.insert(n, reg);
    }

    // Shared callee-cost model: a callee-save register is worth keeping only
    // if its users' combined spill cost exceeds the save/restore cost.
    if config.storage_class && config.callee_cost_model == CalleeCostModel::Shared {
        let callee_cost = ctx.entry_freq * 2.0;
        // Register order, not hash order: this loop pushes into `spilled`,
        // whose order numbers the spill slots downstream.
        let mut delta: Vec<(PhysReg, Vec<u32>)> = delta.into_iter().collect();
        delta.sort_unstable_by_key(|&(r, _)| r);
        for (_, users) in delta {
            let users: Vec<u32> = users
                .into_iter()
                .filter(|n| !ctx.nodes[*n as usize].is_spill_temp)
                .collect();
            if users.is_empty() {
                continue;
            }
            let sum: f64 = users
                .iter()
                .map(|&n| ctx.nodes[n as usize].spill_cost)
                .sum();
            if sum < callee_cost {
                for n in users {
                    colors.remove(&n);
                    spilled.push(n);
                    if let Some(r) = reasons.as_deref_mut() {
                        r.push((n, "sc_shared_spill"));
                    }
                }
            }
        }
    }

    BankResult { colors, spilled }
}

/// Runs Chaitin-style (or optimistic) coloring on one register bank.
pub fn allocate_bank_chaitin(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    config: &AllocatorConfig,
) -> Result<BankResult, AllocError> {
    let mut sink = crate::trace::NoopSink;
    let mut tr = TraceCtx::new(&mut sink, "", 1);
    allocate_bank_chaitin_traced(ctx, class, file, config, &mut tr)
}

/// Like [`allocate_bank_chaitin`], emitting `simplify`/`select` phase spans
/// and one [`Decision`] per live range through the trace context.
pub fn allocate_bank_chaitin_traced(
    ctx: &FuncContext,
    class: RegClass,
    file: &RegisterFile,
    config: &AllocatorConfig,
    tr: &mut TraceCtx<'_>,
) -> Result<BankResult, AllocError> {
    let bank = ctx.bank_nodes(class);
    let n_colors = file.bank_size(class);
    if n_colors == 0 {
        let result = BankResult {
            colors: HashMap::new(),
            spilled: bank,
        };
        if tr.enabled() {
            let reasons: Reasons = result.spilled.iter().map(|&n| (n, "bank_empty")).collect();
            let meta = DecisionMeta {
                bs: None,
                forced: None,
            };
            emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
        }
        return Ok(result);
    }

    let span = tr.span();
    let forced_caller = if config.preference {
        preference_decision(ctx, class, file)
    } else {
        HashSet::new()
    };
    let (stack, pre_spilled) = simplify(ctx, class, &bank, n_colors, config)?;
    tr.span_end(span, Phase::Simplify);
    tr.count("chaitin_banks_total", 1);
    tr.count("pref_forced_total", forced_caller.len() as u64);
    tr.count("simplify_pressure_spills_total", pre_spilled.len() as u64);

    let span = tr.span();
    let mut reasons: Option<Reasons> = tr
        .enabled()
        .then(|| pre_spilled.iter().map(|&n| (n, "pressure_spill")).collect());
    let result = assign(
        ctx,
        class,
        file,
        config,
        stack,
        pre_spilled,
        &forced_caller,
        reasons.as_mut(),
    );
    tr.span_end(span, Phase::Select);
    tr.count("select_colored_total", result.colors.len() as u64);
    tr.count("select_spilled_total", result.spilled.len() as u64);

    if let Some(reasons) = reasons {
        let meta = DecisionMeta {
            bs: config.benefit_simplify,
            forced: Some(&forced_caller),
        };
        emit_bank_decisions(tr, ctx, class, &result, &reasons, &meta);
    }
    Ok(result)
}

/// What the decision emitter needs to know about the allocator: the BS key
/// in effect (if any) and the preference-decision outcome (if it ran).
pub(crate) struct DecisionMeta<'a> {
    pub bs: Option<BsKey>,
    pub forced: Option<&'a HashSet<u32>>,
}

/// Emits one [`Decision`] per node of the bank, spilled or colored.
pub(crate) fn emit_bank_decisions(
    tr: &mut TraceCtx<'_>,
    ctx: &FuncContext,
    class: RegClass,
    result: &BankResult,
    reasons: &[(u32, &'static str)],
    meta: &DecisionMeta<'_>,
) {
    let reason_of: HashMap<u32, &'static str> = reasons.iter().copied().collect();
    let (func, round) = (tr.func().to_string(), tr.round());
    for n in ctx.bank_nodes(class) {
        let node = &ctx.nodes[n as usize];
        let loc = match result.colors.get(&n) {
            Some(&r) => Loc::Reg(r),
            None => Loc::Spilled,
        };
        let reason = match loc {
            Loc::Reg(_) => "colored",
            Loc::Spilled => reason_of.get(&n).copied().unwrap_or("spilled"),
        };
        tr.emit(AllocEvent::Decision(Decision {
            func: func.clone(),
            round,
            node: n,
            class: match class {
                RegClass::Int => "int".to_string(),
                RegClass::Float => "float".to_string(),
            },
            benefit_caller: node.benefit_caller(),
            benefit_callee: node.benefit_callee(),
            bs_key: match meta.bs {
                Some(BsKey::MaxBenefit) => "max_benefit".to_string(),
                Some(BsKey::BenefitDelta) => "benefit_delta".to_string(),
                None => "none".to_string(),
            },
            bs_value: meta.bs.map(|k| node.bs_key(k)),
            pref_votes: node.calls_crossed.len() as u32,
            pref_forced: meta.forced.is_some_and(|f| f.contains(&n)),
            loc: match loc {
                Loc::Reg(r) => r.to_string(),
                Loc::Spilled => "spilled".to_string(),
            },
            reason: reason.to_string(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_context;
    use ccra_analysis::FrequencyInfo;
    use ccra_ir::{BinOp, Callee, FunctionBuilder, Program};
    use ccra_machine::CostModel;

    /// Builds a context for a single-function program.
    fn ctx_for(f: ccra_ir::Function) -> FuncContext {
        let mut p = Program::new();
        let id = p.add_function(f);
        p.set_main(id);
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        build_context(p.function(id), freq.func(id), &CostModel::paper()).expect("context builds")
    }

    /// k simultaneously-live int values, consumed one by one.
    fn pressure_function(k: usize) -> ccra_ir::Function {
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..k).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.iconst(v, i as i64);
        }
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(acc, 0);
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn enough_registers_means_no_spills() {
        let ctx = ctx_for(pressure_function(5));
        let file = RegisterFile::new(8, 4, 0, 0);
        let res = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        assert!(res.spilled.is_empty(), "spilled: {:?}", res.spilled);
        assert_eq!(res.colors.len(), ctx.bank_nodes(RegClass::Int).len());
    }

    #[test]
    fn assignment_avoids_conflicts() {
        let ctx = ctx_for(pressure_function(6));
        let file = RegisterFile::new(8, 4, 2, 0);
        let res = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        for (&a, &ra) in &res.colors {
            for (&b, &rb) in &res.colors {
                if a != b && ctx.graph.interferes(a, b) {
                    assert_ne!(ra, rb, "conflicting nodes {a},{b} share {ra}");
                }
            }
        }
    }

    #[test]
    fn pressure_forces_spills_under_chaitin() {
        let ctx = ctx_for(pressure_function(10));
        let file = RegisterFile::new(6, 4, 0, 0);
        let res = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        assert!(
            !res.spilled.is_empty(),
            "10 simultaneous values into 6 registers"
        );
    }

    #[test]
    fn optimistic_never_worse_on_spill_count() {
        let ctx = ctx_for(pressure_function(10));
        let file = RegisterFile::new(6, 4, 0, 0);
        let chaitin = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        let optimistic =
            allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::optimistic())
                .expect("bank allocates");
        assert!(optimistic.spilled.len() <= chaitin.spilled.len());
    }

    /// One value live across a hot call with few references: the base
    /// allocator parks it in a callee-save register, paying entry/exit cost;
    /// storage-class analysis must spill it instead when that is cheaper.
    #[test]
    fn storage_class_spills_wrong_kind_residents() {
        let mut b = FunctionBuilder::new("main");
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        let r = b.new_vreg(RegClass::Int);
        b.call(Callee::External("g"), vec![], Some(r));
        b.binary(BinOp::Add, r, r, x);
        b.ret(Some(r));
        let ctx = ctx_for(b.finish());
        let file = RegisterFile::new(6, 4, 3, 3);

        // x crosses the call: spill_cost 2 (def+use), caller_cost 2,
        // callee_cost 2 -> all benefits <= 0; register residence is not
        // worth it.
        let res = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::improved())
            .expect("bank allocates");
        let crossing: Vec<u32> = ctx
            .bank_nodes(RegClass::Int)
            .into_iter()
            .filter(|&n| ctx.nodes[n as usize].crosses_calls())
            .collect();
        assert_eq!(crossing.len(), 1);
        // benefit_callee == 0 (not > 0), benefit_caller == 0: the shared
        // model spills the share set since 2 < callee_cost is false (2<2)…
        // caller: benefit == 0 not < 0. The node may stay; the important
        // invariant is that base never spills here:
        let base = allocate_bank_chaitin(&ctx, RegClass::Int, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        assert!(base.spilled.is_empty());
        assert!(res.spilled.len() <= 1);
    }

    #[test]
    fn preference_decision_forces_excess_to_caller() {
        // Three values live across a call executed 20 times (so their
        // caller-save cost exceeds their callee-save cost and they all
        // prefer callee-save registers), but only one callee-save register
        // exists: two must be forced to prefer caller-save.
        let mut b = FunctionBuilder::new("main");
        let vs: Vec<_> = (0..3).map(|_| b.new_vreg(RegClass::Int)).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.iconst(v, i as i64);
        }
        let i = b.new_vreg(RegClass::Int);
        let n = b.new_vreg(RegClass::Int);
        let one = b.new_vreg(RegClass::Int);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(i, 0);
        b.iconst(n, 20);
        b.iconst(one, 1);
        b.iconst(acc, 0);
        let head = b.reserve_block();
        let body = b.reserve_block();
        let exit = b.reserve_block();
        b.jump(head);
        b.switch_to(head);
        let c = b.new_vreg(RegClass::Int);
        b.cmp(ccra_ir::CmpOp::Lt, c, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.call(Callee::External("g"), vec![], None);
        // Heavy use keeps spill cost above callee cost.
        for &v in &vs {
            b.binary(BinOp::Add, acc, acc, v);
        }
        b.binary(BinOp::Add, i, i, one);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(acc));
        let ctx = ctx_for(b.finish());
        let file = RegisterFile::new(6, 4, 1, 0);
        let forced = preference_decision(&ctx, RegClass::Int, &file);
        // The crossing, callee-preferring candidates include the three
        // values plus the loop-carried i/acc (n, one also cross). With
        // M = 1, all but one are forced to caller-save preference.
        let candidates: Vec<u32> = ctx
            .bank_nodes(RegClass::Int)
            .into_iter()
            .filter(|&n| {
                let node = &ctx.nodes[n as usize];
                node.crosses_calls() && node.benefit_callee() > node.benefit_caller()
            })
            .collect();
        assert!(
            candidates.len() > 1,
            "test needs competition for callee regs"
        );
        assert_eq!(forced.len(), candidates.len() - 1, "L - M are forced");
        for n in &forced {
            assert!(ctx.nodes[*n as usize].crosses_calls());
        }
    }

    #[test]
    fn zero_colors_spills_everything() {
        let ctx = ctx_for(pressure_function(3));
        // Float bank has registers but int work gets... int bank can't be
        // zero (ABI minimum), so test the float bank of an int-only
        // function: no float nodes, nothing to spill.
        let file = RegisterFile::minimum();
        let res = allocate_bank_chaitin(&ctx, RegClass::Float, &file, &AllocatorConfig::base())
            .expect("bank allocates");
        assert!(res.colors.is_empty());
        assert!(res.spilled.is_empty());
    }

    #[test]
    fn benefit_simplification_orders_stack() {
        // Figure 3 of the paper: three mutually-interfering live ranges,
        // two callee-save registers. With BS, the two with the biggest
        // wrong-kind penalty get the callee-save registers.
        let mut b = FunctionBuilder::new("main");
        // Build three int values all live at once, all crossing a call.
        let x = b.new_vreg(RegClass::Int);
        let y = b.new_vreg(RegClass::Int);
        let z = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        b.iconst(y, 2);
        b.iconst(z, 3);
        b.call(Callee::External("g"), vec![], None);
        let acc = b.new_vreg(RegClass::Int);
        b.iconst(acc, 0);
        b.binary(BinOp::Add, acc, acc, x);
        b.binary(BinOp::Add, acc, acc, y);
        b.binary(BinOp::Add, acc, acc, z);
        b.ret(Some(acc));
        let ctx = ctx_for(b.finish());
        let file = RegisterFile::new(6, 4, 2, 0);
        let res = allocate_bank_chaitin(
            &ctx,
            RegClass::Int,
            &file,
            &AllocatorConfig::with_improvements(false, true, false),
        )
        .expect("bank allocates");
        // All three crossing nodes interfere; with N=8 they are all
        // unconstrained, so no spills — just a well-defined ordering.
        assert!(res.spilled.is_empty());
    }
}
