//! An independent post-allocation soundness checker.
//!
//! [`check_allocation`] takes the original (pre-allocation) function, the
//! rewritten function produced by the pipeline, and the allocation summary,
//! and verifies the allocation **without trusting any allocator
//! internals**: it recomputes webs, liveness, and interference from the
//! instruction streams alone and joins them against the per-reference
//! register claims ([`crate::RefAssignment`]) the pipeline publishes.
//!
//! The checker enforces four invariant families (DESIGN.md §8):
//!
//! 1. **Register exclusivity** — no two simultaneously-live webs share a
//!    physical register ([`CheckViolation::RegisterOverlap`]).
//! 2. **Location consistency** — every reference of a colored web reads or
//!    writes one single physical register of the right bank
//!    ([`CheckViolation::InconsistentWebLocation`],
//!    [`CheckViolation::ClassMismatch`], [`CheckViolation::UnassignedWeb`]),
//!    and save/restore markers bracket calls and entry/exit exactly where
//!    the crossing analysis says they must
//!    ([`CheckViolation::CallerSaveMismatch`],
//!    [`CheckViolation::CalleeSaveMismatch`],
//!    [`CheckViolation::ShuffleMismatch`]).
//! 3. **Spill-slot discipline** — every slot read is preceded by a write on
//!    every feasible path ([`CheckViolation::SpillLoadBeforeStore`]), and a
//!    slot never carries values of two *interfering* original webs
//!    ([`CheckViolation::SlotAliased`]).
//! 4. **Honest accounting** — the claimed overhead equals the overhead
//!    recomputed from the instructions actually present
//!    ([`CheckViolation::OverheadMismatch`]).
//!
//! The rewritten function must be the original plus inserted spill code and
//! overhead markers ([`CheckViolation::SkeletonMismatch`] otherwise); the
//! checker aligns the two streams positionally and maps rewritten webs back
//! to original webs through that alignment.

use std::collections::{HashMap, HashSet};

use ccra_analysis::{FuncFreq, Liveness, WebId, Webs};
use ccra_ir::{BlockId, Function, Inst, OverheadKind, SpillSlot, Terminator, VReg};
use ccra_machine::{PhysReg, SaveKind};

use crate::pipeline::FuncAllocation;

/// One invariant violation found by [`check_allocation`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckViolation {
    /// The rewritten function is not the original plus spill code and
    /// overhead markers.
    SkeletonMismatch {
        /// The block where the streams diverge.
        block: BlockId,
        /// What diverged.
        detail: String,
    },
    /// A web with register references has no claim in the assignment.
    UnassignedWeb {
        /// The web's virtual register.
        vreg: VReg,
        /// Block of the first unclaimed reference.
        block: BlockId,
        /// Instruction index of that reference.
        idx: u32,
    },
    /// Two references of one web claim different physical registers.
    InconsistentWebLocation {
        /// The web's virtual register.
        vreg: VReg,
        /// Block of the disagreeing reference.
        block: BlockId,
        /// Instruction index of that reference.
        idx: u32,
        /// The register claimed first.
        first: PhysReg,
        /// The disagreeing register.
        second: PhysReg,
    },
    /// A web is assigned a register of the wrong bank.
    ClassMismatch {
        /// The web's virtual register.
        vreg: VReg,
        /// The wrongly-banked register.
        reg: PhysReg,
    },
    /// Two interfering webs share a physical register.
    RegisterOverlap {
        /// The shared register.
        reg: PhysReg,
        /// Virtual register of one web.
        a: VReg,
        /// Virtual register of the other.
        b: VReg,
    },
    /// A spill slot is read before any write reaches it.
    SpillLoadBeforeStore {
        /// The slot.
        slot: SpillSlot,
        /// Block of the offending load.
        block: BlockId,
        /// Instruction index of the load.
        idx: u32,
    },
    /// A spill-slot read may observe the value of an *interfering* web.
    SlotAliased {
        /// The slot.
        slot: SpillSlot,
        /// Block of the offending load.
        block: BlockId,
        /// Instruction index of the load.
        idx: u32,
    },
    /// A call's caller-save marker disagrees with the live caller-save
    /// registers crossing it.
    CallerSaveMismatch {
        /// Block of the call.
        block: BlockId,
        /// Instruction index of the call.
        idx: u32,
        /// Save/restore operations the crossing analysis requires.
        expected: u32,
        /// Operations the marker actually accounts.
        got: u32,
    },
    /// Entry/exit callee-save markers disagree with the claimed count or
    /// with the registers actually assigned.
    CalleeSaveMismatch {
        /// Block of the offending site.
        block: BlockId,
        /// Instruction index of the site.
        idx: u32,
        /// Operations expected there.
        expected: u32,
        /// Operations found.
        got: u32,
    },
    /// A copy between differently-located webs lacks its shuffle marker, or
    /// a shuffle marker fronts a copy that needs none.
    ShuffleMismatch {
        /// Block of the copy.
        block: BlockId,
        /// Instruction index of the copy.
        idx: u32,
        /// Shuffle operations expected.
        expected: u32,
        /// Operations found.
        got: u32,
    },
    /// A claimed overhead component differs from the overhead recomputed
    /// from the rewritten instruction stream.
    OverheadMismatch {
        /// Which component (`"spill"`, `"caller_save"`, `"callee_save"`,
        /// `"shuffle"`).
        kind: &'static str,
        /// The component the allocation claims.
        claimed: f64,
        /// The component the checker recomputes.
        actual: f64,
    },
}

impl std::fmt::Display for CheckViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckViolation::SkeletonMismatch { block, detail } => {
                write!(f, "skeleton mismatch in block {}: {detail}", block.0)
            }
            CheckViolation::UnassignedWeb { vreg, block, idx } => write!(
                f,
                "web of v{} has no register claim at ({}, {idx})",
                vreg.0, block.0
            ),
            CheckViolation::InconsistentWebLocation {
                vreg,
                block,
                idx,
                first,
                second,
            } => write!(
                f,
                "web of v{} claims both {first} and {second} (at ({}, {idx}))",
                vreg.0, block.0
            ),
            CheckViolation::ClassMismatch { vreg, reg } => {
                write!(f, "web of v{} assigned wrong-bank register {reg}", vreg.0)
            }
            CheckViolation::RegisterOverlap { reg, a, b } => write!(
                f,
                "interfering webs of v{} and v{} both in {reg}",
                a.0, b.0
            ),
            CheckViolation::SpillLoadBeforeStore { slot, block, idx } => write!(
                f,
                "slot {} read at ({}, {idx}) before any store",
                slot.0, block.0
            ),
            CheckViolation::SlotAliased { slot, block, idx } => write!(
                f,
                "slot {} read at ({}, {idx}) may hold an interfering web's value",
                slot.0, block.0
            ),
            CheckViolation::CallerSaveMismatch {
                block,
                idx,
                expected,
                got,
            } => write!(
                f,
                "call at ({}, {idx}): caller-save marker accounts {got} ops, crossing analysis requires {expected}",
                block.0
            ),
            CheckViolation::CalleeSaveMismatch {
                block,
                idx,
                expected,
                got,
            } => write!(
                f,
                "callee-save marker at ({}, {idx}): {got} ops, expected {expected}",
                block.0
            ),
            CheckViolation::ShuffleMismatch {
                block,
                idx,
                expected,
                got,
            } => write!(
                f,
                "copy at ({}, {idx}): shuffle marker accounts {got} ops, expected {expected}",
                block.0
            ),
            CheckViolation::OverheadMismatch {
                kind,
                claimed,
                actual,
            } => write!(
                f,
                "claimed {kind} overhead {claimed} differs from recomputed {actual}"
            ),
        }
    }
}

/// Is `inst` one the pipeline may insert (and the skeleton match skips)?
fn is_inserted(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::SpillLoad { .. } | Inst::SpillStore { .. } | Inst::Overhead { .. }
    )
}

/// May `rew` stand where `orig` stood? Identical, or a spill temporary
/// substituted for the spilled original operand.
fn operand_ok(rewritten: &Function, orig: VReg, rew: VReg) -> bool {
    orig == rew || rewritten.vreg(rew).is_spill_temp
}

/// Positionally matches one original instruction against its rewritten
/// counterpart, tolerating spill-temporary operand substitution.
fn same_shape(rewritten: &Function, o: &Inst, r: &Inst) -> bool {
    let ok = |a: VReg, b: VReg| operand_ok(rewritten, a, b);
    match (o, r) {
        (Inst::IConst { dst: d1, value: v1 }, Inst::IConst { dst: d2, value: v2 }) => {
            ok(*d1, *d2) && v1 == v2
        }
        (Inst::FConst { dst: d1, value: v1 }, Inst::FConst { dst: d2, value: v2 }) => {
            ok(*d1, *d2) && v1.to_bits() == v2.to_bits()
        }
        (
            Inst::Binary {
                op: o1,
                dst: d1,
                lhs: l1,
                rhs: r1,
            },
            Inst::Binary {
                op: o2,
                dst: d2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && ok(*d1, *d2) && ok(*l1, *l2) && ok(*r1, *r2),
        (
            Inst::Unary {
                op: o1,
                dst: d1,
                src: s1,
            },
            Inst::Unary {
                op: o2,
                dst: d2,
                src: s2,
            },
        ) => o1 == o2 && ok(*d1, *d2) && ok(*s1, *s2),
        (
            Inst::Cmp {
                op: o1,
                dst: d1,
                lhs: l1,
                rhs: r1,
            },
            Inst::Cmp {
                op: o2,
                dst: d2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && ok(*d1, *d2) && ok(*l1, *l2) && ok(*r1, *r2),
        (
            Inst::Load {
                dst: d1,
                addr: a1,
                offset: f1,
            },
            Inst::Load {
                dst: d2,
                addr: a2,
                offset: f2,
            },
        ) => ok(*d1, *d2) && ok(*a1, *a2) && f1 == f2,
        (
            Inst::Store {
                src: s1,
                addr: a1,
                offset: f1,
            },
            Inst::Store {
                src: s2,
                addr: a2,
                offset: f2,
            },
        ) => ok(*s1, *s2) && ok(*a1, *a2) && f1 == f2,
        (Inst::Copy { dst: d1, src: s1 }, Inst::Copy { dst: d2, src: s2 }) => {
            ok(*d1, *d2) && ok(*s1, *s2)
        }
        (
            Inst::Call {
                callee: c1,
                args: a1,
                ret: r1,
            },
            Inst::Call {
                callee: c2,
                args: a2,
                ret: r2,
            },
        ) => {
            c1 == c2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(&x, &y)| ok(x, y))
                && match (r1, r2) {
                    (Some(x), Some(y)) => ok(*x, *y),
                    (None, None) => true,
                    _ => false,
                }
        }
        _ => false,
    }
}

/// One per-block positional alignment: `pairs[k] = (rewritten index,
/// original index)` for every surviving original instruction.
type Skeleton = HashMap<BlockId, Vec<(u32, u32)>>;

/// Step 0: verify the rewritten function is the original plus inserted
/// instructions, and compute the alignment.
fn match_skeleton(
    original: &Function,
    rewritten: &Function,
    violations: &mut Vec<CheckViolation>,
) -> Option<Skeleton> {
    if original.num_blocks() != rewritten.num_blocks()
        || original.entry() != rewritten.entry()
        || original.params() != rewritten.params()
    {
        violations.push(CheckViolation::SkeletonMismatch {
            block: original.entry(),
            detail: "block count, entry, or parameter list changed".to_string(),
        });
        return None;
    }
    let mut skeleton = Skeleton::new();
    for (bb, ob) in original.blocks() {
        let rb = rewritten.block(bb);
        let mut pairs = Vec::with_capacity(ob.insts.len());
        let mut oi = 0usize;
        for (rj, r) in rb.insts.iter().enumerate() {
            if is_inserted(r) {
                continue;
            }
            let Some(o) = ob.insts.get(oi) else {
                violations.push(CheckViolation::SkeletonMismatch {
                    block: bb,
                    detail: format!("extra non-inserted instruction at index {rj}: {r:?}"),
                });
                return None;
            };
            if !same_shape(rewritten, o, r) {
                violations.push(CheckViolation::SkeletonMismatch {
                    block: bb,
                    detail: format!("instruction {oi} changed: {o:?} vs {r:?}"),
                });
                return None;
            }
            pairs.push((rj as u32, oi as u32));
            oi += 1;
        }
        if oi != ob.insts.len() {
            violations.push(CheckViolation::SkeletonMismatch {
                block: bb,
                detail: format!("original instruction {oi} has no counterpart"),
            });
            return None;
        }
        let term_ok = match (&ob.term, &rb.term) {
            (Terminator::Jump(a), Terminator::Jump(b)) => a == b,
            (
                Terminator::Branch {
                    cond: c1,
                    then_bb: t1,
                    else_bb: e1,
                },
                Terminator::Branch {
                    cond: c2,
                    then_bb: t2,
                    else_bb: e2,
                },
            ) => operand_ok(rewritten, *c1, *c2) && t1 == t2 && e1 == e2,
            (Terminator::Return(None), Terminator::Return(None)) => true,
            (Terminator::Return(Some(a)), Terminator::Return(Some(b))) => {
                operand_ok(rewritten, *a, *b)
            }
            _ => false,
        };
        if !term_ok {
            violations.push(CheckViolation::SkeletonMismatch {
                block: bb,
                detail: format!("terminator changed: {:?} vs {:?}", ob.term, rb.term),
            });
            return None;
        }
        skeleton.insert(bb, pairs);
    }
    Some(skeleton)
}

/// Step 1: resolve every rewritten web to its claimed register (or none).
fn resolve_locations(
    rewritten: &Function,
    webs: &Webs,
    alloc: &FuncAllocation,
    violations: &mut Vec<CheckViolation>,
) -> HashMap<WebId, PhysReg> {
    let mut loc: HashMap<WebId, PhysReg> = HashMap::new();
    for (id, data) in webs.iter() {
        let mut chosen: Option<PhysReg> = None;
        let mut refs = 0usize;
        let mut first_ref: Option<(BlockId, u32)> = None;
        let defs = data.defs.iter().map(|&(bb, idx)| (bb, idx, true));
        let uses = data.uses.iter().map(|&(bb, idx)| (bb, idx, false));
        for (bb, idx, is_def) in defs.chain(uses) {
            refs += 1;
            if first_ref.is_none() {
                first_ref = Some((bb, idx));
            }
            if let Some(&reg) = alloc.assignment.get(&(bb, idx, data.vreg, is_def)) {
                match chosen {
                    Some(prev) if prev != reg => {
                        violations.push(CheckViolation::InconsistentWebLocation {
                            vreg: data.vreg,
                            block: bb,
                            idx,
                            first: prev,
                            second: reg,
                        });
                    }
                    _ => chosen = Some(reg),
                }
            }
        }
        match chosen {
            Some(reg) => {
                if reg.class != rewritten.class_of(data.vreg) {
                    violations.push(CheckViolation::ClassMismatch {
                        vreg: data.vreg,
                        reg,
                    });
                }
                loc.insert(id, reg);
            }
            None => {
                // A web with no claim is in memory — legitimate only for a
                // spilled web whose every remaining reference is the spill
                // code itself, i.e. defs feeding `SpillStore`s (spilled or
                // unused parameters keep a def-less web whose uses are the
                // entry stores).
                let all_spill_refs = data.defs.iter().chain(data.uses.iter()).all(|&(bb, idx)| {
                    matches!(
                        rewritten.block(bb).insts.get(idx as usize),
                        Some(Inst::SpillStore { .. } | Inst::SpillLoad { .. })
                    )
                });
                let benign_param = data.is_param && (refs == 0 || all_spill_refs);
                if refs > 0 && !all_spill_refs && !benign_param {
                    if let Some((bb, idx)) = first_ref {
                        violations.push(CheckViolation::UnassignedWeb {
                            vreg: data.vreg,
                            block: bb,
                            idx,
                        });
                    }
                }
            }
        }
    }
    loc
}

/// The interference facts the checker derives itself from one function:
/// normalized interfering web pairs and, per call site, the webs live
/// across it.
struct ScanFacts {
    pairs: HashSet<(WebId, WebId)>,
    crossings: HashMap<(BlockId, u32), Vec<WebId>>,
}

/// Mirrors the allocator's backward interference scan (`build::scan_webs`)
/// on an arbitrary function, but records raw facts instead of graph edges.
fn scan_interference(f: &Function, webs: &Webs) -> ScanFacts {
    let liveness = Liveness::compute(f);
    let mut pairs: HashSet<(WebId, WebId)> = HashSet::new();
    let mut crossings: HashMap<(BlockId, u32), Vec<WebId>> = HashMap::new();
    let mut record = |a: WebId, b: WebId| {
        if a != b {
            pairs.insert((a.min(b), a.max(b)));
        }
    };
    for (bb, block) in f.blocks() {
        // Resolve each live-out vreg to the web reaching the block end.
        let mut last_def: HashMap<VReg, WebId> = HashMap::new();
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                if let Some(w) = webs.def_web(bb, i as u32, d) {
                    last_def.insert(d, w);
                }
            }
        }
        let mut live: HashSet<WebId> = HashSet::new();
        for v in liveness.live_out(bb).iter() {
            let v = VReg(v as u32);
            let w = last_def
                .get(&v)
                .copied()
                .or_else(|| webs.live_in_web(bb, v));
            if let Some(w) = w {
                live.insert(w);
            }
        }
        if let Some(v) = block.term.use_reg() {
            if let Some(w) = webs.use_web(bb, block.insts.len() as u32, v) {
                live.insert(w);
            }
        }
        let mut uses = Vec::new();
        for (i, inst) in block.insts.iter().enumerate().rev() {
            if let Some(d) = inst.def() {
                if let Some(w) = webs.def_web(bb, i as u32, d) {
                    // Copy sources don't interfere with the copy's target.
                    let copy_src = match inst {
                        Inst::Copy { src, .. } => webs.use_web(bb, i as u32, *src),
                        _ => None,
                    };
                    for &l in &live {
                        if Some(l) != copy_src {
                            record(w, l);
                        }
                    }
                    live.remove(&w);
                }
            }
            if inst.is_call() {
                let mut crossing: Vec<WebId> = live.iter().copied().collect();
                crossing.sort_by_key(|w| w.0);
                crossings.insert((bb, i as u32), crossing);
            }
            uses.clear();
            inst.collect_uses(&mut uses);
            for &u in &uses {
                if let Some(w) = webs.use_web(bb, i as u32, u) {
                    live.insert(w);
                }
            }
        }
        if bb == f.entry() {
            // Parameters are all live on entry: they interfere with each
            // other and with anything live at the top of the entry block.
            let mut params: Vec<WebId> = Vec::new();
            for &p in f.params() {
                if let Some(w) = webs.param_web(p) {
                    params.push(w);
                }
            }
            for (i, &a) in params.iter().enumerate() {
                for &b in &params[i + 1..] {
                    if f.class_of(webs.web(a).vreg) == f.class_of(webs.web(b).vreg) {
                        record(a, b);
                    }
                }
                for &l in &live {
                    record(a, l);
                }
            }
        }
    }
    ScanFacts { pairs, crossings }
}

/// Step 2: no two interfering webs of the same class share a register.
fn check_overlap(
    rewritten: &Function,
    webs: &Webs,
    facts: &ScanFacts,
    loc: &HashMap<WebId, PhysReg>,
    violations: &mut Vec<CheckViolation>,
) {
    for &(a, b) in &facts.pairs {
        if let (Some(&ra), Some(&rb)) = (loc.get(&a), loc.get(&b)) {
            if ra == rb {
                let (va, vb) = (webs.web(a).vreg, webs.web(b).vreg);
                if rewritten.class_of(va) == rewritten.class_of(vb) {
                    violations.push(CheckViolation::RegisterOverlap {
                        reg: ra,
                        a: va,
                        b: vb,
                    });
                }
            }
        }
    }
}

/// Maps each rewritten web to the original web whose value it carries
/// (where the skeleton alignment determines one unambiguously).
fn map_to_original(
    original: &Function,
    rewritten: &Function,
    webs_o: &Webs,
    webs_r: &Webs,
    skeleton: &Skeleton,
) -> HashMap<WebId, WebId> {
    let mut mu: HashMap<WebId, WebId> = HashMap::new();
    let mut conflicted: HashSet<WebId> = HashSet::new();
    let mut propose = |r: Option<WebId>, o: Option<WebId>| {
        if let (Some(r), Some(o)) = (r, o) {
            match mu.get(&r) {
                Some(&prev) if prev != o => {
                    conflicted.insert(r);
                }
                _ => {
                    mu.insert(r, o);
                }
            }
        }
    };
    for &p in original.params() {
        propose(webs_r.param_web(p), webs_o.param_web(p));
    }
    for (bb, ob) in original.blocks() {
        let Some(pairs) = skeleton.get(&bb) else {
            continue;
        };
        let rb = rewritten.block(bb);
        for &(rj, oi) in pairs {
            let (o, r) = (&ob.insts[oi as usize], &rb.insts[rj as usize]);
            if let (Some(od), Some(rd)) = (o.def(), r.def()) {
                propose(webs_r.def_web(bb, rj, rd), webs_o.def_web(bb, oi, od));
            }
            for (ou, ru) in o.uses().into_iter().zip(r.uses()) {
                propose(webs_r.use_web(bb, rj, ru), webs_o.use_web(bb, oi, ou));
            }
        }
        if let (Some(ov), Some(rv)) = (ob.term.use_reg(), rb.term.use_reg()) {
            propose(
                webs_r.use_web(bb, rb.insts.len() as u32, rv),
                webs_o.use_web(bb, ob.insts.len() as u32, ov),
            );
        }
    }
    for r in conflicted {
        mu.remove(&r);
    }
    mu
}

/// What a spill slot may hold at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Tag {
    /// Never written on this path.
    Undef,
    /// Written with a value the checker cannot attribute to an original
    /// web (a chained re-spill temporary, for example).
    Unknown,
    /// Holds the value of this original web.
    Orig(WebId),
}

/// Step 3: forward dataflow over spill slots — reads reached by writes,
/// and no slot carrying two interfering original webs' values.
fn check_slots(
    rewritten: &Function,
    webs_r: &Webs,
    mu: &HashMap<WebId, WebId>,
    orig_facts: &ScanFacts,
    violations: &mut Vec<CheckViolation>,
) {
    let num_slots = rewritten.num_spill_slots() as usize;
    if num_slots == 0 {
        return;
    }
    let stored_tag = |bb: BlockId, j: u32, src: VReg| -> Tag {
        match webs_r.use_web(bb, j, src).and_then(|w| mu.get(&w)) {
            Some(&o) => Tag::Orig(o),
            None => Tag::Unknown,
        }
    };
    // Block-entry states; the entry block starts all-Undef, everything else
    // starts empty (empty = not yet reached).
    let empty: Vec<HashSet<Tag>> = vec![HashSet::new(); num_slots];
    let mut state_in: HashMap<BlockId, Vec<HashSet<Tag>>> = HashMap::new();
    for bb in rewritten.block_ids() {
        state_in.insert(bb, empty.clone());
    }
    if let Some(s) = state_in.get_mut(&rewritten.entry()) {
        for slot in s.iter_mut() {
            slot.insert(Tag::Undef);
        }
    }
    let transfer = |bb: BlockId, mut state: Vec<HashSet<Tag>>| -> Vec<HashSet<Tag>> {
        for (j, inst) in rewritten.block(bb).insts.iter().enumerate() {
            if let Inst::SpillStore { slot, src } = inst {
                let tag = stored_tag(bb, j as u32, *src);
                let s = &mut state[slot.index()];
                s.clear();
                s.insert(tag);
            }
        }
        state
    };
    let reached = |state: &[HashSet<Tag>]| state.iter().any(|s| !s.is_empty());
    let mut changed = true;
    while changed {
        changed = false;
        for bb in rewritten.block_ids() {
            let Some(in_state) = state_in.get(&bb) else {
                continue;
            };
            if !reached(in_state) && bb != rewritten.entry() {
                continue;
            }
            let out = transfer(bb, in_state.clone());
            for succ in rewritten.successors(bb) {
                let Some(succ_in) = state_in.get_mut(&succ) else {
                    continue;
                };
                for (slot, tags) in out.iter().enumerate() {
                    for &t in tags {
                        if succ_in[slot].insert(t) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    // Reporting walk.
    for bb in rewritten.block_ids() {
        let Some(in_state) = state_in.get(&bb) else {
            continue;
        };
        if !reached(in_state) && bb != rewritten.entry() {
            continue;
        }
        let mut state = in_state.clone();
        for (j, inst) in rewritten.block(bb).insts.iter().enumerate() {
            match inst {
                Inst::SpillLoad { dst, slot } => {
                    let tags = &state[slot.index()];
                    let has_value = tags
                        .iter()
                        .any(|t| matches!(t, Tag::Orig(_) | Tag::Unknown));
                    if tags.contains(&Tag::Undef) && !has_value {
                        violations.push(CheckViolation::SpillLoadBeforeStore {
                            slot: *slot,
                            block: bb,
                            idx: j as u32,
                        });
                    }
                    let expected = webs_r.def_web(bb, j as u32, *dst).and_then(|w| mu.get(&w));
                    if let Some(&exp) = expected {
                        for t in tags {
                            if let Tag::Orig(w) = t {
                                let key = (exp.min(*w), exp.max(*w));
                                if *w != exp && orig_facts.pairs.contains(&key) {
                                    violations.push(CheckViolation::SlotAliased {
                                        slot: *slot,
                                        block: bb,
                                        idx: j as u32,
                                    });
                                    break;
                                }
                            }
                        }
                    }
                }
                Inst::SpillStore { slot, src } => {
                    let tag = stored_tag(bb, j as u32, *src);
                    let s = &mut state[slot.index()];
                    s.clear();
                    s.insert(tag);
                }
                _ => {}
            }
        }
    }
}

/// Resolves the register location of one instruction reference.
fn ref_loc(
    webs: &Webs,
    loc: &HashMap<WebId, PhysReg>,
    bb: BlockId,
    idx: u32,
    v: VReg,
    is_def: bool,
) -> Option<PhysReg> {
    let w = if is_def {
        webs.def_web(bb, idx, v)
    } else {
        webs.use_web(bb, idx, v)
    };
    w.and_then(|w| loc.get(&w).copied())
}

/// Step 4: save/restore and shuffle markers are exactly where the crossing
/// analysis and the final coloring say they must be.
fn check_markers(
    rewritten: &Function,
    webs_r: &Webs,
    rew_facts: &ScanFacts,
    loc: &HashMap<WebId, PhysReg>,
    alloc: &FuncAllocation,
    violations: &mut Vec<CheckViolation>,
) {
    // Callee-save: a marker of `ops == claimed` as the entry block's first
    // instruction and as every return block's last instruction — nowhere
    // else — and the distinct callee-save registers actually assigned must
    // fit within the claimed count.
    let claimed = alloc.callee_regs_used as u32;
    let mut distinct: HashSet<PhysReg> = HashSet::new();
    for reg in loc.values() {
        if reg.kind == SaveKind::CalleeSave {
            distinct.insert(*reg);
        }
    }
    if distinct.len() as u32 > claimed {
        violations.push(CheckViolation::CalleeSaveMismatch {
            block: rewritten.entry(),
            idx: 0,
            expected: distinct.len() as u32,
            got: claimed,
        });
    }
    for (bb, block) in rewritten.blocks() {
        let is_return = matches!(block.term, Terminator::Return(_));
        let last = block.insts.len().saturating_sub(1);
        for (j, inst) in block.insts.iter().enumerate() {
            let Inst::Overhead { kind, ops } = inst else {
                continue;
            };
            match kind {
                OverheadKind::CalleeSave => {
                    let at_entry = bb == rewritten.entry() && j == 0;
                    let at_exit = is_return && j == last;
                    if !(at_entry || at_exit) || *ops != claimed || claimed == 0 {
                        violations.push(CheckViolation::CalleeSaveMismatch {
                            block: bb,
                            idx: j as u32,
                            expected: if at_entry || at_exit { claimed } else { 0 },
                            got: *ops,
                        });
                    }
                }
                OverheadKind::CallerSave => {
                    // Must front a call; its ops are validated below.
                    let fronts_call = block.insts.get(j + 1).map(|n| n.is_call()).unwrap_or(false);
                    if !fronts_call {
                        violations.push(CheckViolation::CallerSaveMismatch {
                            block: bb,
                            idx: j as u32,
                            expected: 0,
                            got: *ops,
                        });
                    }
                }
                OverheadKind::Shuffle => {
                    // Must front a copy needing one; validated below.
                    let fronts_copy = block.insts.get(j + 1).map(Inst::is_copy).unwrap_or(false);
                    if !fronts_copy {
                        violations.push(CheckViolation::ShuffleMismatch {
                            block: bb,
                            idx: j as u32,
                            expected: 0,
                            got: *ops,
                        });
                    }
                }
                OverheadKind::Spill => {}
            }
        }
        if claimed > 0 {
            if bb == rewritten.entry()
                && !matches!(
                    block.insts.first(),
                    Some(Inst::Overhead {
                        kind: OverheadKind::CalleeSave,
                        ..
                    })
                )
            {
                violations.push(CheckViolation::CalleeSaveMismatch {
                    block: bb,
                    idx: 0,
                    expected: claimed,
                    got: 0,
                });
            }
            if is_return
                && !matches!(
                    block.insts.last(),
                    Some(Inst::Overhead {
                        kind: OverheadKind::CalleeSave,
                        ..
                    })
                )
            {
                violations.push(CheckViolation::CalleeSaveMismatch {
                    block: bb,
                    idx: last as u32,
                    expected: claimed,
                    got: 0,
                });
            }
        }
        // Caller-save around calls, shuffle before copies.
        for (j, inst) in block.insts.iter().enumerate() {
            if inst.is_call() {
                let crossing = rew_facts
                    .crossings
                    .get(&(bb, j as u32))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                // Coalesced webs share one register and one save/restore
                // pair, so count distinct registers, not webs.
                let live_caller: HashSet<PhysReg> = crossing
                    .iter()
                    .filter_map(|w| loc.get(w).copied())
                    .filter(|r| r.kind == SaveKind::CallerSave)
                    .collect();
                let expected = 2 * live_caller.len() as u32;
                let got = match j.checked_sub(1).and_then(|k| block.insts.get(k)) {
                    Some(Inst::Overhead {
                        kind: OverheadKind::CallerSave,
                        ops,
                    }) => *ops,
                    _ => 0,
                };
                if got != expected {
                    violations.push(CheckViolation::CallerSaveMismatch {
                        block: bb,
                        idx: j as u32,
                        expected,
                        got,
                    });
                }
            }
            if let Inst::Copy { dst, src } = inst {
                let dl = ref_loc(webs_r, loc, bb, j as u32, *dst, true);
                let sl = ref_loc(webs_r, loc, bb, j as u32, *src, false);
                let expected = match (dl, sl) {
                    (Some(a), Some(b)) if a != b => 1u32,
                    _ => 0,
                };
                let got = match j.checked_sub(1).and_then(|k| block.insts.get(k)) {
                    Some(Inst::Overhead {
                        kind: OverheadKind::Shuffle,
                        ops,
                    }) => *ops,
                    _ => 0,
                };
                if got != expected {
                    violations.push(CheckViolation::ShuffleMismatch {
                        block: bb,
                        idx: j as u32,
                        expected,
                        got,
                    });
                }
            }
        }
    }
}

/// Step 5: the claimed overhead equals the overhead recomputed from the
/// rewritten instruction stream.
fn check_overhead(
    rewritten: &Function,
    freq: &FuncFreq,
    alloc: &FuncAllocation,
    violations: &mut Vec<CheckViolation>,
) {
    let actual = crate::accounting::weighted_overhead(rewritten, freq);
    let claimed = &alloc.overhead;
    for (kind, c, a) in [
        ("spill", claimed.spill, actual.spill),
        ("caller_save", claimed.caller_save, actual.caller_save),
        ("callee_save", claimed.callee_save, actual.callee_save),
        ("shuffle", claimed.shuffle, actual.shuffle),
    ] {
        if (c - a).abs() > 1e-6 {
            violations.push(CheckViolation::OverheadMismatch {
                kind,
                claimed: c,
                actual: a,
            });
        }
    }
}

/// Independently verifies one finished allocation.
///
/// `original` must be the pre-allocation function (no spill instructions or
/// overhead markers), `rewritten` and `alloc` the outputs of
/// [`crate::allocate_function`] (or the degraded fallback) for it, and
/// `freq` the same frequency information the allocator saw.
///
/// # Errors
///
/// Returns every invariant violation found. A skeleton mismatch aborts the
/// remaining checks (they would be meaningless against a rewrite that is
/// not the original program).
pub fn check_allocation(
    original: &Function,
    rewritten: &Function,
    freq: &FuncFreq,
    alloc: &FuncAllocation,
) -> Result<(), Vec<CheckViolation>> {
    let mut violations = Vec::new();
    let Some(skeleton) = match_skeleton(original, rewritten, &mut violations) else {
        return Err(violations);
    };
    let webs_r = Webs::compute(rewritten);
    let webs_o = Webs::compute(original);
    let loc = resolve_locations(rewritten, &webs_r, alloc, &mut violations);
    let rew_facts = scan_interference(rewritten, &webs_r);
    let orig_facts = scan_interference(original, &webs_o);
    check_overlap(rewritten, &webs_r, &rew_facts, &loc, &mut violations);
    let mu = map_to_original(original, rewritten, &webs_o, &webs_r, &skeleton);
    check_slots(rewritten, &webs_r, &mu, &orig_facts, &mut violations);
    check_markers(rewritten, &webs_r, &rew_facts, &loc, alloc, &mut violations);
    check_overhead(rewritten, freq, alloc, &mut violations);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Like [`check_allocation`], self-profiling into `metrics`: observes the
/// checker's wall-clock time in the `phase_check_micros` histogram and
/// counts `check_runs_total` / `check_violations_total`.
pub fn check_allocation_metered(
    original: &Function,
    rewritten: &Function,
    freq: &FuncFreq,
    alloc: &FuncAllocation,
    metrics: &mut crate::metrics::MetricsRegistry,
) -> Result<(), Vec<CheckViolation>> {
    let timer = metrics.timer();
    let result = check_allocation(original, rewritten, freq, alloc);
    metrics.observe_elapsed(crate::trace::Phase::Check.metric_name(), timer);
    metrics.inc("check_runs_total");
    if let Err(violations) = &result {
        metrics.add("check_violations_total", violations.len() as u64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::allocate_function;
    use crate::types::AllocatorConfig;
    use ccra_analysis::FrequencyInfo;
    use ccra_machine::{CostModel, RegisterFile};
    use ccra_workloads::{random_program, FuzzConfig};

    fn checked_setup() -> (ccra_ir::Program, ccra_ir::FuncId, FrequencyInfo) {
        let p = random_program(7, &FuzzConfig::default());
        let id = p.main().expect("main set");
        let freq = FrequencyInfo::profile(&p).expect("profile runs");
        (p, id, freq)
    }

    #[test]
    fn clean_allocation_passes() {
        let (p, id, freq) = checked_setup();
        let f = p.function(id);
        let (body, alloc) = allocate_function(
            f,
            freq.func(id),
            &RegisterFile::new(6, 4, 2, 2),
            &AllocatorConfig::improved(),
            &CostModel::paper(),
        )
        .expect("allocation succeeds");
        let res = check_allocation(f, &body, freq.func(id), &alloc);
        assert_eq!(res, Ok(()), "checker must accept a clean allocation");
    }

    #[test]
    fn corrupted_overhead_claim_is_rejected() {
        let (p, id, freq) = checked_setup();
        let f = p.function(id);
        let (body, mut alloc) = allocate_function(
            f,
            freq.func(id),
            &RegisterFile::new(6, 4, 2, 2),
            &AllocatorConfig::improved(),
            &CostModel::paper(),
        )
        .expect("allocation succeeds");
        alloc.overhead.spill += 100.0;
        let violations =
            check_allocation(f, &body, freq.func(id), &alloc).expect_err("must reject");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CheckViolation::OverheadMismatch { kind: "spill", .. })),
            "expected a spill OverheadMismatch, got {violations:?}"
        );
    }

    #[test]
    fn mutated_program_fails_skeleton_check() {
        let (p, id, freq) = checked_setup();
        let f = p.function(id);
        let (mut body, alloc) = allocate_function(
            f,
            freq.func(id),
            &RegisterFile::new(6, 4, 2, 2),
            &AllocatorConfig::improved(),
            &CostModel::paper(),
        )
        .expect("allocation succeeds");
        // Drop the first real (non-inserted) instruction anywhere.
        let (bb, pos) = body
            .block_ids()
            .find_map(|bb| {
                body.block(bb)
                    .insts
                    .iter()
                    .position(|i| !super::is_inserted(i))
                    .map(|pos| (bb, pos))
            })
            .expect("some block has a real instruction");
        body.block_mut(bb).insts.remove(pos);
        let violations =
            check_allocation(f, &body, freq.func(id), &alloc).expect_err("must reject");
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, CheckViolation::SkeletonMismatch { .. })),
            "expected SkeletonMismatch, got {violations:?}"
        );
    }
}
