//! Latency-aware admission control for the batch service: an AIMD
//! concurrency limiter driven by observed end-to-end latency against a
//! configurable SLO target.
//!
//! The submission queue bounds *memory*, not *latency*: a full queue makes
//! blocking submitters wait, but every job that does get in still pays the
//! whole queue in front of it. Under sustained overload the honest answer
//! is to stop accepting work the service cannot finish on time — the
//! pattern production schedulers converge on (Sui's transaction limiter,
//! TCP congestion control): **additive increase, multiplicative
//! decrease** on an admission window, with observed latency as the
//! congestion signal.
//!
//! The [`AdmissionController`] tracks how many admitted jobs are in the
//! system (queued + running) against a floating `limit`:
//!
//! * [`AdmissionController::try_admit`] admits while `admitted <
//!   floor(limit)`; beyond it the submission is **shed** — the caller gets
//!   a retry-after hint instead of a queue slot, and the shed is counted.
//! * [`AdmissionController::on_complete`] feeds back one finished job's
//!   end-to-end latency: at or under [`AdmissionConfig::slo_us`] the limit
//!   grows by [`AdmissionConfig::step`] (additive increase, toward
//!   [`AdmissionConfig::max_limit`]); over it the limit is multiplied by
//!   [`AdmissionConfig::backoff`] (multiplicative decrease, floored at
//!   [`AdmissionConfig::min_limit`]).
//! * [`AdmissionController::on_miss`] is the deadline-expiry signal — the
//!   job never ran, but it queued past its deadline, which is congestion
//!   evidence just like an over-SLO completion.
//! * [`AdmissionController::release`] returns a slot with no latency
//!   signal (a job cancelled while queued says nothing about load).
//!
//! The controller starts at full admission (`limit = max_limit`) and only
//! backs off on evidence; because increase is completion-driven, recovery
//! after a storm happens as the trickle of post-storm jobs completes on
//! time — which is exactly what the chaos harness asserts.
//!
//! Everything here is scheduling policy: whether a job is admitted affects
//! *which* jobs run, never the bytes of any accepted job's allocation. The
//! determinism quarantine (results byte-identical to serial) is untouched.

use std::sync::Mutex;

/// Tuning knobs of an [`AdmissionController`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// The end-to-end latency target, microseconds: completions at or
    /// under it grow the window, completions over it shrink it.
    pub slo_us: u64,
    /// The window never shrinks below this many jobs (≥ 1, so the service
    /// always makes progress and can observe recovery).
    pub min_limit: usize,
    /// The window never grows beyond this many jobs; also the starting
    /// limit (full admission until latency says otherwise).
    pub max_limit: usize,
    /// Multiplicative-decrease factor applied on an over-SLO completion
    /// or a deadline miss (clamped into `(0, 1)`; e.g. `0.5` halves the
    /// window).
    pub backoff: f64,
    /// Additive-increase step applied on an on-time completion (jobs;
    /// e.g. `1.0` re-opens one slot per good completion).
    pub step: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            slo_us: 50_000,
            min_limit: 1,
            max_limit: 64,
            backoff: 0.5,
            step: 1.0,
        }
    }
}

impl AdmissionConfig {
    fn min_limit(&self) -> f64 {
        self.min_limit.max(1) as f64
    }

    fn max_limit(&self) -> f64 {
        (self.max_limit.max(self.min_limit.max(1))) as f64
    }

    fn backoff(&self) -> f64 {
        if self.backoff > 0.0 && self.backoff < 1.0 {
            self.backoff
        } else {
            0.5
        }
    }
}

/// A point-in-time view of the limiter (see
/// [`AdmissionController::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSnapshot {
    /// The current window (fractional; admission compares against its
    /// floor).
    pub limit: f64,
    /// Admitted jobs currently in the system (queued + running).
    pub admitted: usize,
    /// Submissions shed because the window was full.
    pub shed: u64,
    /// Completions that met the SLO (window grew).
    pub on_time: u64,
    /// Completions over the SLO plus deadline misses (window shrank).
    pub late: u64,
}

#[derive(Debug)]
struct Inner {
    limit: f64,
    admitted: usize,
    shed: u64,
    on_time: u64,
    late: u64,
}

/// The AIMD admission limiter (see the module docs).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    inner: Mutex<Inner>,
}

impl AdmissionController {
    /// A controller at full admission (`limit = max_limit`).
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            inner: Mutex::new(Inner {
                limit: config.max_limit(),
                admitted: 0,
                shed: 0,
                on_time: 0,
                late: 0,
            }),
            config,
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests one admission slot.
    ///
    /// # Errors
    ///
    /// When the window is full the submission is shed: the error is a
    /// retry-after hint in microseconds (currently one SLO — roughly when
    /// the in-system jobs ahead of the caller should have drained if the
    /// service is healthy again).
    pub fn try_admit(&self) -> Result<(), u64> {
        let mut inner = self.inner.lock().expect("admission lock");
        if (inner.admitted as f64) < inner.limit.floor() {
            inner.admitted += 1;
            Ok(())
        } else {
            inner.shed += 1;
            Err(self.config.slo_us.max(1))
        }
    }

    /// Feeds back one admitted job's completion: frees its slot and
    /// applies AIMD on its end-to-end latency.
    pub fn on_complete(&self, e2e_us: u64) {
        let mut inner = self.inner.lock().expect("admission lock");
        inner.admitted = inner.admitted.saturating_sub(1);
        if e2e_us > self.config.slo_us {
            inner.late += 1;
            inner.limit = (inner.limit * self.config.backoff()).max(self.config.min_limit());
        } else {
            inner.on_time += 1;
            inner.limit = (inner.limit + self.config.step.max(0.0)).min(self.config.max_limit());
        }
    }

    /// Frees the slot of an admitted job that missed its deadline while
    /// queued — congestion evidence, so the window also backs off.
    pub fn on_miss(&self) {
        let mut inner = self.inner.lock().expect("admission lock");
        inner.admitted = inner.admitted.saturating_sub(1);
        inner.late += 1;
        inner.limit = (inner.limit * self.config.backoff()).max(self.config.min_limit());
    }

    /// Frees the slot of an admitted job with no latency signal (e.g.
    /// cancelled while queued).
    pub fn release(&self) {
        let mut inner = self.inner.lock().expect("admission lock");
        inner.admitted = inner.admitted.saturating_sub(1);
    }

    /// A consistent snapshot of the limiter's state.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let inner = self.inner.lock().expect("admission lock");
        AdmissionSnapshot {
            limit: inner.limit,
            admitted: inner.admitted,
            shed: inner.shed,
            on_time: inner.on_time,
            late: inner.late,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AdmissionConfig {
        AdmissionConfig {
            slo_us: 1_000,
            min_limit: 1,
            max_limit: 4,
            backoff: 0.5,
            step: 1.0,
        }
    }

    #[test]
    fn starts_at_full_admission_and_sheds_beyond_the_window() {
        let ctrl = AdmissionController::new(small());
        for _ in 0..4 {
            ctrl.try_admit().expect("within the window");
        }
        let hint = ctrl.try_admit().expect_err("the fifth is shed");
        assert_eq!(hint, 1_000, "retry-after hint is one SLO");
        let snap = ctrl.snapshot();
        assert_eq!(snap.admitted, 4);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.limit, 4.0);
    }

    #[test]
    fn over_slo_completions_shrink_multiplicatively_to_the_floor() {
        let ctrl = AdmissionController::new(small());
        ctrl.try_admit().expect("admitted");
        ctrl.on_complete(10_000); // 4 -> 2
        assert_eq!(ctrl.snapshot().limit, 2.0);
        ctrl.try_admit().expect("admitted");
        ctrl.on_complete(10_000); // 2 -> 1
        ctrl.try_admit().expect("admitted");
        ctrl.on_complete(10_000); // floored at 1
        let snap = ctrl.snapshot();
        assert_eq!(snap.limit, 1.0);
        assert_eq!(snap.late, 3);
        assert_eq!(snap.admitted, 0);
        // At the floor, exactly one job is admitted at a time.
        ctrl.try_admit().expect("one slot at the floor");
        ctrl.try_admit().expect_err("the floor is one");
    }

    #[test]
    fn on_time_completions_grow_additively_to_the_ceiling() {
        let ctrl = AdmissionController::new(small());
        ctrl.try_admit().expect("admitted");
        ctrl.on_complete(10_000); // collapse to 2
        for _ in 0..5 {
            ctrl.try_admit().expect("admitted");
            ctrl.on_complete(10); // +1 each, capped at 4
        }
        let snap = ctrl.snapshot();
        assert_eq!(snap.limit, 4.0, "recovered to the ceiling, not past it");
        assert_eq!(snap.on_time, 5);
    }

    #[test]
    fn deadline_misses_back_off_and_cancellations_do_not() {
        let ctrl = AdmissionController::new(small());
        ctrl.try_admit().expect("admitted");
        ctrl.try_admit().expect("admitted");
        ctrl.on_miss(); // 4 -> 2, slot freed
        let snap = ctrl.snapshot();
        assert_eq!(snap.limit, 2.0);
        assert_eq!(snap.admitted, 1);
        ctrl.release(); // neutral: slot freed, limit unchanged
        let snap = ctrl.snapshot();
        assert_eq!(snap.limit, 2.0);
        assert_eq!(snap.admitted, 0);
        assert_eq!(snap.late, 1);
    }

    /// The satellite's synthetic latency step: a run of over-SLO
    /// completions collapses the window (sheds engage); stepping latency
    /// back under the SLO re-opens it to full admission (sheds release).
    #[test]
    fn latency_step_engages_and_releases_the_limiter() {
        let cfg = AdmissionConfig {
            max_limit: 8,
            ..small()
        };
        let ctrl = AdmissionController::new(cfg);
        // Latency steps up: every completion is 10x the SLO.
        for _ in 0..6 {
            ctrl.try_admit().expect("still making progress");
            ctrl.on_complete(cfg.slo_us * 10);
        }
        assert_eq!(ctrl.snapshot().limit, 1.0, "collapsed to the floor");
        ctrl.try_admit().expect("the floor slot");
        ctrl.try_admit()
            .expect_err("engaged: second submission shed");
        ctrl.on_complete(cfg.slo_us * 10);
        // Latency steps back down: on-time completions re-open one slot
        // each until the ceiling.
        for _ in 0..7 {
            ctrl.try_admit().expect("recovering window admits");
            ctrl.on_complete(cfg.slo_us / 10);
        }
        assert_eq!(ctrl.snapshot().limit, 8.0, "released to full admission");
        for _ in 0..8 {
            ctrl.try_admit().expect("full window admits");
        }
        let shed_before = ctrl.snapshot().shed;
        ctrl.try_admit()
            .expect_err("beyond the full window still sheds");
        assert_eq!(ctrl.snapshot().shed, shed_before + 1);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            slo_us: 0,
            min_limit: 0,
            max_limit: 0,
            backoff: 7.5,
            step: -3.0,
        });
        // min/max clamp to 1; backoff falls back to 0.5; step to 0.
        ctrl.try_admit().expect("limit clamped to at least one");
        assert_eq!(ctrl.try_admit().expect_err("window of one"), 1);
        ctrl.on_complete(5);
        let snap = ctrl.snapshot();
        assert_eq!(snap.limit, 1.0);
        assert_eq!(snap.admitted, 0);
    }
}
