//! The batch service front-end: submit many [`Program`]s, collect
//! per-job results.
//!
//! Where [`crate::driver::ParallelDriver`] parallelizes *within* one
//! program (per-function sharding), [`BatchService`] parallelizes *across*
//! programs — the compile-service shape: a bounded submission queue with
//! blocking backpressure ([`BatchService::submit`]) or caller-side load
//! shedding ([`BatchService::try_submit`]), a fixed pool of service
//! workers, and a status per job ([`BatchStatus`]) so one failed
//! submission never hides or poisons its siblings. The two layers compose:
//! [`BatchConfig::shard_workers`] > 1 gives every service worker its own
//! [`ParallelDriver`] for the functions of each program it picks up.
//!
//! Results are collected with [`BatchService::shutdown`], which closes the
//! queue, drains it, joins the workers, and returns results **sorted by
//! submission id** — deterministic presentation over a nondeterministic
//! execution order.
//!
//! # Observation
//!
//! The service keeps its own [`MetricsRegistry`] (the `batch_*` names
//! below): submissions, completions by status, backpressure stalls, queue
//! wait and job run histograms. A cloneable [`BatchHandle`]
//! ([`BatchService::handle`]) reads live state — queue depth, in-flight
//! count, per-job statuses so far, and a metrics snapshot with scrape-time
//! gauges — without touching the service's lifecycle; it is what the
//! [`crate::driver::status`] HTTP endpoint serves. Service metrics are
//! wall-clock and scheduling facts: they stay out of allocation results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, RegisterFile};
use serde::json::Value;

use crate::driver::parallel::{AllocRequest, ParallelDriver};
use crate::driver::queue::{BoundedQueue, PushError, QueueStats};
use crate::metrics::MetricsRegistry;
use crate::pipeline::ProgramAllocation;
use crate::trace::NoopSink;
use crate::types::AllocatorConfig;

/// Service counter: jobs accepted by `submit`/`try_submit`.
pub const METRIC_SUBMITTED: &str = "batch_jobs_submitted_total";
/// Service counter: jobs that completed with [`BatchStatus::Ok`].
pub const METRIC_COMPLETED: &str = "batch_jobs_completed_total";
/// Service counter: jobs that completed with [`BatchStatus::Degraded`].
pub const METRIC_DEGRADED: &str = "batch_jobs_degraded_total";
/// Service counter: jobs that completed with [`BatchStatus::Failed`].
pub const METRIC_FAILED: &str = "batch_jobs_failed_total";
/// Service counter: blocking submits that found the queue full and stalled.
pub const METRIC_STALLS: &str = "batch_backpressure_stalls_total";
/// Service histogram: microseconds a job sat in the submission queue.
pub const METRIC_QUEUE_WAIT: &str = "batch_queue_wait_micros";
/// Service histogram: microseconds a job took to run (profiling included).
pub const METRIC_JOB_MICROS: &str = "batch_job_micros";

/// Sizing knobs for a [`BatchService`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Service workers — whole programs allocated concurrently (≥ 1).
    pub workers: usize,
    /// Submission-queue capacity; submitters beyond it block (≥ 1).
    pub queue_capacity: usize,
    /// Per-program [`ParallelDriver`] workers (1 = allocate each
    /// program's functions serially within its service worker).
    pub shard_workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            shard_workers: 1,
        }
    }
}

/// One submission: a program plus the allocation parameters to run it
/// under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// A caller-chosen label, echoed in the result.
    pub name: String,
    /// The program to allocate.
    pub program: Program,
    /// The register file.
    pub file: RegisterFile,
    /// The allocator configuration.
    pub config: AllocatorConfig,
}

/// How one batch job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every function allocated strictly.
    Ok,
    /// The program allocated, but some functions fell back to the
    /// degraded spill-everything allocation.
    Degraded {
        /// How many functions degraded.
        funcs: usize,
    },
    /// The job produced no allocation (profiling failed, or the degraded
    /// fallback itself failed).
    Failed {
        /// The rendered error.
        error: String,
    },
}

impl BatchStatus {
    /// A short status label (`"ok"`, `"degraded"`, `"failed"`) for
    /// serialized views.
    pub fn label(&self) -> &'static str {
        match self {
            BatchStatus::Ok => "ok",
            BatchStatus::Degraded { .. } => "degraded",
            BatchStatus::Failed { .. } => "failed",
        }
    }
}

/// The outcome of one submission.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The submission id [`BatchService::submit`] returned.
    pub id: u64,
    /// The label from the [`BatchJob`].
    pub name: String,
    /// How the job ended.
    pub status: BatchStatus,
    /// The allocation, absent when [`BatchStatus::Failed`].
    pub allocation: Option<ProgramAllocation>,
    /// Wall-clock microseconds the job took (profiling included).
    pub micros: u64,
}

struct Shared {
    queue: BoundedQueue<(u64, Instant, BatchJob)>,
    results: Mutex<Vec<BatchResult>>,
    metrics: Mutex<MetricsRegistry>,
    in_flight: AtomicU64,
    cost: CostModel,
    shard_workers: usize,
}

/// The batch allocation service (see the module docs).
pub struct BatchService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

fn run_batch_job(id: u64, job: BatchJob, cost: &CostModel, shard_workers: usize) -> BatchResult {
    let start = Instant::now();
    let driver = ParallelDriver::new(shard_workers);
    let (status, allocation) = match FrequencyInfo::profile(&job.program) {
        Err(e) => (
            BatchStatus::Failed {
                error: format!("profiling failed: {e}"),
            },
            None,
        ),
        Ok(freq) => {
            let req = AllocRequest {
                program: &job.program,
                freq: &freq,
                file: job.file,
                config: &job.config,
                cost,
            };
            match driver.allocate_program_detailed(
                &req,
                &mut NoopSink,
                &mut MetricsRegistry::disabled(),
            ) {
                Err(e) => (
                    BatchStatus::Failed {
                        error: e.to_string(),
                    },
                    None,
                ),
                Ok((alloc, report)) => {
                    let degraded = report.degraded_funcs();
                    let status = if degraded == 0 {
                        BatchStatus::Ok
                    } else {
                        BatchStatus::Degraded { funcs: degraded }
                    };
                    (status, Some(alloc))
                }
            }
        }
    };
    BatchResult {
        id,
        name: job.name,
        status,
        allocation,
        micros: start.elapsed().as_micros() as u64,
    }
}

impl Shared {
    fn note_completion(&self, queued_at: Instant, result: &BatchResult) {
        let mut m = self.metrics.lock().expect("batch metrics lock");
        m.observe(
            METRIC_QUEUE_WAIT,
            queued_at
                .elapsed()
                .as_micros()
                .saturating_sub(result.micros as u128) as u64,
        );
        m.observe(METRIC_JOB_MICROS, result.micros);
        m.inc(match result.status {
            BatchStatus::Ok => METRIC_COMPLETED,
            BatchStatus::Degraded { .. } => METRIC_DEGRADED,
            BatchStatus::Failed { .. } => METRIC_FAILED,
        });
    }
}

/// A cloneable, read-only view of a live [`BatchService`] (see
/// [`BatchService::handle`]).
///
/// The handle holds the service's shared state but not its lifecycle:
/// dropping it does nothing, and after [`BatchService::shutdown`] it keeps
/// answering (with an empty result set, since shutdown hands the results
/// to its caller).
#[derive(Clone)]
pub struct BatchHandle {
    shared: Arc<Shared>,
}

impl BatchHandle {
    /// Jobs queued but not yet picked up.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs a worker is running right now.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// The submission queue's traffic counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.queue.stats()
    }

    /// Per-job statuses of every completed job so far, sorted by
    /// submission id.
    pub fn statuses(&self) -> Vec<(u64, String, BatchStatus)> {
        let results = self.shared.results.lock().expect("batch results lock");
        let mut out: Vec<(u64, String, BatchStatus)> = results
            .iter()
            .map(|r| (r.id, r.name.clone(), r.status.clone()))
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Total functions that degraded across completed jobs.
    pub fn degraded_funcs(&self) -> usize {
        self.shared
            .results
            .lock()
            .expect("batch results lock")
            .iter()
            .map(|r| match r.status {
                BatchStatus::Degraded { funcs } => funcs,
                _ => 0,
            })
            .sum()
    }

    /// The service metrics plus scrape-time gauges (queue depth and
    /// occupancy, in-flight count, queue high-water and blocked pushes).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut m = self
            .shared
            .metrics
            .lock()
            .expect("batch metrics lock")
            .clone();
        let stats = self.shared.queue.stats();
        m.gauge_set("batch_queue_depth", stats.depth as f64);
        m.gauge_set(
            "batch_queue_occupancy",
            stats.depth as f64 / stats.capacity as f64,
        );
        m.gauge_set("batch_queue_high_water", stats.high_water as f64);
        m.gauge_set("batch_queue_blocked_pushes", stats.blocked_pushes as f64);
        m.gauge_set("batch_in_flight", self.in_flight() as f64);
        m
    }

    /// [`BatchHandle::metrics_snapshot`] in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }

    /// The live status document served at `/status`:
    ///
    /// ```json
    /// {"queue_depth": 0, "in_flight": 1, "completed": 2,
    ///  "degraded_funcs": 0,
    ///  "jobs": [{"id": 0, "name": "eqntott", "status": "ok",
    ///            "degraded_funcs": 0, "micros": 1234}, ...]}
    /// ```
    ///
    /// Failed jobs carry an extra `"error"` string.
    pub fn status_value(&self) -> Value {
        let statuses = self.statuses();
        let results = self.shared.results.lock().expect("batch results lock");
        let micros_of = |id: u64| {
            results
                .iter()
                .find(|r| r.id == id)
                .map_or(0, |r| r.micros as i64)
        };
        let jobs = statuses
            .iter()
            .map(|(id, name, status)| {
                let mut fields = vec![
                    ("id".to_string(), Value::Int(*id as i64)),
                    ("name".to_string(), Value::Str(name.clone())),
                    ("status".to_string(), Value::Str(status.label().to_string())),
                    (
                        "degraded_funcs".to_string(),
                        Value::Int(match status {
                            BatchStatus::Degraded { funcs } => *funcs as i64,
                            _ => 0,
                        }),
                    ),
                    ("micros".to_string(), Value::Int(micros_of(*id))),
                ];
                if let BatchStatus::Failed { error } = status {
                    fields.push(("error".to_string(), Value::Str(error.clone())));
                }
                Value::Obj(fields)
            })
            .collect();
        drop(results);
        Value::Obj(vec![
            (
                "queue_depth".to_string(),
                Value::Int(self.queue_depth() as i64),
            ),
            ("in_flight".to_string(), Value::Int(self.in_flight() as i64)),
            ("completed".to_string(), Value::Int(statuses.len() as i64)),
            (
                "degraded_funcs".to_string(),
                Value::Int(self.degraded_funcs() as i64),
            ),
            ("jobs".to_string(), Value::Arr(jobs)),
        ])
    }
}

impl BatchService {
    /// Starts the service: spawns [`BatchConfig::workers`] threads that
    /// drain the submission queue until [`BatchService::shutdown`]. Uses
    /// the paper's cost model; see [`BatchService::start_with_cost`].
    pub fn start(config: BatchConfig) -> Self {
        BatchService::start_with_cost(config, CostModel::paper())
    }

    /// Like [`BatchService::start`] with an explicit cost model.
    pub fn start_with_cost(config: BatchConfig, cost: CostModel) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            results: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            in_flight: AtomicU64::new(0),
            cost,
            shard_workers: config.shard_workers.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some((id, queued_at, job)) = shared.queue.pop() {
                        shared.in_flight.fetch_add(1, Ordering::Relaxed);
                        let result = run_batch_job(id, job, &shared.cost, shared.shard_workers);
                        shared.note_completion(queued_at, &result);
                        shared
                            .results
                            .lock()
                            .expect("batch results lock")
                            .push(result);
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        BatchService {
            shared,
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// A read-only live view of the service (cheap to clone; see
    /// [`BatchHandle`]).
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits a job, blocking while the queue is at capacity
    /// (backpressure). Returns the submission id its result will carry.
    ///
    /// # Errors
    ///
    /// Returns the job back if the queue is closed (the service is
    /// shutting down).
    pub fn submit(&self, job: BatchJob) -> Result<u64, BatchJob> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Try the fast path first so a stall (queue at capacity) is
        // observable as a metric before we block.
        let job = match self.shared.queue.try_push((id, Instant::now(), job)) {
            Ok(()) => {
                self.note_submit();
                return Ok(id);
            }
            Err(PushError::Closed((_, _, job))) => return Err(job),
            Err(PushError::Full((_, _, job))) => {
                self.shared
                    .metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_STALLS);
                job
            }
        };
        self.shared
            .queue
            .push((id, Instant::now(), job))
            .map(|()| {
                self.note_submit();
                id
            })
            .map_err(|e| e.into_inner().2)
    }

    /// Submits without blocking; the caller sheds load on a full queue.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full or closed.
    ///
    /// Submission ids are unique and increasing but may have gaps (a
    /// rejected submission consumes one).
    pub fn try_submit(&self, job: BatchJob) -> Result<u64, PushError<BatchJob>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .queue
            .try_push((id, Instant::now(), job))
            .map(|()| {
                self.note_submit();
                id
            })
            .map_err(|e| match e {
                PushError::Full((_, _, j)) => PushError::Full(j),
                PushError::Closed((_, _, j)) => PushError::Closed(j),
            })
    }

    fn note_submit(&self) {
        self.shared
            .metrics
            .lock()
            .expect("batch metrics lock")
            .inc(METRIC_SUBMITTED);
    }

    /// Jobs queued but not yet picked up.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes the queue, drains the remaining jobs, joins the workers,
    /// and returns every result sorted by submission id.
    pub fn shutdown(self) -> Vec<BatchResult> {
        self.shared.queue.close();
        for handle in self.workers {
            handle.join().expect("batch workers do not panic");
        }
        let mut results =
            std::mem::take(&mut *self.shared.results.lock().expect("batch results lock"));
        results.sort_by_key(|r| r.id);
        results
    }
}
