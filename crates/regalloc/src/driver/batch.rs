//! The batch service front-end: submit many [`Program`]s, collect
//! per-job results.
//!
//! Where [`crate::driver::ParallelDriver`] parallelizes *within* one
//! program (per-function sharding), [`BatchService`] parallelizes *across*
//! programs — the compile-service shape: a bounded submission queue with
//! blocking backpressure ([`BatchService::submit`]) or caller-side load
//! shedding ([`BatchService::try_submit`]), a fixed pool of service
//! workers, and a status per job ([`BatchStatus`]) so one failed
//! submission never hides or poisons its siblings. The two layers compose:
//! [`BatchConfig::shard_workers`] > 1 gives every service worker its own
//! [`ParallelDriver`] for the functions of each program it picks up.
//!
//! Results are collected with [`BatchService::shutdown`], which closes the
//! queue, drains it, joins the workers, and returns results **sorted by
//! submission id** — deterministic presentation over a nondeterministic
//! execution order.
//!
//! # Observation
//!
//! The service keeps its own [`MetricsRegistry`] (the `batch_*` names
//! below): submissions, completions by status, backpressure stalls, queue
//! wait, job run, and end-to-end histograms. A cloneable [`BatchHandle`]
//! ([`BatchService::handle`]) reads live state — queue depth, in-flight
//! count, per-job statuses so far, and a metrics snapshot with scrape-time
//! gauges — without touching the service's lifecycle; it is what the
//! [`crate::driver::status`] HTTP endpoint serves. Service metrics are
//! wall-clock and scheduling facts: they stay out of allocation results.
//!
//! # Request-scoped tracing
//!
//! Every submission gets a trace identity — its submission id, rendered
//! `req-<id>` — and, unless [`BatchConfig::trace_requests`] is off, a
//! [`RequestTrace`]: queue-wait / service / end-to-end durations plus a
//! per-request [`Timeline`] whose clock starts at the submission instant
//! ([`TimelineCollector::enabled_since`]). The timeline carries the
//! queue-wait span, the shard workers' job and phase spans, the driver's
//! merge span, the whole service span, and a reply instant — renderable
//! directly by [`crate::trace::chrometrace`] and served per request at
//! `/trace/<id>`. Traces ride on [`BatchResult::trace`] and in a bounded
//! recent-trace buffer ([`BatchConfig::trace_capacity`]); like every other
//! scheduling fact they are quarantined — program output stays
//! byte-identical to serial whether or not tracing is on.
//!
//! # Flight recorder
//!
//! The service owns an always-on [`FlightRecorder`]: lane 0 belongs to the
//! submission path (submit / backpressure events), and each service worker
//! gets a contiguous lane block (its shard workers, then its driver +
//! service lane) via [`FlightRecorder::view`]. When a job completes with
//! any status but [`BatchStatus::Ok`], the recorder is dumped
//! automatically and the JSON retained in a small ring of recent dumps —
//! queryable, together with the live recorder, at `/debug/flightrec`.
//!
//! [`TimelineCollector::enabled_since`]: crate::driver::timeline::TimelineCollector::enabled_since

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, RegisterFile};
use serde::json::Value;

use crate::driver::flightrec::{FlightKind, FlightRecorder, FlightView};
use crate::driver::parallel::{AllocRequest, DefaultJob, ParallelDriver};
use crate::driver::queue::{BoundedQueue, PushError, QueueStats};
use crate::driver::timeline::{InstantKind, SpanKind, Timeline, TimelineCollector};
use crate::metrics::MetricsRegistry;
use crate::pipeline::ProgramAllocation;
use crate::trace::chrometrace::to_chrome_trace;
use crate::trace::NoopSink;
use crate::types::AllocatorConfig;

/// Service counter: jobs accepted by `submit`/`try_submit`.
pub const METRIC_SUBMITTED: &str = "batch_jobs_submitted_total";
/// Service counter: jobs that completed with [`BatchStatus::Ok`].
pub const METRIC_COMPLETED: &str = "batch_jobs_completed_total";
/// Service counter: jobs that completed with [`BatchStatus::Degraded`].
pub const METRIC_DEGRADED: &str = "batch_jobs_degraded_total";
/// Service counter: jobs that completed with [`BatchStatus::Failed`].
pub const METRIC_FAILED: &str = "batch_jobs_failed_total";
/// Service counter: blocking submits that found the queue full and stalled.
pub const METRIC_STALLS: &str = "batch_backpressure_stalls_total";
/// Service histogram: microseconds a job sat in the submission queue.
pub const METRIC_QUEUE_WAIT: &str = "batch_queue_wait_micros";
/// Service histogram: microseconds a job took to run (profiling included).
pub const METRIC_JOB_MICROS: &str = "batch_job_micros";
/// Service histogram: microseconds from submission to stored result —
/// queue wait plus service time, the submitter-visible latency.
pub const METRIC_E2E: &str = "batch_e2e_micros";

/// How many automatic flight-record dumps the service retains.
const FLIGHT_DUMP_KEEP: usize = 8;

/// Sizing knobs for a [`BatchService`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Service workers — whole programs allocated concurrently (≥ 1).
    pub workers: usize,
    /// Submission-queue capacity; submitters beyond it block (≥ 1).
    pub queue_capacity: usize,
    /// Per-program [`ParallelDriver`] workers (1 = allocate each
    /// program's functions serially within its service worker).
    pub shard_workers: usize,
    /// Whether each submission records a [`RequestTrace`] (a per-request
    /// timeline on the submission clock). Off, requests still get ids,
    /// latency histograms, and flight-recorder coverage — just no
    /// timeline.
    pub trace_requests: bool,
    /// How many recent [`RequestTrace`]s the service retains for
    /// `/trace/<id>` queries (per-result copies on [`BatchResult::trace`]
    /// are unaffected).
    pub trace_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            shard_workers: 1,
            trace_requests: true,
            trace_capacity: 32,
        }
    }
}

/// One submission: a program plus the allocation parameters to run it
/// under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// A caller-chosen label, echoed in the result.
    pub name: String,
    /// The program to allocate.
    pub program: Program,
    /// The register file.
    pub file: RegisterFile,
    /// The allocator configuration.
    pub config: AllocatorConfig,
}

/// How one batch job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every function allocated strictly.
    Ok,
    /// The program allocated, but some functions fell back to the
    /// degraded spill-everything allocation.
    Degraded {
        /// How many functions degraded.
        funcs: usize,
    },
    /// The job produced no allocation (profiling failed, or the degraded
    /// fallback itself failed).
    Failed {
        /// The rendered error.
        error: String,
    },
}

impl BatchStatus {
    /// A short status label (`"ok"`, `"degraded"`, `"failed"`) for
    /// serialized views.
    pub fn label(&self) -> &'static str {
        match self {
            BatchStatus::Ok => "ok",
            BatchStatus::Degraded { .. } => "degraded",
            BatchStatus::Failed { .. } => "failed",
        }
    }
}

/// The request-scoped observability record of one submission: its trace
/// identity, queue-wait / service / end-to-end durations, and a timeline
/// whose clock starts at the submission instant.
///
/// Everything here is wall-clock and scheduling-dependent — quarantined
/// next to the result like [`crate::driver::DriverReport`], never inside
/// the allocation.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The submission id (the trace identity; rendered `req-<id>`).
    pub id: u64,
    /// The job's label.
    pub name: String,
    /// Microseconds the submission sat in the queue.
    pub queue_us: u64,
    /// Microseconds the service worker spent on it (profiling included).
    pub service_us: u64,
    /// Microseconds from submission to stored result.
    pub e2e_us: u64,
    /// The per-request timeline: queue-wait span, shard job/phase spans,
    /// driver merge, service span, reply instant. `ts = 0` is the
    /// submission instant.
    pub timeline: Timeline,
}

impl RequestTrace {
    /// The trace id as served by `/trace/<id>`.
    pub fn trace_id(&self) -> String {
        format!("req-{}", self.id)
    }

    /// The trace as a Chrome Trace Event Format value
    /// ([`crate::trace::chrometrace::to_chrome_trace`]) with the request's
    /// identity and latency split as extra top-level fields (Perfetto
    /// ignores unknown keys, so the object stays directly loadable).
    pub fn to_chrome_value(&self) -> Value {
        let mut fields = match to_chrome_trace(&self.timeline) {
            Value::Obj(fields) => fields,
            other => return other,
        };
        fields.push(("requestId".to_string(), Value::Str(self.trace_id())));
        fields.push(("requestName".to_string(), Value::Str(self.name.clone())));
        fields.push(("queueUs".to_string(), Value::Int(self.queue_us as i64)));
        fields.push(("serviceUs".to_string(), Value::Int(self.service_us as i64)));
        fields.push(("e2eUs".to_string(), Value::Int(self.e2e_us as i64)));
        Value::Obj(fields)
    }
}

/// The outcome of one submission.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The submission id [`BatchService::submit`] returned.
    pub id: u64,
    /// The label from the [`BatchJob`].
    pub name: String,
    /// How the job ended.
    pub status: BatchStatus,
    /// The allocation, absent when [`BatchStatus::Failed`].
    pub allocation: Option<ProgramAllocation>,
    /// Wall-clock microseconds the job took (profiling included).
    pub micros: u64,
    /// The request-scoped trace, absent when
    /// [`BatchConfig::trace_requests`] is off.
    pub trace: Option<RequestTrace>,
}

struct Shared {
    queue: BoundedQueue<(u64, Instant, BatchJob)>,
    results: Mutex<Vec<BatchResult>>,
    metrics: Mutex<MetricsRegistry>,
    in_flight: AtomicU64,
    cost: CostModel,
    shard_workers: usize,
    trace_requests: bool,
    trace_capacity: usize,
    traces: Mutex<VecDeque<RequestTrace>>,
    flight: FlightRecorder,
    dumps: Mutex<VecDeque<(u64, Value)>>,
}

/// The batch allocation service (see the module docs).
pub struct BatchService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

/// Runs one submission on a service worker: builds the request-scoped
/// collector (clock zero = the submission instant), records the
/// queue-wait and service spans plus service-level flight events, shards
/// the program through [`ParallelDriver`], and assembles the
/// [`BatchResult`] with its [`RequestTrace`].
///
/// `flight` is the worker's lane block: shard workers record on view
/// lanes `0..shard_workers`, the service-level events land on view lane
/// `shard_workers` (written only by this thread, before the pool spawns
/// and after it joins).
fn run_batch_job(
    id: u64,
    job: BatchJob,
    shared: &Shared,
    flight: FlightView<'_>,
    queued_at: Instant,
) -> BatchResult {
    let start = Instant::now();
    let shard_workers = shared.shard_workers;
    let service_tid = shard_workers as u32 + 1;
    let collector = if shared.trace_requests {
        TimelineCollector::enabled_since(queued_at)
    } else {
        TimelineCollector::disabled()
    };
    let mut lane = collector.lane(service_tid);
    // The queue-wait span: submission (the epoch) to pick-up (now).
    let queue_us = collector.now_us();
    lane.backdated_span(
        SpanKind::Queue,
        queue_us,
        || "queue wait".to_string(),
        || None,
    );
    flight.record(shard_workers as u32, FlightKind::JobStart, id, 0);
    let service_span = lane.start();

    let driver = ParallelDriver::new(shard_workers);
    let (status, allocation, timeline) = match FrequencyInfo::profile(&job.program) {
        Err(e) => (
            BatchStatus::Failed {
                error: format!("profiling failed: {e}"),
            },
            None,
            Timeline::empty(),
        ),
        Ok(freq) => {
            let req = AllocRequest {
                program: &job.program,
                freq: &freq,
                file: job.file,
                config: &job.config,
                cost: &shared.cost,
            };
            match driver.allocate_program_observed(
                &req,
                &mut NoopSink,
                &mut MetricsRegistry::disabled(),
                &DefaultJob,
                &collector,
                flight,
            ) {
                Err(e) => (
                    BatchStatus::Failed {
                        error: e.to_string(),
                    },
                    None,
                    Timeline::empty(),
                ),
                Ok((alloc, report, timeline)) => {
                    let degraded = report.degraded_funcs();
                    let status = if degraded == 0 {
                        BatchStatus::Ok
                    } else {
                        BatchStatus::Degraded { funcs: degraded }
                    };
                    (status, Some(alloc), timeline)
                }
            }
        }
    };

    let name = job.name;
    let service_us = start.elapsed().as_micros() as u64;
    let (end_kind, end_payload) = match &status {
        BatchStatus::Ok => (FlightKind::JobOk, 0),
        BatchStatus::Degraded { funcs } => (FlightKind::JobDegraded, *funcs as u64),
        BatchStatus::Failed { .. } => (FlightKind::JobFailed, 0),
    };
    flight.record(shard_workers as u32, end_kind, id, end_payload);
    lane.end_span(service_span, SpanKind::Service, || {
        format!("req-{id} {name}")
    });
    lane.instant(InstantKind::Reply, || "reply".to_string());
    let e2e_us = collector.now_us();

    let trace = if shared.trace_requests {
        let mut timeline = timeline;
        timeline.events.extend(lane.into_events());
        Some(RequestTrace {
            id,
            name: name.clone(),
            queue_us,
            service_us,
            e2e_us,
            timeline,
        })
    } else {
        None
    };
    BatchResult {
        id,
        name,
        status,
        allocation,
        micros: service_us,
        trace,
    }
}

impl Shared {
    fn note_completion(&self, queued_at: Instant, result: &BatchResult) {
        let e2e = queued_at.elapsed().as_micros();
        let mut m = self.metrics.lock().expect("batch metrics lock");
        m.observe(
            METRIC_QUEUE_WAIT,
            e2e.saturating_sub(result.micros as u128) as u64,
        );
        m.observe(METRIC_JOB_MICROS, result.micros);
        m.observe(METRIC_E2E, e2e as u64);
        m.inc(match result.status {
            BatchStatus::Ok => METRIC_COMPLETED,
            BatchStatus::Degraded { .. } => METRIC_DEGRADED,
            BatchStatus::Failed { .. } => METRIC_FAILED,
        });
    }

    /// Retains a completed request's trace in the bounded recent-trace
    /// buffer and, when the job ended with anything but
    /// [`BatchStatus::Ok`], snapshots the flight recorder into the dump
    /// ring.
    fn note_observability(&self, result: &BatchResult) {
        if let Some(trace) = &result.trace {
            let mut traces = self.traces.lock().expect("batch traces lock");
            while traces.len() >= self.trace_capacity.max(1) {
                traces.pop_front();
            }
            traces.push_back(trace.clone());
        }
        if result.status != BatchStatus::Ok {
            let dump = self.flight.dump();
            let mut dumps = self.dumps.lock().expect("batch dumps lock");
            while dumps.len() >= FLIGHT_DUMP_KEEP {
                dumps.pop_front();
            }
            dumps.push_back((result.id, dump));
        }
    }
}

/// A cloneable, read-only view of a live [`BatchService`] (see
/// [`BatchService::handle`]).
///
/// The handle holds the service's shared state but not its lifecycle:
/// dropping it does nothing, and after [`BatchService::shutdown`] it keeps
/// answering (with an empty result set, since shutdown hands the results
/// to its caller).
#[derive(Clone)]
pub struct BatchHandle {
    shared: Arc<Shared>,
}

impl BatchHandle {
    /// Jobs queued but not yet picked up.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs a worker is running right now.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// The submission queue's traffic counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.queue.stats()
    }

    /// Per-job statuses of every completed job so far, sorted by
    /// submission id.
    pub fn statuses(&self) -> Vec<(u64, String, BatchStatus)> {
        let results = self.shared.results.lock().expect("batch results lock");
        let mut out: Vec<(u64, String, BatchStatus)> = results
            .iter()
            .map(|r| (r.id, r.name.clone(), r.status.clone()))
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Total functions that degraded across completed jobs.
    pub fn degraded_funcs(&self) -> usize {
        self.shared
            .results
            .lock()
            .expect("batch results lock")
            .iter()
            .map(|r| match r.status {
                BatchStatus::Degraded { funcs } => funcs,
                _ => 0,
            })
            .sum()
    }

    /// The service metrics plus scrape-time gauges (queue depth and
    /// occupancy, in-flight count, queue high-water and blocked pushes).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut m = self
            .shared
            .metrics
            .lock()
            .expect("batch metrics lock")
            .clone();
        let stats = self.shared.queue.stats();
        m.gauge_set("batch_queue_depth", stats.depth as f64);
        m.gauge_set(
            "batch_queue_occupancy",
            stats.depth as f64 / stats.capacity as f64,
        );
        m.gauge_set("batch_queue_high_water", stats.high_water as f64);
        m.gauge_set("batch_queue_blocked_pushes", stats.blocked_pushes as f64);
        m.gauge_set("batch_in_flight", self.in_flight() as f64);
        m
    }

    /// [`BatchHandle::metrics_snapshot`] in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }

    /// The [`RequestTrace`] of submission `id`, if the service still holds
    /// it — first from the bounded recent-trace buffer, then from the
    /// stored results.
    pub fn trace(&self, id: u64) -> Option<RequestTrace> {
        let traces = self.shared.traces.lock().expect("batch traces lock");
        if let Some(t) = traces.iter().find(|t| t.id == id) {
            return Some(t.clone());
        }
        drop(traces);
        self.shared
            .results
            .lock()
            .expect("batch results lock")
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.trace.clone())
    }

    /// The trace of submission `id` rendered as Chrome-trace JSON
    /// ([`RequestTrace::to_chrome_value`]) — what `/trace/<id>` serves.
    pub fn trace_chrome_json(&self, id: u64) -> Option<String> {
        self.trace(id).map(|t| t.to_chrome_value().to_json())
    }

    /// The flight-recorder document served at `/debug/flightrec`: the live
    /// recorder dump plus the retained automatic dumps (most recent last),
    /// each tagged with the submission id that triggered it.
    pub fn flightrec_value(&self) -> Value {
        let dumps = self.shared.dumps.lock().expect("batch dumps lock");
        let retained = dumps
            .iter()
            .map(|(id, dump)| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Int(*id as i64)),
                    ("dump".to_string(), dump.clone()),
                ])
            })
            .collect();
        drop(dumps);
        Value::Obj(vec![
            ("live".to_string(), self.shared.flight.dump()),
            ("dumps".to_string(), Value::Arr(retained)),
        ])
    }

    /// The live status document served at `/status`:
    ///
    /// ```json
    /// {"queue_depth": 0, "in_flight": 1, "completed": 2,
    ///  "degraded_funcs": 0,
    ///  "jobs": [{"id": 0, "name": "eqntott", "status": "ok",
    ///            "degraded_funcs": 0, "micros": 1234}, ...]}
    /// ```
    ///
    /// Failed jobs carry an extra `"error"` string. A `"latency"` object
    /// reports the queue-wait / service / end-to-end SLO quantiles
    /// (log2-bucket upper bounds, microseconds) alongside the mean and
    /// sample count:
    ///
    /// ```json
    /// {"latency": {"queue_wait": {"p50": 15, "p95": 63, "p99": 63,
    ///                             "mean_us": 21.5, "count": 4}, ...}}
    /// ```
    pub fn status_value(&self) -> Value {
        let statuses = self.statuses();
        let results = self.shared.results.lock().expect("batch results lock");
        let micros_of = |id: u64| {
            results
                .iter()
                .find(|r| r.id == id)
                .map_or(0, |r| r.micros as i64)
        };
        let jobs = statuses
            .iter()
            .map(|(id, name, status)| {
                let mut fields = vec![
                    ("id".to_string(), Value::Int(*id as i64)),
                    ("name".to_string(), Value::Str(name.clone())),
                    ("status".to_string(), Value::Str(status.label().to_string())),
                    (
                        "degraded_funcs".to_string(),
                        Value::Int(match status {
                            BatchStatus::Degraded { funcs } => *funcs as i64,
                            _ => 0,
                        }),
                    ),
                    ("micros".to_string(), Value::Int(micros_of(*id))),
                ];
                if let BatchStatus::Failed { error } = status {
                    fields.push(("error".to_string(), Value::Str(error.clone())));
                }
                Value::Obj(fields)
            })
            .collect();
        drop(results);
        let m = self.shared.metrics.lock().expect("batch metrics lock");
        let latency_of = |name: &str| {
            let (p50, p95, p99, mean, count) = m.histogram(name).map_or((0, 0, 0, 0.0, 0), |h| {
                (
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.mean(),
                    h.count(),
                )
            });
            Value::Obj(vec![
                ("p50".to_string(), Value::Int(p50 as i64)),
                ("p95".to_string(), Value::Int(p95 as i64)),
                ("p99".to_string(), Value::Int(p99 as i64)),
                ("mean_us".to_string(), Value::Float(mean)),
                ("count".to_string(), Value::Int(count as i64)),
            ])
        };
        let latency = Value::Obj(vec![
            ("queue_wait".to_string(), latency_of(METRIC_QUEUE_WAIT)),
            ("service".to_string(), latency_of(METRIC_JOB_MICROS)),
            ("e2e".to_string(), latency_of(METRIC_E2E)),
        ]);
        drop(m);
        Value::Obj(vec![
            (
                "queue_depth".to_string(),
                Value::Int(self.queue_depth() as i64),
            ),
            ("in_flight".to_string(), Value::Int(self.in_flight() as i64)),
            ("completed".to_string(), Value::Int(statuses.len() as i64)),
            (
                "degraded_funcs".to_string(),
                Value::Int(self.degraded_funcs() as i64),
            ),
            ("latency".to_string(), latency),
            ("jobs".to_string(), Value::Arr(jobs)),
        ])
    }
}

impl BatchService {
    /// Starts the service: spawns [`BatchConfig::workers`] threads that
    /// drain the submission queue until [`BatchService::shutdown`]. Uses
    /// the paper's cost model; see [`BatchService::start_with_cost`].
    pub fn start(config: BatchConfig) -> Self {
        BatchService::start_with_cost(config, CostModel::paper())
    }

    /// Like [`BatchService::start`] with an explicit cost model.
    pub fn start_with_cost(config: BatchConfig, cost: CostModel) -> Self {
        let service_workers = config.workers.max(1);
        let shard_workers = config.shard_workers.max(1);
        // Flight lanes: lane 0 is the submission path; each service worker
        // `w` owns the contiguous block starting at `1 + w * (shard + 1)`
        // (its shard workers, then its driver/service lane).
        let flight_lanes = 1 + service_workers * (shard_workers + 1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            results: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            in_flight: AtomicU64::new(0),
            cost,
            shard_workers,
            trace_requests: config.trace_requests,
            trace_capacity: config.trace_capacity.max(1),
            traces: Mutex::new(VecDeque::new()),
            flight: FlightRecorder::new(flight_lanes),
            dumps: Mutex::new(VecDeque::new()),
        });
        let workers = (0..service_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let lane_base = (1 + w * (shard_workers + 1)) as u32;
                std::thread::spawn(move || {
                    while let Some((id, queued_at, job)) = shared.queue.pop() {
                        shared.in_flight.fetch_add(1, Ordering::Relaxed);
                        let flight = shared.flight.view(lane_base);
                        let result = run_batch_job(id, job, &shared, flight, queued_at);
                        shared.note_completion(queued_at, &result);
                        shared.note_observability(&result);
                        shared
                            .results
                            .lock()
                            .expect("batch results lock")
                            .push(result);
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        BatchService {
            shared,
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// A read-only live view of the service (cheap to clone; see
    /// [`BatchHandle`]).
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Submits a job, blocking while the queue is at capacity
    /// (backpressure). Returns the submission id its result will carry.
    ///
    /// # Errors
    ///
    /// Returns the job back if the queue is closed (the service is
    /// shutting down).
    pub fn submit(&self, job: BatchJob) -> Result<u64, BatchJob> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Try the fast path first so a stall (queue at capacity) is
        // observable as a metric before we block.
        let job = match self.shared.queue.try_push((id, Instant::now(), job)) {
            Ok(()) => {
                self.note_submit(id);
                return Ok(id);
            }
            Err(PushError::Closed((_, _, job))) => return Err(job),
            Err(PushError::Full((_, _, job))) => {
                self.shared
                    .metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_STALLS);
                self.shared
                    .flight
                    .record(0, FlightKind::BackpressureEngage, id, 0);
                job
            }
        };
        self.shared
            .queue
            .push((id, Instant::now(), job))
            .map(|()| {
                self.shared
                    .flight
                    .record(0, FlightKind::BackpressureRelease, id, 0);
                self.note_submit(id);
                id
            })
            .map_err(|e| e.into_inner().2)
    }

    /// Submits without blocking; the caller sheds load on a full queue.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full or closed.
    ///
    /// Submission ids are unique and increasing but may have gaps (a
    /// rejected submission consumes one).
    pub fn try_submit(&self, job: BatchJob) -> Result<u64, PushError<BatchJob>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .queue
            .try_push((id, Instant::now(), job))
            .map(|()| {
                self.note_submit(id);
                id
            })
            .map_err(|e| match e {
                PushError::Full((_, _, j)) => PushError::Full(j),
                PushError::Closed((_, _, j)) => PushError::Closed(j),
            })
    }

    fn note_submit(&self, id: u64) {
        self.shared.flight.record(0, FlightKind::Submit, id, 0);
        self.shared
            .metrics
            .lock()
            .expect("batch metrics lock")
            .inc(METRIC_SUBMITTED);
    }

    /// Jobs queued but not yet picked up.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes the queue, drains the remaining jobs, joins the workers,
    /// and returns every result sorted by submission id.
    pub fn shutdown(self) -> Vec<BatchResult> {
        self.shared.queue.close();
        for handle in self.workers {
            handle.join().expect("batch workers do not panic");
        }
        let mut results =
            std::mem::take(&mut *self.shared.results.lock().expect("batch results lock"));
        results.sort_by_key(|r| r.id);
        results
    }
}
