//! The batch service front-end: submit many [`Program`]s, collect
//! per-job results.
//!
//! Where [`crate::driver::ParallelDriver`] parallelizes *within* one
//! program (per-function sharding), [`BatchService`] parallelizes *across*
//! programs — the compile-service shape: a bounded submission queue with
//! blocking backpressure ([`BatchService::submit`]) or caller-side load
//! shedding ([`BatchService::try_submit`]), a fixed pool of service
//! workers, and a status per job ([`BatchStatus`]) so one failed
//! submission never hides or poisons its siblings. The two layers compose:
//! [`BatchConfig::shard_workers`] > 1 gives every service worker its own
//! [`ParallelDriver`] for the functions of each program it picks up.
//!
//! Results are collected with [`BatchService::shutdown`], which closes the
//! queue, drains it, joins the workers, and returns results **sorted by
//! submission id** — deterministic presentation over a nondeterministic
//! execution order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ccra_analysis::FrequencyInfo;
use ccra_ir::Program;
use ccra_machine::{CostModel, RegisterFile};

use crate::driver::parallel::{AllocRequest, ParallelDriver};
use crate::driver::queue::{BoundedQueue, PushError};
use crate::metrics::MetricsRegistry;
use crate::pipeline::ProgramAllocation;
use crate::trace::NoopSink;
use crate::types::AllocatorConfig;

/// Sizing knobs for a [`BatchService`].
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Service workers — whole programs allocated concurrently (≥ 1).
    pub workers: usize,
    /// Submission-queue capacity; submitters beyond it block (≥ 1).
    pub queue_capacity: usize,
    /// Per-program [`ParallelDriver`] workers (1 = allocate each
    /// program's functions serially within its service worker).
    pub shard_workers: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            shard_workers: 1,
        }
    }
}

/// One submission: a program plus the allocation parameters to run it
/// under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// A caller-chosen label, echoed in the result.
    pub name: String,
    /// The program to allocate.
    pub program: Program,
    /// The register file.
    pub file: RegisterFile,
    /// The allocator configuration.
    pub config: AllocatorConfig,
}

/// How one batch job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every function allocated strictly.
    Ok,
    /// The program allocated, but some functions fell back to the
    /// degraded spill-everything allocation.
    Degraded {
        /// How many functions degraded.
        funcs: usize,
    },
    /// The job produced no allocation (profiling failed, or the degraded
    /// fallback itself failed).
    Failed {
        /// The rendered error.
        error: String,
    },
}

/// The outcome of one submission.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The submission id [`BatchService::submit`] returned.
    pub id: u64,
    /// The label from the [`BatchJob`].
    pub name: String,
    /// How the job ended.
    pub status: BatchStatus,
    /// The allocation, absent when [`BatchStatus::Failed`].
    pub allocation: Option<ProgramAllocation>,
    /// Wall-clock microseconds the job took (profiling included).
    pub micros: u64,
}

struct Shared {
    queue: BoundedQueue<(u64, BatchJob)>,
    results: Mutex<Vec<BatchResult>>,
    cost: CostModel,
    shard_workers: usize,
}

/// The batch allocation service (see the module docs).
pub struct BatchService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

fn run_batch_job(id: u64, job: BatchJob, cost: &CostModel, shard_workers: usize) -> BatchResult {
    let start = Instant::now();
    let driver = ParallelDriver::new(shard_workers);
    let (status, allocation) = match FrequencyInfo::profile(&job.program) {
        Err(e) => (
            BatchStatus::Failed {
                error: format!("profiling failed: {e}"),
            },
            None,
        ),
        Ok(freq) => {
            let req = AllocRequest {
                program: &job.program,
                freq: &freq,
                file: job.file,
                config: &job.config,
                cost,
            };
            match driver.allocate_program_detailed(
                &req,
                &mut NoopSink,
                &mut MetricsRegistry::disabled(),
            ) {
                Err(e) => (
                    BatchStatus::Failed {
                        error: e.to_string(),
                    },
                    None,
                ),
                Ok((alloc, report)) => {
                    let degraded = report.degraded_funcs();
                    let status = if degraded == 0 {
                        BatchStatus::Ok
                    } else {
                        BatchStatus::Degraded { funcs: degraded }
                    };
                    (status, Some(alloc))
                }
            }
        }
    };
    BatchResult {
        id,
        name: job.name,
        status,
        allocation,
        micros: start.elapsed().as_micros() as u64,
    }
}

impl BatchService {
    /// Starts the service: spawns [`BatchConfig::workers`] threads that
    /// drain the submission queue until [`BatchService::shutdown`]. Uses
    /// the paper's cost model; see [`BatchService::start_with_cost`].
    pub fn start(config: BatchConfig) -> Self {
        BatchService::start_with_cost(config, CostModel::paper())
    }

    /// Like [`BatchService::start`] with an explicit cost model.
    pub fn start_with_cost(config: BatchConfig, cost: CostModel) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            results: Mutex::new(Vec::new()),
            cost,
            shard_workers: config.shard_workers.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some((id, job)) = shared.queue.pop() {
                        let result = run_batch_job(id, job, &shared.cost, shared.shard_workers);
                        shared
                            .results
                            .lock()
                            .expect("batch results lock")
                            .push(result);
                    }
                })
            })
            .collect();
        BatchService {
            shared,
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// Submits a job, blocking while the queue is at capacity
    /// (backpressure). Returns the submission id its result will carry.
    ///
    /// # Errors
    ///
    /// Returns the job back if the queue is closed (the service is
    /// shutting down).
    pub fn submit(&self, job: BatchJob) -> Result<u64, BatchJob> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .queue
            .push((id, job))
            .map(|()| id)
            .map_err(|e| e.into_inner().1)
    }

    /// Submits without blocking; the caller sheds load on a full queue.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full or closed.
    ///
    /// Submission ids are unique and increasing but may have gaps (a
    /// rejected submission consumes one).
    pub fn try_submit(&self, job: BatchJob) -> Result<u64, PushError<BatchJob>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .queue
            .try_push((id, job))
            .map(|()| id)
            .map_err(|e| match e {
                PushError::Full((_, j)) => PushError::Full(j),
                PushError::Closed((_, j)) => PushError::Closed(j),
            })
    }

    /// Jobs queued but not yet picked up.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes the queue, drains the remaining jobs, joins the workers,
    /// and returns every result sorted by submission id.
    pub fn shutdown(self) -> Vec<BatchResult> {
        self.shared.queue.close();
        for handle in self.workers {
            handle.join().expect("batch workers do not panic");
        }
        let mut results =
            std::mem::take(&mut *self.shared.results.lock().expect("batch results lock"));
        results.sort_by_key(|r| r.id);
        results
    }
}
