//! The batch service front-end: submit many [`Program`]s, collect
//! per-job results.
//!
//! Where [`crate::driver::ParallelDriver`] parallelizes *within* one
//! program (per-function sharding), [`BatchService`] parallelizes *across*
//! programs — the compile-service shape: a bounded submission queue with
//! blocking backpressure ([`BatchService::submit`]) or caller-side load
//! shedding ([`BatchService::try_submit`]), a fixed pool of service
//! workers, and a status per job ([`BatchStatus`]) so one failed
//! submission never hides or poisons its siblings. The two layers compose:
//! [`BatchConfig::shard_workers`] > 1 gives every service worker its own
//! [`ParallelDriver`] for the functions of each program it picks up.
//!
//! Results are collected with [`BatchService::shutdown`], which closes the
//! queue, drains it, joins the workers, and returns results **sorted by
//! submission id** — deterministic presentation over a nondeterministic
//! execution order.
//!
//! # Overload behavior
//!
//! Under sustained overload a bounded queue alone only bounds *memory*;
//! the service layers four policies on top (all scheduling-side — no
//! accepted job's allocation bytes ever depend on them):
//!
//! * **Admission control** ([`BatchConfig::admission`]): an AIMD limiter
//!   ([`crate::driver::admission`]) on observed end-to-end latency vs. an
//!   SLO target. When the window is full, `submit` **sheds** — it returns
//!   [`RejectCause::Shed`] with a retry-after hint instead of blocking —
//!   and the shed is counted ([`METRIC_SHED`]) and flight-recorded.
//! * **Priority + deadline scheduling**: every [`BatchJob`] carries a
//!   [`Priority`] and an optional relative deadline; workers pop the
//!   queued job with the smallest (priority rank, earliest absolute
//!   deadline, estimated cost, id) key — EDF within priority class, with
//!   the cost estimate (Σ instrs × expected spill rounds) breaking
//!   deadline ties toward short jobs. A job whose deadline passed while
//!   queued resolves as [`BatchStatus::DeadlineExpired`] without running
//!   (its backdated queue span is still recorded).
//! * **Cancellation** ([`BatchHandle::cancel`]): queued jobs resolve as
//!   [`BatchStatus::Cancelled`]; in-flight jobs run to completion; done
//!   jobs are untouched — race-free via a per-id phase table that workers
//!   and cancellers both lock.
//! * **Per-job timeout** ([`BatchConfig::job_timeout`]): a cooperative
//!   watchdog ([`crate::driver::TimeoutJob`]) on service time; on expiry
//!   the remaining functions take the spill-everything degraded fallback
//!   and the result is flagged [`DegradeCause::Timeout`] — never a lost
//!   id, never a held worker.
//!
//! The invariant all four preserve: **every accepted submission id
//! resolves exactly once** (Ok / Degraded / Failed / DeadlineExpired /
//! Cancelled), and a shed submission is resolved synchronously at the
//! submit call. The chaos harness ([`crate::driver::chaos`],
//! `loadgen --chaos`) drives overload against exactly this invariant.
//!
//! # Observation
//!
//! The service keeps its own [`MetricsRegistry`] (the `batch_*` names
//! below): submissions, completions by status, backpressure stalls, sheds,
//! expiries, cancellations, timeouts, queue wait, job run, end-to-end
//! histograms, and per-priority end-to-end histograms for accepted jobs. A
//! cloneable [`BatchHandle`] ([`BatchService::handle`]) reads live state —
//! queue depth, in-flight count, per-job statuses so far, an admission
//! snapshot, and a metrics snapshot with scrape-time gauges — without
//! touching the service's lifecycle; it is what the
//! [`crate::driver::status`] HTTP endpoint serves. Service metrics are
//! wall-clock and scheduling facts: they stay out of allocation results.
//!
//! # Request-scoped tracing
//!
//! Every submission gets a trace identity — its submission id, rendered
//! `req-<id>` — and, unless [`BatchConfig::trace_requests`] is off, a
//! [`RequestTrace`]: queue-wait / service / end-to-end durations plus a
//! per-request [`Timeline`] whose clock starts at the submission instant
//! ([`TimelineCollector::enabled_since`]). The timeline carries the
//! queue-wait span, the shard workers' job and phase spans, the driver's
//! merge span, the whole service span, and a reply instant — renderable
//! directly by [`crate::trace::chrometrace`] and served per request at
//! `/trace/<id>`. Traces ride on [`BatchResult::trace`] and in a bounded
//! recent-trace buffer ([`BatchConfig::trace_capacity`]); like every other
//! scheduling fact they are quarantined — program output stays
//! byte-identical to serial whether or not tracing is on.
//!
//! # Flight recorder
//!
//! The service owns an always-on [`FlightRecorder`]: lane 0 belongs to the
//! submission path (submit / backpressure / shed events), and each service
//! worker gets a contiguous lane block (its shard workers, then its
//! driver + service lane) via [`FlightRecorder::view`]. When a job
//! completes [`BatchStatus::Degraded`] or [`BatchStatus::Failed`], the
//! recorder is dumped automatically and the JSON retained in a small ring
//! of recent dumps — queryable, together with the live recorder, at
//! `/debug/flightrec`. Expiries and cancellations are recorded as flight
//! events but do not trigger dumps: under overload they are policy working
//! as intended, not anomalies.
//!
//! [`TimelineCollector::enabled_since`]: crate::driver::timeline::TimelineCollector::enabled_since

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccra_analysis::FrequencyInfo;
use ccra_ir::{Program, RegClass};
use ccra_machine::{CostModel, CycleModel, RegisterFile};
use serde::json::Value;

use crate::driver::admission::{AdmissionConfig, AdmissionController, AdmissionSnapshot};
use crate::driver::chaos::{ChaosConfig, ChaosJob, Fault};
use crate::driver::flightrec::{FlightKind, FlightRecorder, FlightView};
use crate::driver::parallel::{AllocJob, AllocRequest, DefaultJob, ParallelDriver, TimeoutJob};
use crate::driver::queue::{BoundedQueue, PushError, QueueStats};
use crate::driver::timeline::{InstantKind, SpanKind, Timeline, TimelineCollector};
use crate::metrics::MetricsRegistry;
use crate::obsv::{AlertTransition, Observatory};
use crate::pipeline::ProgramAllocation;
use crate::quality::score_program;
use crate::trace::chrometrace::to_chrome_trace;
use crate::trace::NoopSink;
use crate::types::{AllocatorConfig, Overhead};

/// Service counter: jobs accepted by `submit`/`try_submit`.
pub const METRIC_SUBMITTED: &str = "batch_jobs_submitted_total";
/// Service counter: jobs that completed with [`BatchStatus::Ok`].
pub const METRIC_COMPLETED: &str = "batch_jobs_completed_total";
/// Service counter: jobs that completed with [`BatchStatus::Degraded`].
pub const METRIC_DEGRADED: &str = "batch_jobs_degraded_total";
/// Service counter: jobs that completed with [`BatchStatus::Failed`].
pub const METRIC_FAILED: &str = "batch_jobs_failed_total";
/// Service counter: blocking submits that found the queue full and stalled.
pub const METRIC_STALLS: &str = "batch_backpressure_stalls_total";
/// Service counter: submissions shed by the admission limiter.
pub const METRIC_SHED: &str = "batch_jobs_shed_total";
/// Service counter: jobs whose deadline passed while queued
/// ([`BatchStatus::DeadlineExpired`]).
pub const METRIC_EXPIRED: &str = "batch_jobs_expired_total";
/// Service counter: queued jobs resolved by [`BatchHandle::cancel`].
pub const METRIC_CANCELLED: &str = "batch_jobs_cancelled_total";
/// Service counter: jobs whose service-time watchdog fired
/// ([`DegradeCause::Timeout`]).
pub const METRIC_TIMEOUTS: &str = "batch_jobs_timeout_total";
/// Service histogram: microseconds a job sat in the submission queue.
pub const METRIC_QUEUE_WAIT: &str = "batch_queue_wait_micros";
/// Service histogram: microseconds a job took to run (profiling included).
pub const METRIC_JOB_MICROS: &str = "batch_job_micros";
/// Service histogram: microseconds from submission to stored result —
/// queue wait plus service time, the submitter-visible latency.
pub const METRIC_E2E: &str = "batch_e2e_micros";
/// Per-priority end-to-end histogram, accepted jobs that produced an
/// allocation ([`Priority::Interactive`]).
pub const METRIC_E2E_INTERACTIVE: &str = "batch_e2e_micros_interactive";
/// Per-priority end-to-end histogram ([`Priority::Batch`]).
pub const METRIC_E2E_BATCH: &str = "batch_e2e_micros_batch";
/// Per-priority end-to-end histogram ([`Priority::Background`]).
pub const METRIC_E2E_BACKGROUND: &str = "batch_e2e_micros_background";

/// How many automatic flight-record dumps the service retains.
const FLIGHT_DUMP_KEEP: usize = 8;

/// Version of the `/status` document shape. v1 was the pre-observatory
/// document; v2 added `uptime_us` and this `build` object.
pub const STATUS_SCHEMA_VERSION: u32 = 2;

/// Sizing knobs for a [`BatchService`].
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Service workers — whole programs allocated concurrently (≥ 1).
    pub workers: usize,
    /// Submission-queue capacity; submitters beyond it block (≥ 1).
    pub queue_capacity: usize,
    /// Per-program [`ParallelDriver`] workers (1 = allocate each
    /// program's functions serially within its service worker).
    pub shard_workers: usize,
    /// Whether each submission records a [`RequestTrace`] (a per-request
    /// timeline on the submission clock). Off, requests still get ids,
    /// latency histograms, and flight-recorder coverage — just no
    /// timeline.
    pub trace_requests: bool,
    /// How many recent [`RequestTrace`]s the service retains for
    /// `/trace/<id>` queries (per-result copies on [`BatchResult::trace`]
    /// are unaffected).
    pub trace_capacity: usize,
    /// The admission limiter; `None` (the default) keeps the legacy
    /// blocking-backpressure-only behavior. `Some` makes `submit` shed
    /// ([`RejectCause::Shed`]) when the AIMD window is full.
    pub admission: Option<AdmissionConfig>,
    /// A service-time watchdog per job; on expiry remaining functions
    /// take the degraded fallback and the result is flagged
    /// [`DegradeCause::Timeout`]. `None` (the default) runs unbounded.
    pub job_timeout: Option<Duration>,
    /// Deterministic fault injection ([`crate::driver::chaos`]); `None`
    /// (the default) injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Whether each successful job is scored through the quality
    /// observatory ([`crate::quality`]): estimated vs replay-measured
    /// overhead folded into the service metrics and the `/status`
    /// `quality` object. Off (the default) costs one branch per job —
    /// the same zero-cost-when-off discipline as tracing. Scoring is a
    /// pure post-pass on the merged allocation, so enabling it never
    /// changes any result's bytes.
    pub score_quality: bool,
    /// The content-addressed memo cache ([`crate::cache::AllocCache`]):
    /// every submission's functions are looked up before scheduling and
    /// strict results are inserted after, so repeat traffic replays warm
    /// allocations byte-identically. A shared `Arc` — hand the same cache
    /// to several services (or keep a handle to `invalidate`/`clear` it
    /// while the service runs). `None` (the default) allocates everything
    /// fresh.
    pub cache: Option<Arc<crate::cache::AllocCache>>,
    /// The ops observatory ([`crate::obsv`]): a sampler that snapshots
    /// the service metrics into bounded time-series rings and evaluates
    /// alert rules each tick. With
    /// [`ObsvConfig::sampler_thread`](crate::obsv::ObsvConfig::sampler_thread)
    /// set, the service owns a background sampler thread for the
    /// observatory's lifetime; otherwise the caller drives
    /// [`BatchHandle::obsv_tick`] by hand (deterministic tests, chaos
    /// harness). `None` (the default) samples nothing. The observatory
    /// only reads service state — enabling it never changes any result's
    /// bytes.
    pub obsv: Option<crate::obsv::ObsvConfig>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 2,
            queue_capacity: 16,
            shard_workers: 1,
            trace_requests: true,
            trace_capacity: 32,
            admission: None,
            job_timeout: None,
            chaos: None,
            score_quality: false,
            cache: None,
            obsv: None,
        }
    }
}

/// A job's scheduling class: workers serve strictly by priority, EDF
/// within a class (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// A user is waiting (an editor, a REPL): served first.
    Interactive,
    /// Ordinary build traffic — the default.
    #[default]
    Batch,
    /// Best-effort work (prefetch, warming): served when nothing else
    /// waits.
    Background,
}

impl Priority {
    /// Every priority, highest first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Background];

    /// The scheduling rank (0 serves first).
    pub fn rank(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::Background => 2,
        }
    }

    /// A short label for serialized views.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Background => "background",
        }
    }

    /// The per-priority end-to-end histogram this class reports into.
    pub fn e2e_metric(self) -> &'static str {
        match self {
            Priority::Interactive => METRIC_E2E_INTERACTIVE,
            Priority::Batch => METRIC_E2E_BATCH,
            Priority::Background => METRIC_E2E_BACKGROUND,
        }
    }
}

/// The `per_priority` object of `/status`'s `admission` section: for each
/// scheduling class, its completed-job count and end-to-end p50/p99 (log2
/// bucket upper bounds, microseconds) read from the class's histogram
/// ([`Priority::e2e_metric`]). A class that has completed nothing — its
/// histogram absent or empty — reports `{jobs: 0, p50: 0, p99: 0}` rather
/// than disappearing, so dashboards keyed on the class names never 404.
pub fn per_priority_latency(m: &MetricsRegistry) -> Value {
    Value::Obj(
        Priority::ALL
            .iter()
            .map(|p| {
                let (p50, p99, count) = m.histogram(p.e2e_metric()).map_or((0, 0, 0), |h| {
                    (h.quantile(0.5), h.quantile(0.99), h.count())
                });
                (
                    p.label().to_string(),
                    Value::Obj(vec![
                        ("jobs".to_string(), Value::Int(count as i64)),
                        ("p50".to_string(), Value::Int(p50 as i64)),
                        ("p99".to_string(), Value::Int(p99 as i64)),
                    ]),
                )
            })
            .collect(),
    )
}

/// One submission: a program plus the allocation parameters to run it
/// under, its scheduling class, and an optional deadline.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// A caller-chosen label, echoed in the result.
    pub name: String,
    /// The program to allocate.
    pub program: Program,
    /// The register file.
    pub file: RegisterFile,
    /// The allocator configuration.
    pub config: AllocatorConfig,
    /// The scheduling class ([`Priority::Batch`] by default).
    pub priority: Priority,
    /// A relative deadline, measured from the submit call: a job still
    /// queued when it passes resolves [`BatchStatus::DeadlineExpired`]
    /// without running. `None` waits indefinitely.
    pub deadline: Option<Duration>,
}

impl BatchJob {
    /// A default-priority job with no deadline.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        file: RegisterFile,
        config: AllocatorConfig,
    ) -> Self {
        BatchJob {
            name: name.into(),
            program,
            file,
            config,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a relative deadline (measured from the submit call).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The scheduling cost estimate: Σ over functions of instruction
    /// count × expected spill rounds, where the expected rounds grow with
    /// register pressure (virtual registers per integer register). Used
    /// to break deadline ties toward short jobs; it prices work, it never
    /// changes any result.
    pub fn estimated_cost(&self) -> u64 {
        let int_regs = self.file.regs(RegClass::Int).count().max(1) as u64;
        self.program
            .functions()
            .map(|(_, f)| {
                // +1 per block for the terminator.
                let instrs: u64 = f.blocks().map(|(_, b)| b.insts.len() as u64 + 1).sum();
                let expected_rounds = 1 + f.num_vregs() as u64 / int_regs;
                instrs * expected_rounds
            })
            .sum()
    }
}

/// Why a submission was rejected (see [`SubmitError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The queue is at capacity (only [`BatchService::try_submit`]
    /// rejects with this; the blocking submit waits instead).
    QueueFull,
    /// The admission limiter shed the submission; retry after roughly the
    /// hinted number of microseconds.
    Shed {
        /// The limiter's retry-after hint, microseconds.
        retry_after_us: u64,
    },
    /// The queue is closed (the service is shutting down).
    ShuttingDown,
}

impl RejectCause {
    /// A short label for serialized views and logs.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::QueueFull => "queue_full",
            RejectCause::Shed { .. } => "shed",
            RejectCause::ShuttingDown => "shutting_down",
        }
    }
}

/// A rejected submission: the job rides back to the caller (nothing is
/// silently dropped) together with *why* it was rejected.
#[derive(Debug)]
pub struct SubmitError {
    /// The rejected job, returned for retry or reporting.
    pub job: BatchJob,
    /// Why it was rejected.
    pub cause: RejectCause,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cause {
            RejectCause::QueueFull => write!(f, "submission queue is at capacity"),
            RejectCause::Shed { retry_after_us } => write!(
                f,
                "shed by the admission limiter; retry after ~{retry_after_us}us"
            ),
            RejectCause::ShuttingDown => write!(f, "the service is shutting down"),
        }
    }
}

/// Why a job degraded (see [`BatchStatus::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCause {
    /// The strict allocator failed (or panicked) on the degraded
    /// functions — the per-function fallback path.
    Alloc,
    /// The per-job service-time watchdog ([`BatchConfig::job_timeout`])
    /// fired; functions not yet allocated took the fallback.
    Timeout,
}

impl DegradeCause {
    /// A short label for serialized views.
    pub fn label(self) -> &'static str {
        match self {
            DegradeCause::Alloc => "alloc",
            DegradeCause::Timeout => "timeout",
        }
    }
}

/// How one batch job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchStatus {
    /// Every function allocated strictly.
    Ok,
    /// The program allocated, but some functions fell back to the
    /// degraded spill-everything allocation.
    Degraded {
        /// How many functions degraded.
        funcs: usize,
        /// Why they degraded.
        cause: DegradeCause,
    },
    /// The job produced no allocation (profiling failed, or the degraded
    /// fallback itself failed).
    Failed {
        /// The rendered error.
        error: String,
    },
    /// The job's deadline passed while it was queued; it never ran.
    DeadlineExpired,
    /// The job was cancelled while queued; it never ran.
    Cancelled,
}

impl BatchStatus {
    /// A short status label (`"ok"`, `"degraded"`, `"failed"`,
    /// `"deadline_expired"`, `"cancelled"`) for serialized views.
    pub fn label(&self) -> &'static str {
        match self {
            BatchStatus::Ok => "ok",
            BatchStatus::Degraded { .. } => "degraded",
            BatchStatus::Failed { .. } => "failed",
            BatchStatus::DeadlineExpired => "deadline_expired",
            BatchStatus::Cancelled => "cancelled",
        }
    }
}

/// The outcome of [`BatchHandle::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: it will resolve
    /// [`BatchStatus::Cancelled`] without running.
    Cancelled,
    /// A worker is running it; it runs to completion (allocation is not
    /// interruptible mid-function, and a half-cancelled result helps
    /// nobody).
    InFlight,
    /// Already resolved; cancelling is a no-op.
    Done,
    /// The id was never accepted (unknown, shed, or rejected).
    Unknown,
}

/// The request-scoped observability record of one submission: its trace
/// identity, queue-wait / service / end-to-end durations, and a timeline
/// whose clock starts at the submission instant.
///
/// Everything here is wall-clock and scheduling-dependent — quarantined
/// next to the result like [`crate::driver::DriverReport`], never inside
/// the allocation.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// The submission id (the trace identity; rendered `req-<id>`).
    pub id: u64,
    /// The job's label.
    pub name: String,
    /// Microseconds the submission sat in the queue.
    pub queue_us: u64,
    /// Microseconds the service worker spent on it (profiling included).
    pub service_us: u64,
    /// Microseconds from submission to stored result.
    pub e2e_us: u64,
    /// The per-request timeline: queue-wait span, shard job/phase spans,
    /// driver merge, service span, reply instant. `ts = 0` is the
    /// submission instant.
    pub timeline: Timeline,
}

impl RequestTrace {
    /// The trace id as served by `/trace/<id>`.
    pub fn trace_id(&self) -> String {
        format!("req-{}", self.id)
    }

    /// The trace as a Chrome Trace Event Format value
    /// ([`crate::trace::chrometrace::to_chrome_trace`]) with the request's
    /// identity and latency split as extra top-level fields (Perfetto
    /// ignores unknown keys, so the object stays directly loadable).
    pub fn to_chrome_value(&self) -> Value {
        let mut fields = match to_chrome_trace(&self.timeline) {
            Value::Obj(fields) => fields,
            other => return other,
        };
        fields.push(("requestId".to_string(), Value::Str(self.trace_id())));
        fields.push(("requestName".to_string(), Value::Str(self.name.clone())));
        fields.push(("queueUs".to_string(), Value::Int(self.queue_us as i64)));
        fields.push(("serviceUs".to_string(), Value::Int(self.service_us as i64)));
        fields.push(("e2eUs".to_string(), Value::Int(self.e2e_us as i64)));
        Value::Obj(fields)
    }
}

/// The outcome of one submission.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// The submission id [`BatchService::submit`] returned.
    pub id: u64,
    /// The label from the [`BatchJob`].
    pub name: String,
    /// How the job ended.
    pub status: BatchStatus,
    /// The allocation, present only when the job ran ([`BatchStatus::Ok`]
    /// or [`BatchStatus::Degraded`]).
    pub allocation: Option<ProgramAllocation>,
    /// Wall-clock microseconds the job took (profiling included); 0 when
    /// it never ran.
    pub micros: u64,
    /// The request-scoped trace, absent when
    /// [`BatchConfig::trace_requests`] is off.
    pub trace: Option<RequestTrace>,
}

/// Where an accepted submission is in its lifecycle — the cancellation
/// state machine: `Queued → Running → Resolved`, with `Queued →
/// Resolved` for cancellations and expiries. Workers and cancellers
/// serialize on the table's lock, so exactly one side wins each
/// transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued { cancelled: bool },
    Running,
    Resolved,
}

/// The scheduling key workers pop the minimum of: priority class, then
/// earliest absolute deadline (deadline-less jobs sort after every
/// deadline in their class), then estimated cost, then submission id.
type OrderKey = (u8, (u8, Instant), u64, u64);

/// One accepted submission as it sits in the queue.
struct QueuedJob {
    id: u64,
    queued_at: Instant,
    deadline_at: Option<Instant>,
    order_key: OrderKey,
    job: BatchJob,
}

impl QueuedJob {
    fn new(id: u64, job: BatchJob) -> Self {
        let queued_at = Instant::now();
        let deadline_at = job.deadline.map(|d| queued_at + d);
        QueuedJob {
            id,
            queued_at,
            deadline_at,
            // The whole scheduling key is fixed at submit time, so compute
            // it once here — [`BoundedQueue::pop_min_by_key`] evaluates
            // the key O(depth) times per pop, and the estimated-cost term
            // walks every instruction of the program.
            order_key: (
                job.priority.rank(),
                match deadline_at {
                    Some(at) => (0, at),
                    None => (1, queued_at),
                },
                job.estimated_cost(),
                id,
            ),
            job,
        }
    }

    /// The precomputed [`OrderKey`] (see [`QueuedJob::new`]).
    fn order_key(&self) -> OrderKey {
        self.order_key
    }
}

/// The service-wide quality aggregate (jobs scored so far): sums of the
/// per-job program scores, folded under the shared metrics lock's
/// sibling. Deterministic given the set of scored jobs — sums commute.
#[derive(Debug, Default, Clone)]
struct QualityAgg {
    jobs_scored: u64,
    replay_failures: u64,
    estimated: Overhead,
    measured: Overhead,
    estimated_cycles: f64,
    measured_cycles: f64,
}

struct Shared {
    queue: BoundedQueue<QueuedJob>,
    results: Mutex<Vec<BatchResult>>,
    metrics: Mutex<MetricsRegistry>,
    phases: Mutex<HashMap<u64, JobPhase>>,
    admission: Option<AdmissionController>,
    in_flight: AtomicU64,
    cost: CostModel,
    shard_workers: usize,
    trace_requests: bool,
    trace_capacity: usize,
    job_timeout: Option<Duration>,
    chaos: Option<ChaosConfig>,
    score_quality: bool,
    cache: Option<Arc<crate::cache::AllocCache>>,
    quality: Mutex<QualityAgg>,
    traces: Mutex<VecDeque<RequestTrace>>,
    flight: FlightRecorder,
    dumps: Mutex<VecDeque<(u64, Value)>>,
    obsv: Option<Arc<Observatory>>,
    /// The flight lane alert transitions record on (the last lane).
    /// Single-writer discipline: whoever drives ticks — the background
    /// sampler thread or the manual `obsv_tick` caller — writes it.
    obsv_lane: u32,
    started: Instant,
}

impl Shared {
    /// The live metrics plus scrape-time gauges — the one snapshot shape
    /// both [`BatchHandle::metrics_snapshot`] and the observatory sampler
    /// read.
    fn scraped_metrics(&self) -> MetricsRegistry {
        let mut m = self.metrics.lock().expect("batch metrics lock").clone();
        let stats = self.queue.stats();
        m.gauge_set("batch_queue_depth", stats.depth as f64);
        m.gauge_set(
            "batch_queue_occupancy",
            stats.depth as f64 / stats.capacity as f64,
        );
        m.gauge_set("batch_queue_high_water", stats.high_water as f64);
        m.gauge_set("batch_queue_blocked_pushes", stats.blocked_pushes as f64);
        m.gauge_set(
            "batch_in_flight",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        if let Some(adm) = &self.admission {
            let snap = adm.snapshot();
            m.gauge_set("batch_admission_limit", snap.limit);
            m.gauge_set("batch_admission_admitted", snap.admitted as f64);
        }
        if let Some(cache) = &self.cache {
            cache.publish(&mut m);
        }
        m
    }

    /// Samples the observatory unconditionally (no-op without one) and
    /// lands this tick's alert transitions in the flight recorder.
    fn obsv_tick(&self) -> Vec<AlertTransition> {
        let Some(obsv) = &self.obsv else {
            return Vec::new();
        };
        let transitions = obsv.tick(&self.scraped_metrics());
        self.record_alert_transitions(&transitions);
        transitions
    }

    /// The interval-gated variant the background sampler polls.
    fn obsv_maybe_tick(&self) {
        if let Some(obsv) = &self.obsv {
            let transitions = obsv.maybe_tick(&self.scraped_metrics());
            self.record_alert_transitions(&transitions);
        }
    }

    fn record_alert_transitions(&self, transitions: &[AlertTransition]) {
        for t in transitions {
            let kind = if t.fired {
                FlightKind::AlertFire
            } else {
                FlightKind::AlertClear
            };
            let value = t.value.abs().min(u64::MAX as f64) as u64;
            self.flight
                .record(self.obsv_lane, kind, t.rule_index as u64, value);
        }
    }
}

/// The batch allocation service (see the module docs).
pub struct BatchService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
    sampler_stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
}

/// Runs one submission on a service worker: builds the request-scoped
/// collector (clock zero = the submission instant), records the
/// queue-wait and service spans plus service-level flight events, shards
/// the program through [`ParallelDriver`], and assembles the
/// [`BatchResult`] with its [`RequestTrace`].
///
/// `flight` is the worker's lane block: shard workers record on view
/// lanes `0..shard_workers`, the service-level events land on view lane
/// `shard_workers` (written only by this thread, before the pool spawns
/// and after it joins).
fn run_batch_job(
    id: u64,
    job: BatchJob,
    shared: &Shared,
    flight: FlightView<'_>,
    queued_at: Instant,
) -> BatchResult {
    let start = Instant::now();
    let shard_workers = shared.shard_workers;
    let service_tid = shard_workers as u32 + 1;
    let collector = if shared.trace_requests {
        TimelineCollector::enabled_since(queued_at)
    } else {
        TimelineCollector::disabled()
    };
    let mut lane = collector.lane(service_tid);
    // The queue-wait span: submission (the epoch) to pick-up (now).
    let queue_us = collector.now_us();
    lane.backdated_span(
        SpanKind::Queue,
        queue_us,
        || "queue wait".to_string(),
        || None,
    );
    flight.record(shard_workers as u32, FlightKind::JobStart, id, 0);
    let service_span = lane.start();

    // Chaos: the per-submission fault is a pure function of (seed, id).
    // A latency spike is a service-level fault, applied once before the
    // driver; panic/error faults afflict every function via the job
    // wrapper below.
    let fault = shared
        .chaos
        .map_or(Fault::None, |chaos| chaos.fault_for(id));
    if fault == Fault::Spike {
        if let Some(chaos) = shared.chaos {
            std::thread::sleep(Duration::from_micros(chaos.spike_us));
        }
    }
    // The job the shard pool runs: the strict pipeline, optionally
    // wrapped in fault injection, optionally wrapped in the service-time
    // watchdog (the watchdog is outermost so a timed-out job cannot be
    // held up by injected work either).
    let default_job = DefaultJob;
    let chaos_job = ChaosJob::new(&default_job, fault, id);
    let inner: &dyn AllocJob = if matches!(fault, Fault::Panic | Fault::Error) {
        &chaos_job
    } else {
        &default_job
    };
    let timeout_job = shared
        .job_timeout
        .map(|t| TimeoutJob::new(inner, start + t));
    let job_ref: &dyn AllocJob = timeout_job.as_ref().map_or(inner, |t| t as &dyn AllocJob);

    let driver = ParallelDriver::new(shard_workers);
    let (status, allocation, timeline) = match FrequencyInfo::profile(&job.program) {
        Err(e) => (
            BatchStatus::Failed {
                error: format!("profiling failed: {e}"),
            },
            None,
            Timeline::empty(),
        ),
        Ok(freq) => {
            let req = AllocRequest {
                program: &job.program,
                freq: &freq,
                file: job.file,
                config: &job.config,
                cost: &shared.cost,
            };
            match driver.allocate_program_cached(
                &req,
                &mut NoopSink,
                &mut MetricsRegistry::disabled(),
                job_ref,
                &collector,
                flight,
                shared.cache.as_deref(),
            ) {
                Err(e) => (
                    BatchStatus::Failed {
                        error: e.to_string(),
                    },
                    None,
                    Timeline::empty(),
                ),
                Ok((alloc, report, timeline)) => {
                    if shared.score_quality {
                        let quality = score_program(
                            &alloc,
                            &freq,
                            &job.config.label(),
                            &CycleModel::decstation(),
                        );
                        quality.export_metrics(
                            &mut shared.metrics.lock().expect("batch metrics lock"),
                        );
                        let mut agg = shared.quality.lock().expect("batch quality lock");
                        agg.jobs_scored += 1;
                        agg.estimated += quality.estimated;
                        agg.estimated_cycles += quality.estimated_cycles;
                        match quality.measured {
                            Some(measured) => {
                                agg.measured += measured;
                                agg.measured_cycles += quality.measured_cycles.unwrap_or(0.0);
                            }
                            None => agg.replay_failures += 1,
                        }
                    }
                    let degraded = report.degraded_funcs();
                    let status = if degraded == 0 {
                        BatchStatus::Ok
                    } else {
                        let cause = if timeout_job.as_ref().is_some_and(|t| t.fired()) {
                            DegradeCause::Timeout
                        } else {
                            DegradeCause::Alloc
                        };
                        BatchStatus::Degraded {
                            funcs: degraded,
                            cause,
                        }
                    };
                    (status, Some(alloc), timeline)
                }
            }
        }
    };

    let name = job.name;
    let service_us = start.elapsed().as_micros() as u64;
    let (end_kind, end_payload) = match &status {
        BatchStatus::Ok => (FlightKind::JobOk, 0),
        BatchStatus::Degraded {
            funcs,
            cause: DegradeCause::Timeout,
        } => (FlightKind::Timeout, *funcs as u64),
        BatchStatus::Degraded { funcs, .. } => (FlightKind::JobDegraded, *funcs as u64),
        BatchStatus::Failed { .. } => (FlightKind::JobFailed, 0),
        // run_batch_job only runs jobs; expiry/cancellation resolve in
        // resolve_unrun.
        BatchStatus::DeadlineExpired | BatchStatus::Cancelled => (FlightKind::JobFailed, 0),
    };
    flight.record(shard_workers as u32, end_kind, id, end_payload);
    lane.end_span(service_span, SpanKind::Service, || {
        format!("req-{id} {name}")
    });
    lane.instant(InstantKind::Reply, || "reply".to_string());
    let e2e_us = collector.now_us();

    let trace = if shared.trace_requests {
        let mut timeline = timeline;
        timeline.events.extend(lane.into_events());
        Some(RequestTrace {
            id,
            name: name.clone(),
            queue_us,
            service_us,
            e2e_us,
            timeline,
        })
    } else {
        None
    };
    BatchResult {
        id,
        name,
        status,
        allocation,
        micros: service_us,
        trace,
    }
}

/// Resolves a submission that never ran (deadline expiry or
/// cancellation): no allocation, zero service time, but the backdated
/// queue-wait span and the reply instant are still recorded so the
/// request's trace tells the whole story.
fn resolve_unrun(
    id: u64,
    job: BatchJob,
    status: BatchStatus,
    shared: &Shared,
    queued_at: Instant,
) -> BatchResult {
    let service_tid = shared.shard_workers as u32 + 1;
    let collector = if shared.trace_requests {
        TimelineCollector::enabled_since(queued_at)
    } else {
        TimelineCollector::disabled()
    };
    let mut lane = collector.lane(service_tid);
    let queue_us = collector.now_us();
    let label = status.label();
    lane.backdated_span(
        SpanKind::Queue,
        queue_us,
        || "queue wait".to_string(),
        || Some(label.to_string()),
    );
    lane.instant(InstantKind::Reply, || format!("reply ({label})"));
    let e2e_us = collector.now_us();
    let trace = if shared.trace_requests {
        let mut timeline = Timeline::empty();
        timeline.events.extend(lane.into_events());
        Some(RequestTrace {
            id,
            name: job.name.clone(),
            queue_us,
            service_us: 0,
            e2e_us,
            timeline,
        })
    } else {
        None
    };
    BatchResult {
        id,
        name: job.name,
        status,
        allocation: None,
        micros: 0,
        trace,
    }
}

impl Shared {
    fn note_completion(&self, queued_at: Instant, priority: Priority, result: &BatchResult) {
        let e2e = queued_at.elapsed().as_micros() as u64;
        match &result.status {
            BatchStatus::DeadlineExpired => {
                self.metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_EXPIRED);
                // A deadline miss is congestion evidence: back the
                // admission window off just like an over-SLO completion.
                if let Some(adm) = &self.admission {
                    adm.on_miss();
                }
                return;
            }
            BatchStatus::Cancelled => {
                self.metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_CANCELLED);
                // Cancellation says nothing about load: free the slot,
                // leave the window alone.
                if let Some(adm) = &self.admission {
                    adm.release();
                }
                return;
            }
            _ => {}
        }
        let mut m = self.metrics.lock().expect("batch metrics lock");
        m.observe(METRIC_QUEUE_WAIT, e2e.saturating_sub(result.micros));
        m.observe(METRIC_JOB_MICROS, result.micros);
        m.observe(METRIC_E2E, e2e);
        match &result.status {
            BatchStatus::Ok => {
                m.inc(METRIC_COMPLETED);
                m.observe(priority.e2e_metric(), e2e);
            }
            BatchStatus::Degraded { cause, .. } => {
                m.inc(METRIC_DEGRADED);
                if *cause == DegradeCause::Timeout {
                    m.inc(METRIC_TIMEOUTS);
                }
                m.observe(priority.e2e_metric(), e2e);
            }
            BatchStatus::Failed { .. } => m.inc(METRIC_FAILED),
            BatchStatus::DeadlineExpired | BatchStatus::Cancelled => {
                unreachable!("handled above")
            }
        }
        drop(m);
        if let Some(adm) = &self.admission {
            adm.on_complete(e2e);
        }
    }

    /// Retains a completed request's trace in the bounded recent-trace
    /// buffer and, when the job ended [`BatchStatus::Degraded`] or
    /// [`BatchStatus::Failed`], snapshots the flight recorder into the
    /// dump ring. Expiries and cancellations keep their traces but do not
    /// dump: under overload they are policy, not anomaly.
    fn note_observability(&self, result: &BatchResult) {
        if let Some(trace) = &result.trace {
            let mut traces = self.traces.lock().expect("batch traces lock");
            while traces.len() >= self.trace_capacity.max(1) {
                traces.pop_front();
            }
            traces.push_back(trace.clone());
        }
        if matches!(
            result.status,
            BatchStatus::Degraded { .. } | BatchStatus::Failed { .. }
        ) {
            let dump = self.flight.dump();
            let mut dumps = self.dumps.lock().expect("batch dumps lock");
            while dumps.len() >= FLIGHT_DUMP_KEEP {
                dumps.pop_front();
            }
            dumps.push_back((result.id, dump));
        }
    }

    /// Stores a result and marks its id resolved — the single exit point
    /// of the per-id state machine.
    fn store_result(&self, result: BatchResult) {
        let id = result.id;
        self.results
            .lock()
            .expect("batch results lock")
            .push(result);
        self.phases
            .lock()
            .expect("batch phases lock")
            .insert(id, JobPhase::Resolved);
    }
}

/// A cloneable, read-only view of a live [`BatchService`] (see
/// [`BatchService::handle`]).
///
/// The handle holds the service's shared state but not its lifecycle:
/// dropping it does nothing, and after [`BatchService::shutdown`] it keeps
/// answering (with an empty result set, since shutdown hands the results
/// to its caller).
#[derive(Clone)]
pub struct BatchHandle {
    shared: Arc<Shared>,
}

impl BatchHandle {
    /// Jobs queued but not yet picked up.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs a worker is running right now.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// The submission queue's traffic counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.shared.queue.stats()
    }

    /// Requests cancellation of submission `id` (see [`CancelOutcome`]):
    /// still queued → resolves [`BatchStatus::Cancelled`] without
    /// running; in flight → runs to completion; already resolved or never
    /// accepted → no-op. Race-free: the per-id phase table serializes
    /// this against the worker's pick-up.
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut phases = self.shared.phases.lock().expect("batch phases lock");
        match phases.get_mut(&id) {
            Some(JobPhase::Queued { cancelled }) => {
                *cancelled = true;
                CancelOutcome::Cancelled
            }
            Some(JobPhase::Running) => CancelOutcome::InFlight,
            Some(JobPhase::Resolved) => CancelOutcome::Done,
            None => CancelOutcome::Unknown,
        }
    }

    /// The admission limiter's live snapshot, when admission control is
    /// enabled.
    pub fn admission_snapshot(&self) -> Option<AdmissionSnapshot> {
        self.shared.admission.as_ref().map(|a| a.snapshot())
    }

    /// Per-job statuses of every completed job so far, sorted by
    /// submission id.
    pub fn statuses(&self) -> Vec<(u64, String, BatchStatus)> {
        let results = self.shared.results.lock().expect("batch results lock");
        let mut out: Vec<(u64, String, BatchStatus)> = results
            .iter()
            .map(|r| (r.id, r.name.clone(), r.status.clone()))
            .collect();
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Total functions that degraded across completed jobs.
    pub fn degraded_funcs(&self) -> usize {
        self.shared
            .results
            .lock()
            .expect("batch results lock")
            .iter()
            .map(|r| match r.status {
                BatchStatus::Degraded { funcs, .. } => funcs,
                _ => 0,
            })
            .sum()
    }

    /// The service metrics plus scrape-time gauges (queue depth and
    /// occupancy, in-flight count, queue high-water and blocked pushes,
    /// and — when admission control is on — the limiter's window and
    /// admitted count).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.shared.scraped_metrics()
    }

    /// The service's observatory, when [`BatchConfig::obsv`] was set.
    pub fn observatory(&self) -> Option<Arc<Observatory>> {
        self.shared.obsv.clone()
    }

    /// Drives one observatory sample tick by hand: snapshots the live
    /// metrics, pushes series, evaluates alert rules, and records the
    /// returned transitions into the flight recorder. This is how
    /// deterministic callers (tests, `loadgen --chaos`) sample — a
    /// service whose config asked for the background sampler thread
    /// should not also call this (the observatory lane is single-writer
    /// by discipline). Returns the tick's transitions; a no-op without an
    /// observatory.
    pub fn obsv_tick(&self) -> Vec<AlertTransition> {
        self.shared.obsv_tick()
    }

    /// The name of a critical alert rule currently firing, if any —
    /// what flips `/healthz` to 503.
    pub fn critical_alert(&self) -> Option<String> {
        self.shared.obsv.as_ref()?.critical_firing()
    }

    /// Microseconds since the service started.
    pub fn uptime_us(&self) -> u64 {
        self.shared.started.elapsed().as_micros() as u64
    }

    /// [`BatchHandle::metrics_snapshot`] in the Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus_text()
    }

    /// The [`RequestTrace`] of submission `id`, if the service still holds
    /// it — first from the bounded recent-trace buffer, then from the
    /// stored results.
    pub fn trace(&self, id: u64) -> Option<RequestTrace> {
        let traces = self.shared.traces.lock().expect("batch traces lock");
        if let Some(t) = traces.iter().find(|t| t.id == id) {
            return Some(t.clone());
        }
        drop(traces);
        self.shared
            .results
            .lock()
            .expect("batch results lock")
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.trace.clone())
    }

    /// The trace of submission `id` rendered as Chrome-trace JSON
    /// ([`RequestTrace::to_chrome_value`]) — what `/trace/<id>` serves.
    pub fn trace_chrome_json(&self, id: u64) -> Option<String> {
        self.trace(id).map(|t| t.to_chrome_value().to_json())
    }

    /// The flight-recorder document served at `/debug/flightrec`: the live
    /// recorder dump plus the retained automatic dumps (most recent last),
    /// each tagged with the submission id that triggered it.
    pub fn flightrec_value(&self) -> Value {
        let dumps = self.shared.dumps.lock().expect("batch dumps lock");
        let retained = dumps
            .iter()
            .map(|(id, dump)| {
                Value::Obj(vec![
                    ("id".to_string(), Value::Int(*id as i64)),
                    ("dump".to_string(), dump.clone()),
                ])
            })
            .collect();
        drop(dumps);
        Value::Obj(vec![
            ("live".to_string(), self.shared.flight.dump()),
            ("dumps".to_string(), Value::Arr(retained)),
        ])
    }

    /// The live status document served at `/status`:
    ///
    /// ```json
    /// {"uptime_us": 1234567,
    ///  "build": {"crate_version": "0.1.0", "status_schema": 2},
    ///  "queue_depth": 0, "in_flight": 1, "completed": 2,
    ///  "degraded_funcs": 0,
    ///  "jobs": [{"id": 0, "name": "eqntott", "status": "ok",
    ///            "degraded_funcs": 0, "micros": 1234}, ...]}
    /// ```
    ///
    /// Failed jobs carry an extra `"error"` string; degraded jobs an extra
    /// `"degrade_cause"` (`"alloc"` or `"timeout"`). A `"latency"` object
    /// reports the queue-wait / service / end-to-end SLO quantiles
    /// (log2-bucket upper bounds, microseconds) alongside the mean and
    /// sample count:
    ///
    /// ```json
    /// {"latency": {"queue_wait": {"p50": 15, "p95": 63, "p99": 63,
    ///                             "mean_us": 21.5, "count": 4}, ...}}
    /// ```
    ///
    /// An `"admission"` object reports the overload posture — the
    /// limiter's window and in-system count (when enabled), the shed /
    /// expired / cancelled / timeout counters, and per-priority
    /// end-to-end quantiles for accepted jobs:
    ///
    /// ```json
    /// {"admission": {"enabled": true, "limit": 12.0, "admitted": 3,
    ///                "slo_us": 50000, "shed": 5, "expired": 2,
    ///                "cancelled": 1, "timeouts": 0,
    ///                "per_priority": {"interactive": {"jobs": 9,
    ///                    "p50": 1023, "p99": 4095}, ...}}}
    /// ```
    ///
    /// A `"cache"` object reports the memo cache when
    /// [`BatchConfig::cache`] is set — occupancy, traffic, and hit rate
    /// (just `{"enabled": false}` otherwise):
    ///
    /// ```json
    /// {"cache": {"enabled": true, "entries": 42, "bytes": 81920,
    ///            "budget_bytes": 67108864, "hits": 990, "misses": 10,
    ///            "hit_rate": 0.99, "insertions": 10, "evictions": 0}}
    /// ```
    pub fn status_value(&self) -> Value {
        let statuses = self.statuses();
        let results = self.shared.results.lock().expect("batch results lock");
        let micros_of = |id: u64| {
            results
                .iter()
                .find(|r| r.id == id)
                .map_or(0, |r| r.micros as i64)
        };
        let jobs = statuses
            .iter()
            .map(|(id, name, status)| {
                let mut fields = vec![
                    ("id".to_string(), Value::Int(*id as i64)),
                    ("name".to_string(), Value::Str(name.clone())),
                    ("status".to_string(), Value::Str(status.label().to_string())),
                    (
                        "degraded_funcs".to_string(),
                        Value::Int(match status {
                            BatchStatus::Degraded { funcs, .. } => *funcs as i64,
                            _ => 0,
                        }),
                    ),
                    ("micros".to_string(), Value::Int(micros_of(*id))),
                ];
                if let BatchStatus::Degraded { cause, .. } = status {
                    fields.push((
                        "degrade_cause".to_string(),
                        Value::Str(cause.label().to_string()),
                    ));
                }
                if let BatchStatus::Failed { error } = status {
                    fields.push(("error".to_string(), Value::Str(error.clone())));
                }
                Value::Obj(fields)
            })
            .collect();
        drop(results);
        let m = self.shared.metrics.lock().expect("batch metrics lock");
        let latency_of = |name: &str| {
            let (p50, p95, p99, mean, count) = m.histogram(name).map_or((0, 0, 0, 0.0, 0), |h| {
                (
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.mean(),
                    h.count(),
                )
            });
            Value::Obj(vec![
                ("p50".to_string(), Value::Int(p50 as i64)),
                ("p95".to_string(), Value::Int(p95 as i64)),
                ("p99".to_string(), Value::Int(p99 as i64)),
                ("mean_us".to_string(), Value::Float(mean)),
                ("count".to_string(), Value::Int(count as i64)),
            ])
        };
        let latency = Value::Obj(vec![
            ("queue_wait".to_string(), latency_of(METRIC_QUEUE_WAIT)),
            ("service".to_string(), latency_of(METRIC_JOB_MICROS)),
            ("e2e".to_string(), latency_of(METRIC_E2E)),
        ]);
        let per_priority = per_priority_latency(&m);
        let mut admission = vec![(
            "enabled".to_string(),
            Value::Bool(self.shared.admission.is_some()),
        )];
        if let Some(adm) = &self.shared.admission {
            let snap = adm.snapshot();
            admission.push(("limit".to_string(), Value::Float(snap.limit)));
            admission.push(("admitted".to_string(), Value::Int(snap.admitted as i64)));
            admission.push(("slo_us".to_string(), Value::Int(adm.config().slo_us as i64)));
        }
        admission.push((
            "shed".to_string(),
            Value::Int(m.counter(METRIC_SHED) as i64),
        ));
        admission.push((
            "expired".to_string(),
            Value::Int(m.counter(METRIC_EXPIRED) as i64),
        ));
        admission.push((
            "cancelled".to_string(),
            Value::Int(m.counter(METRIC_CANCELLED) as i64),
        ));
        admission.push((
            "timeouts".to_string(),
            Value::Int(m.counter(METRIC_TIMEOUTS) as i64),
        ));
        admission.push(("per_priority".to_string(), per_priority));
        drop(m);
        let mut quality = vec![(
            "enabled".to_string(),
            Value::Bool(self.shared.score_quality),
        )];
        if self.shared.score_quality {
            let agg = self.shared.quality.lock().expect("batch quality lock");
            quality.push((
                "jobs_scored".to_string(),
                Value::Int(agg.jobs_scored as i64),
            ));
            quality.push((
                "replay_failures".to_string(),
                Value::Int(agg.replay_failures as i64),
            ));
            quality.push((
                "estimated_ops".to_string(),
                Value::Float(agg.estimated.total()),
            ));
            quality.push((
                "measured_ops".to_string(),
                Value::Float(agg.measured.total()),
            ));
            quality.push((
                "estimated_cycles".to_string(),
                Value::Float(agg.estimated_cycles),
            ));
            quality.push((
                "measured_cycles".to_string(),
                Value::Float(agg.measured_cycles),
            ));
            let drift = if agg.measured.total() > 0.0 {
                100.0 * (agg.estimated.total() - agg.measured.total()) / agg.measured.total()
            } else {
                0.0
            };
            quality.push(("drift_pct".to_string(), Value::Float(drift)));
        }
        let mut cache = vec![(
            "enabled".to_string(),
            Value::Bool(self.shared.cache.is_some()),
        )];
        if let Some(c) = &self.shared.cache {
            let stats = c.stats();
            cache.push(("entries".to_string(), Value::Int(stats.entries as i64)));
            cache.push(("bytes".to_string(), Value::Int(stats.bytes as i64)));
            cache.push((
                "budget_bytes".to_string(),
                Value::Int(stats.byte_budget as i64),
            ));
            cache.push(("hits".to_string(), Value::Int(stats.hits as i64)));
            cache.push(("misses".to_string(), Value::Int(stats.misses as i64)));
            cache.push(("hit_rate".to_string(), Value::Float(stats.hit_rate())));
            cache.push((
                "insertions".to_string(),
                Value::Int(stats.insertions as i64),
            ));
            cache.push(("evictions".to_string(), Value::Int(stats.evictions as i64)));
        }
        Value::Obj(vec![
            ("uptime_us".to_string(), Value::Int(self.uptime_us() as i64)),
            (
                "build".to_string(),
                Value::Obj(vec![
                    (
                        "crate_version".to_string(),
                        Value::Str(env!("CARGO_PKG_VERSION").to_string()),
                    ),
                    (
                        "status_schema".to_string(),
                        Value::Int(STATUS_SCHEMA_VERSION as i64),
                    ),
                ]),
            ),
            (
                "queue_depth".to_string(),
                Value::Int(self.queue_depth() as i64),
            ),
            ("in_flight".to_string(), Value::Int(self.in_flight() as i64)),
            ("completed".to_string(), Value::Int(statuses.len() as i64)),
            (
                "degraded_funcs".to_string(),
                Value::Int(self.degraded_funcs() as i64),
            ),
            ("latency".to_string(), latency),
            ("admission".to_string(), Value::Obj(admission)),
            ("quality".to_string(), Value::Obj(quality)),
            ("cache".to_string(), Value::Obj(cache)),
            ("jobs".to_string(), Value::Arr(jobs)),
        ])
    }
}

impl BatchService {
    /// Starts the service: spawns [`BatchConfig::workers`] threads that
    /// drain the submission queue until [`BatchService::shutdown`]. Uses
    /// the paper's cost model; see [`BatchService::start_with_cost`].
    pub fn start(config: BatchConfig) -> Self {
        BatchService::start_with_cost(config, CostModel::paper())
    }

    /// Like [`BatchService::start`] with an explicit cost model.
    pub fn start_with_cost(config: BatchConfig, cost: CostModel) -> Self {
        let service_workers = config.workers.max(1);
        let shard_workers = config.shard_workers.max(1);
        // Flight lanes: lane 0 is the submission path; each service worker
        // `w` owns the contiguous block starting at `1 + w * (shard + 1)`
        // (its shard workers, then its driver/service lane). With an
        // observatory, one extra lane at the end takes alert transitions.
        let obsv = config.obsv.map(|c| Arc::new(Observatory::new(c)));
        let base_lanes = 1 + service_workers * (shard_workers + 1);
        let flight_lanes = base_lanes + usize::from(obsv.is_some());
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            results: Mutex::new(Vec::new()),
            metrics: Mutex::new(MetricsRegistry::new()),
            phases: Mutex::new(HashMap::new()),
            admission: config.admission.map(AdmissionController::new),
            in_flight: AtomicU64::new(0),
            cost,
            shard_workers,
            trace_requests: config.trace_requests,
            trace_capacity: config.trace_capacity.max(1),
            job_timeout: config.job_timeout,
            chaos: config.chaos,
            score_quality: config.score_quality,
            cache: config.cache,
            quality: Mutex::new(QualityAgg::default()),
            traces: Mutex::new(VecDeque::new()),
            flight: FlightRecorder::new(flight_lanes),
            dumps: Mutex::new(VecDeque::new()),
            obsv,
            obsv_lane: (flight_lanes - 1) as u32,
            started: Instant::now(),
        });
        let workers = (0..service_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let lane_base = (1 + w * (shard_workers + 1)) as u32;
                std::thread::spawn(move || {
                    while let Some(queued) = shared.queue.pop_min_by_key(QueuedJob::order_key) {
                        let QueuedJob {
                            id,
                            queued_at,
                            deadline_at,
                            job,
                            ..
                        } = queued;
                        let priority = job.priority;
                        let flight = shared.flight.view(lane_base);
                        // The pick-up transition of the state machine:
                        // cancelled or expired jobs resolve without
                        // running; everything else goes Running.
                        let mut phases = shared.phases.lock().expect("batch phases lock");
                        let cancelled =
                            matches!(phases.get(&id), Some(JobPhase::Queued { cancelled: true }));
                        let expired =
                            !cancelled && deadline_at.is_some_and(|at| Instant::now() >= at);
                        if cancelled || expired {
                            drop(phases);
                            let status = if cancelled {
                                BatchStatus::Cancelled
                            } else {
                                BatchStatus::DeadlineExpired
                            };
                            let kind = if cancelled {
                                FlightKind::Cancelled
                            } else {
                                FlightKind::DeadlineExpired
                            };
                            let queued_us = queued_at.elapsed().as_micros() as u64;
                            flight.record(shared.shard_workers as u32, kind, id, queued_us);
                            let result = resolve_unrun(id, job, status, &shared, queued_at);
                            shared.note_completion(queued_at, priority, &result);
                            shared.note_observability(&result);
                            shared.store_result(result);
                            continue;
                        }
                        phases.insert(id, JobPhase::Running);
                        drop(phases);
                        shared.in_flight.fetch_add(1, Ordering::Relaxed);
                        let result = run_batch_job(id, job, &shared, flight, queued_at);
                        shared.note_completion(queued_at, priority, &result);
                        shared.note_observability(&result);
                        shared.store_result(result);
                        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // The background sampler: polls well under the sample interval and
        // lets the observatory's own interval gate decide when to tick.
        // Only spawned when the config asks for it — deterministic callers
        // (tests, the chaos harness) drive `BatchHandle::obsv_tick` instead.
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = shared
            .obsv
            .as_ref()
            .is_some_and(|o| o.wants_sampler_thread())
            .then(|| {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&sampler_stop);
                let interval = shared
                    .obsv
                    .as_ref()
                    .map_or(2_000_000, |o| o.config().raw_interval_us);
                let poll = Duration::from_micros((interval / 8).clamp(1_000, 250_000));
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        shared.obsv_maybe_tick();
                        std::thread::sleep(poll);
                    }
                })
            });
        BatchService {
            shared,
            next_id: AtomicU64::new(0),
            workers,
            sampler_stop,
            sampler,
        }
    }

    /// A read-only live view of the service (cheap to clone; see
    /// [`BatchHandle`]).
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Admission + phase registration preamble shared by both submit
    /// paths: sheds when the limiter's window is full, otherwise marks
    /// the id `Queued` *before* the queue push so a worker can never pop
    /// a job whose phase is unknown.
    fn admit(&self, id: u64, job: BatchJob) -> Result<QueuedJob, SubmitError> {
        if let Some(adm) = &self.shared.admission {
            if let Err(retry_after_us) = adm.try_admit() {
                self.shared
                    .metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_SHED);
                self.shared
                    .flight
                    .record(0, FlightKind::Shed, id, retry_after_us);
                return Err(SubmitError {
                    job,
                    cause: RejectCause::Shed { retry_after_us },
                });
            }
        }
        self.shared
            .phases
            .lock()
            .expect("batch phases lock")
            .insert(id, JobPhase::Queued { cancelled: false });
        Ok(QueuedJob::new(id, job))
    }

    /// Rolls back [`BatchService::admit`] when the queue turns out to be
    /// closed (or, for `try_submit`, full): the id leaves the phase table
    /// and the admission slot is freed.
    fn unadmit(&self, id: u64) {
        self.shared
            .phases
            .lock()
            .expect("batch phases lock")
            .remove(&id);
        if let Some(adm) = &self.shared.admission {
            adm.release();
        }
    }

    /// Submits a job, blocking while the queue is at capacity
    /// (backpressure). Returns the submission id its result will carry.
    ///
    /// # Errors
    ///
    /// [`RejectCause::Shed`] when the admission limiter's window is full
    /// (with a retry-after hint) and [`RejectCause::ShuttingDown`] when
    /// the queue is closed — in both cases [`SubmitError::job`] hands the
    /// job back. Submission ids are unique and increasing but may have
    /// gaps (a rejected submission consumes one).
    pub fn submit(&self, job: BatchJob) -> Result<u64, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let queued = self.admit(id, job)?;
        // Try the fast path first so a stall (queue at capacity) is
        // observable as a metric before we block.
        let queued = match self.shared.queue.try_push(queued) {
            Ok(()) => {
                self.note_submit(id);
                return Ok(id);
            }
            Err(PushError::Closed(q)) => {
                self.unadmit(id);
                return Err(SubmitError {
                    job: q.job,
                    cause: RejectCause::ShuttingDown,
                });
            }
            Err(PushError::Full(q)) => {
                self.shared
                    .metrics
                    .lock()
                    .expect("batch metrics lock")
                    .inc(METRIC_STALLS);
                self.shared
                    .flight
                    .record(0, FlightKind::BackpressureEngage, id, 0);
                q
            }
        };
        match self.shared.queue.push(queued) {
            Ok(()) => {
                self.shared
                    .flight
                    .record(0, FlightKind::BackpressureRelease, id, 0);
                self.note_submit(id);
                Ok(id)
            }
            Err(e) => {
                self.unadmit(id);
                Err(SubmitError {
                    job: e.into_inner().job,
                    cause: RejectCause::ShuttingDown,
                })
            }
        }
    }

    /// Submits without blocking; the caller sheds load on a full queue.
    ///
    /// # Errors
    ///
    /// [`RejectCause::QueueFull`] when the queue is at capacity,
    /// [`RejectCause::Shed`] when the admission limiter trips, and
    /// [`RejectCause::ShuttingDown`] when the queue is closed — the job
    /// rides back on every one.
    ///
    /// Submission ids are unique and increasing but may have gaps (a
    /// rejected submission consumes one).
    pub fn try_submit(&self, job: BatchJob) -> Result<u64, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let queued = self.admit(id, job)?;
        match self.shared.queue.try_push(queued) {
            Ok(()) => {
                self.note_submit(id);
                Ok(id)
            }
            Err(e) => {
                self.unadmit(id);
                let cause = match &e {
                    PushError::Full(_) => RejectCause::QueueFull,
                    PushError::Closed(_) => RejectCause::ShuttingDown,
                };
                Err(SubmitError {
                    job: e.into_inner().job,
                    cause,
                })
            }
        }
    }

    fn note_submit(&self, id: u64) {
        self.shared.flight.record(0, FlightKind::Submit, id, 0);
        self.shared
            .metrics
            .lock()
            .expect("batch metrics lock")
            .inc(METRIC_SUBMITTED);
    }

    /// Jobs queued but not yet picked up.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes the queue, drains the remaining jobs (expired and cancelled
    /// ones resolve without running), joins the workers, and returns
    /// every result sorted by submission id.
    pub fn shutdown(self) -> Vec<BatchResult> {
        self.shared.queue.close();
        for handle in self.workers {
            handle.join().expect("batch workers do not panic");
        }
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler {
            sampler.join().expect("observatory sampler does not panic");
        }
        let mut results =
            std::mem::take(&mut *self.shared.results.lock().expect("batch results lock"));
        results.sort_by_key(|r| r.id);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccra_ir::FunctionBuilder;

    fn job(name: &str, stmts: usize) -> BatchJob {
        let mut b = FunctionBuilder::new(name);
        let x = b.new_vreg(RegClass::Int);
        b.iconst(x, 1);
        for _ in 0..stmts {
            let y = b.new_vreg(RegClass::Int);
            b.iconst(y, 2);
        }
        b.ret(Some(x));
        let mut program = Program::new();
        let id = program.add_function(b.finish());
        program.set_main(id);
        BatchJob::new(
            name,
            program,
            RegisterFile::mips_full(),
            AllocatorConfig::improved(),
        )
    }

    /// Satellite pin: precomputing the whole [`OrderKey`] at submit must
    /// not change scheduling — popping by the stored key yields exactly
    /// the order of recomputing the key from the job on every comparison
    /// (the pre-change behavior).
    #[test]
    fn precomputed_order_key_preserves_pop_order() {
        let make_jobs = || {
            let mut jobs = Vec::new();
            for (i, (priority, deadline, stmts)) in [
                (Priority::Batch, None, 40),
                (Priority::Interactive, Some(Duration::from_secs(5)), 10),
                (Priority::Background, None, 5),
                (Priority::Batch, Some(Duration::from_secs(1)), 80),
                (Priority::Batch, None, 3),
                (Priority::Interactive, None, 90),
                (Priority::Batch, Some(Duration::from_secs(9)), 3),
                (Priority::Background, Some(Duration::from_secs(2)), 60),
            ]
            .into_iter()
            .enumerate()
            {
                let mut j = job(&format!("job-{i}"), stmts).with_priority(priority);
                j.deadline = deadline;
                jobs.push(QueuedJob::new(i as u64, j));
            }
            jobs
        };

        // Two queues over the same submissions: one popped by the stored
        // key, one by a key recomputed from the job every time.
        let stored = BoundedQueue::new(16);
        let recomputed = BoundedQueue::new(16);
        for q in make_jobs() {
            // Rebuild the second copy with identical timestamps so the
            // deadline terms agree exactly.
            recomputed
                .try_push(QueuedJob {
                    id: q.id,
                    queued_at: q.queued_at,
                    deadline_at: q.deadline_at,
                    order_key: q.order_key,
                    job: q.job.clone(),
                })
                .ok()
                .expect("fits");
            stored.try_push(q).ok().expect("fits");
        }
        let fresh_key = |q: &QueuedJob| {
            (
                q.job.priority.rank(),
                match q.deadline_at {
                    Some(at) => (0, at),
                    None => (1, q.queued_at),
                },
                q.job.estimated_cost(),
                q.id,
            )
        };
        let mut stored_order = Vec::new();
        let mut recomputed_order = Vec::new();
        stored.close();
        recomputed.close();
        while let Some(q) = stored.pop_min_by_key(QueuedJob::order_key) {
            stored_order.push(q.id);
        }
        while let Some(q) = recomputed.pop_min_by_key(fresh_key) {
            recomputed_order.push(q.id);
        }
        assert_eq!(stored_order.len(), 8);
        assert_eq!(stored_order, recomputed_order);
        // And the stored key really is the recomputed key, term for term.
        for q in make_jobs() {
            assert_eq!(q.order_key(), fresh_key(&q));
        }
    }
}
