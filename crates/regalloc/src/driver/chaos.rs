//! Deterministic fault injection for the batch service: seed-driven
//! per-job panics, allocator errors, and latency spikes.
//!
//! Robustness claims need hostile inputs, and hostile inputs need to be
//! **reproducible**: a chaos run that cannot be replayed is a flake
//! generator, not a test. Every fault here derives from a pure hash of
//! `(seed, submission id)` — no RNG state threads through the service, so
//! the same seed afflicts the same submissions regardless of worker
//! count, interleaving, or how many times the run is repeated. That is
//! also what keeps the determinism quarantine intact: a chaos-afflicted
//! job degrades to the same spill-everything allocation the serial
//! pipeline produces for it, byte for byte.
//!
//! Three fault shapes, each exercising a different recovery path:
//!
//! * [`Fault::Panic`] — the job's functions panic mid-allocation; the
//!   pool's `catch_unwind` isolation turns each into the degraded
//!   fallback ([`crate::driver::DriverReport`] reports `panicked`).
//! * [`Fault::Error`] — the job's functions fail with
//!   [`crate::AllocError::FaultInjected`]; the driver degrades them in
//!   place, exactly like a genuine allocator error.
//! * [`Fault::Spike`] — the job's service time is inflated by a fixed
//!   sleep before allocation, which is how queue-wait tails, deadline
//!   expiries, and per-job timeouts get exercised under load.
//!
//! Burst arrivals — the fourth perturbation the chaos harness drives —
//! are an *arrival-process* fault and live with the load generator's
//! traffic model, not here: the service cannot inject its own arrivals.

use crate::driver::parallel::{AllocJob, JobCtx};
use crate::error::AllocError;
use crate::metrics::MetricsRegistry;
use crate::pipeline::FuncAllocation;
use crate::trace::AllocSink;
use ccra_ir::Function;

/// Fault-injection knobs. The default is inert (no faults); rates are
/// per-mille so integer configs stay exact and seed-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// The seed every fault decision derives from.
    pub seed: u64,
    /// Per-mille of submissions whose functions panic.
    pub panic_per_mille: u32,
    /// Per-mille of submissions whose functions fail with
    /// [`AllocError::FaultInjected`].
    pub error_per_mille: u32,
    /// Per-mille of submissions whose service time is inflated by
    /// [`ChaosConfig::spike_us`].
    pub spike_per_mille: u32,
    /// The latency-spike duration, microseconds.
    pub spike_us: u64,
}

/// What chaos does to one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Left alone.
    None,
    /// Every function of the job panics.
    Panic,
    /// Every function of the job fails with
    /// [`AllocError::FaultInjected`].
    Error,
    /// The job sleeps [`ChaosConfig::spike_us`] before allocating.
    Spike,
}

impl Fault {
    /// A short label for logs and dumps.
    pub fn label(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::Panic => "panic",
            Fault::Error => "error",
            Fault::Spike => "spike",
        }
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed pure hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaosConfig {
    /// Whether every fault rate is zero.
    pub fn is_inert(&self) -> bool {
        self.panic_per_mille == 0 && self.error_per_mille == 0 && self.spike_per_mille == 0
    }

    /// The fault afflicting submission `id` — a pure function of
    /// `(seed, id)`, so the same run replays identically at any worker
    /// count.
    pub fn fault_for(&self, id: u64) -> Fault {
        if self.is_inert() {
            return Fault::None;
        }
        let roll = (mix(self.seed ^ mix(id)) % 1000) as u32;
        if roll < self.panic_per_mille {
            Fault::Panic
        } else if roll < self.panic_per_mille + self.error_per_mille {
            Fault::Error
        } else if roll < self.panic_per_mille + self.error_per_mille + self.spike_per_mille {
            Fault::Spike
        } else {
            Fault::None
        }
    }
}

/// An [`AllocJob`] wrapper that applies a submission's [`Fault`] to every
/// function the driver hands it. [`Fault::Spike`] is a service-level
/// (once-per-job) fault and is a no-op here — the batch worker sleeps
/// before invoking the driver instead.
pub struct ChaosJob<'a> {
    inner: &'a dyn AllocJob,
    fault: Fault,
    id: u64,
}

impl<'a> ChaosJob<'a> {
    /// Wraps `inner`, afflicting every function with `fault`.
    pub fn new(inner: &'a dyn AllocJob, fault: Fault, id: u64) -> Self {
        ChaosJob { inner, fault, id }
    }
}

impl AllocJob for ChaosJob<'_> {
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(Function, FuncAllocation), AllocError> {
        match self.fault {
            Fault::Panic => panic!("chaos: injected panic (submission {})", self.id),
            Fault::Error => Err(AllocError::FaultInjected {
                func: ctx.func.name().to_string(),
            }),
            Fault::None | Fault::Spike => self.inner.run(ctx, sink, metrics),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stormy() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            panic_per_mille: 100,
            error_per_mille: 150,
            spike_per_mille: 200,
            spike_us: 500,
        }
    }

    #[test]
    fn faults_are_a_pure_function_of_seed_and_id() {
        let cfg = stormy();
        let first: Vec<Fault> = (0..512).map(|id| cfg.fault_for(id)).collect();
        let second: Vec<Fault> = (0..512).map(|id| cfg.fault_for(id)).collect();
        assert_eq!(first, second, "replay is exact");
        let other = ChaosConfig {
            seed: 8,
            ..stormy()
        };
        let reseeded: Vec<Fault> = (0..512).map(|id| other.fault_for(id)).collect();
        assert_ne!(first, reseeded, "a different seed afflicts differently");
    }

    #[test]
    fn rates_are_roughly_honored_over_many_ids() {
        let cfg = stormy();
        let n = 4000;
        let count = |want: Fault| (0..n).filter(|&id| cfg.fault_for(id) == want).count();
        let panics = count(Fault::Panic);
        let errors = count(Fault::Error);
        let spikes = count(Fault::Spike);
        let none = count(Fault::None);
        assert_eq!(panics + errors + spikes + none, n as usize);
        // 10% / 15% / 20% nominal; accept a generous band.
        assert!((200..=600).contains(&panics), "panics: {panics}");
        assert!((350..=850).contains(&errors), "errors: {errors}");
        assert!((500..=1100).contains(&spikes), "spikes: {spikes}");
    }

    #[test]
    fn inert_config_afflicts_nothing() {
        let cfg = ChaosConfig::default();
        assert!(cfg.is_inert());
        assert!((0..256).all(|id| cfg.fault_for(id) == Fault::None));
        assert_eq!(Fault::Panic.label(), "panic");
        assert_eq!(Fault::None.label(), "none");
    }
}
