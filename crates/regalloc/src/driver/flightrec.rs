//! The always-on flight recorder: a fixed-size ring of recent compact
//! scheduling events per lane, dumped as JSON when something goes wrong.
//!
//! Timelines ([`crate::driver::timeline`]) answer "show me everything
//! about the run I chose to trace"; the flight recorder answers the
//! opposite question — "what just happened?" — for runs nobody chose to
//! trace, which is where degradations and panics actually occur. It is
//! designed to stay enabled in production:
//!
//! * **Fixed memory.** Each lane owns a ring of [`FlightRecorder::capacity`]
//!   [`FlightEvent`]s (a few KiB); old events are overwritten, never
//!   reallocated. The count of overwritten events is kept, so a dump says
//!   how much history it lost.
//! * **Compact events.** A [`FlightEvent`] is a few machine words — a
//!   timestamp, a lane, a [`FlightKind`], and two `u64` payloads whose
//!   meaning depends on the kind (job index, victim worker, degraded
//!   function count). No strings, no allocation on the record path.
//! * **Single writer per lane.** Exactly one thread records into each
//!   lane, the same discipline as timeline [`crate::driver::timeline::Lane`]s.
//!   The rings still sit behind per-lane `Mutex`es — the crate forbids
//!   `unsafe`, so a true lock-free ring (seqlock or atomic indices over
//!   uninitialized memory) is out of reach — but a mutex that is never
//!   contended is an uncontended compare-and-swap pair, not a lock in any
//!   observable sense. The CI workers=1 overhead gate runs with the
//!   recorder **enabled** to hold the steady-state-cost claim to measure.
//! * **Zero cost when disabled.** [`FlightRecorder::record`] gates on the
//!   enabled flag before reading the clock, exactly like a disabled
//!   [`crate::metrics::MetricsRegistry`].
//!
//! Lanes are position-addressed: a [`BatchService`] gives lane 0 to the
//! submission path and a contiguous block per service worker (its shard
//! workers, then its driver/service lane); [`FlightView`] carries the
//! block's base offset so pool code can record at `base + worker_index`
//! without knowing who else shares the recorder.
//!
//! A dump ([`FlightRecorder::dump`]) merges every lane's retained events,
//! sorts them by timestamp, and renders deterministic JSON — the artifact
//! the batch service attaches to degraded results and serves at
//! `/debug/flightrec`.
//!
//! [`BatchService`]: crate::driver::BatchService

use std::sync::Mutex;
use std::time::Instant;

use serde::json::Value;

/// Default per-lane ring capacity (events retained per lane).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What a flight-recorder event marks. Payload meanings (`a`, `b`) are
/// listed per variant; unused payloads are 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A job entered the submission queue (`a` = submission id).
    Submit,
    /// A job started running (`a` = job index or submission id).
    JobStart,
    /// A job completed strictly (`a` = job index or submission id).
    JobOk,
    /// A job fell back to the degraded allocation (`a` = job index or
    /// submission id, `b` = degraded function count when known).
    JobDegraded,
    /// A job produced no allocation at all (`a` = submission id).
    JobFailed,
    /// A job panicked and was caught (`a` = job index).
    JobPanicked,
    /// A worker stole a job (`a` = job index, `b` = victim worker).
    Steal,
    /// A steal sweep found every deque empty (`a` = worker).
    StealMiss,
    /// A blocking submit found the queue full and stalled
    /// (`a` = submission id).
    BackpressureEngage,
    /// A stalled submit finally enqueued (`a` = submission id).
    BackpressureRelease,
    /// The admission limiter shed a submission (`a` = submission id,
    /// `b` = retry-after hint, microseconds).
    Shed,
    /// A job's deadline passed while it was queued; it was resolved
    /// without running (`a` = submission id, `b` = microseconds queued).
    DeadlineExpired,
    /// A queued job was cancelled before a worker ran it
    /// (`a` = submission id).
    Cancelled,
    /// A job's service-time watchdog fired; remaining functions took the
    /// degraded fallback (`a` = submission id, `b` = degraded function
    /// count).
    Timeout,
    /// A function's allocation was replayed from the memo cache
    /// (`a` = function id).
    CacheHit,
    /// A function missed the memo cache and was scheduled for allocation
    /// (`a` = function id).
    CacheMiss,
    /// Inserting a fresh allocation evicted resident entries
    /// (`a` = function id, `b` = entries evicted).
    CacheEvict,
    /// An observatory alert rule transitioned to firing
    /// (`a` = rule index in the configured rule list, `b` = the rule's
    /// observed value at fire time, rounded to an integer).
    AlertFire,
    /// A firing observatory alert rule resolved (`a` = rule index,
    /// `b` = the rule's observed value at clear time, rounded to an
    /// integer).
    AlertClear,
}

impl FlightKind {
    /// The label used in serialized dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Submit => "submit",
            FlightKind::JobStart => "job_start",
            FlightKind::JobOk => "job_ok",
            FlightKind::JobDegraded => "job_degraded",
            FlightKind::JobFailed => "job_failed",
            FlightKind::JobPanicked => "job_panicked",
            FlightKind::Steal => "steal",
            FlightKind::StealMiss => "steal_miss",
            FlightKind::BackpressureEngage => "backpressure_engage",
            FlightKind::BackpressureRelease => "backpressure_release",
            FlightKind::Shed => "shed",
            FlightKind::DeadlineExpired => "deadline_expired",
            FlightKind::Cancelled => "cancelled",
            FlightKind::Timeout => "timeout",
            FlightKind::CacheHit => "cache_hit",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::CacheEvict => "cache_evict",
            FlightKind::AlertFire => "alert_fire",
            FlightKind::AlertClear => "alert_clear",
        }
    }
}

/// One compact flight-recorder event: a timestamp (microseconds since the
/// recorder's epoch), the lane that recorded it, a kind, and two payload
/// words whose meaning the [`FlightKind`] documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder's creation.
    pub ts_us: u64,
    /// The lane that recorded the event.
    pub lane: u32,
    /// What happened.
    pub kind: FlightKind,
    /// First payload word (usually a job index or submission id).
    pub a: u64,
    /// Second payload word (kind-specific; 0 when unused).
    pub b: u64,
}

/// One lane's ring: a fixed-capacity buffer overwritten oldest-first.
#[derive(Debug)]
struct Ring {
    events: Vec<FlightEvent>,
    next: usize,
    total: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: Vec::new(),
            next: 0,
            total: 0,
        }
    }

    fn push(&mut self, capacity: usize, event: FlightEvent) {
        if self.events.len() < capacity {
            self.events.push(event);
        } else {
            self.events[self.next] = event;
        }
        self.next = (self.next + 1) % capacity.max(1);
        self.total += 1;
    }

    /// Retained events, oldest first.
    fn ordered(&self) -> Vec<FlightEvent> {
        if self.total as usize <= self.events.len() {
            // Never wrapped: insertion order is age order.
            self.events.clone()
        } else {
            let mut out = Vec::with_capacity(self.events.len());
            out.extend_from_slice(&self.events[self.next..]);
            out.extend_from_slice(&self.events[..self.next]);
            out
        }
    }
}

/// The flight recorder (see the module docs): per-lane rings of recent
/// compact events on one shared clock.
#[derive(Debug)]
pub struct FlightRecorder {
    on: bool,
    epoch: Instant,
    capacity: usize,
    lanes: Vec<Mutex<Ring>>,
}

impl FlightRecorder {
    /// A recorder with `lanes` lanes at the default per-lane capacity
    /// ([`DEFAULT_FLIGHT_CAPACITY`]).
    pub fn new(lanes: usize) -> Self {
        FlightRecorder::with_capacity(lanes, DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder with `lanes` lanes retaining up to `capacity` events
    /// each (both clamped to ≥ 1).
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        FlightRecorder {
            on: true,
            epoch: Instant::now(),
            capacity: capacity.max(1),
            lanes: (0..lanes.max(1)).map(|_| Mutex::new(Ring::new())).collect(),
        }
    }

    /// A recorder that drops everything at the cost of one branch per
    /// site — the flight analog of [`crate::NoopSink`].
    pub fn disabled() -> Self {
        FlightRecorder {
            on: false,
            epoch: Instant::now(),
            capacity: 1,
            lanes: vec![Mutex::new(Ring::new())],
        }
    }

    /// Whether this recorder records.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The per-lane ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many lanes the recorder has.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records one event on `lane` (clamped into range). Reads the clock
    /// only when enabled.
    pub fn record(&self, lane: u32, kind: FlightKind, a: u64, b: u64) {
        if !self.on {
            return;
        }
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let index = (lane as usize).min(self.lanes.len() - 1);
        self.lanes[index]
            .lock()
            .expect("flight recorder lane lock")
            .push(
                self.capacity,
                FlightEvent {
                    ts_us,
                    lane,
                    kind,
                    a,
                    b,
                },
            );
    }

    /// A recording view whose lane 0 is this recorder's lane `base` — how
    /// a batch service hands each worker its own contiguous lane block.
    pub fn view(&self, base: u32) -> FlightView<'_> {
        FlightView { rec: self, base }
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_events(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("flight recorder lane lock").total)
            .sum()
    }

    /// Dumps the retained history as a deterministic JSON value:
    ///
    /// ```json
    /// {"capacity": 256, "lanes": 4, "recorded": 9, "dropped": 0,
    ///  "events": [{"ts_us": 12, "lane": 0, "kind": "job_start",
    ///              "a": 3, "b": 0}, ...]}
    /// ```
    ///
    /// Events are merged across lanes and sorted by `(ts_us, lane)`;
    /// `dropped` counts events the rings overwrote.
    pub fn dump(&self) -> Value {
        let mut events: Vec<FlightEvent> = Vec::new();
        let mut recorded = 0u64;
        for lane in &self.lanes {
            let ring = lane.lock().expect("flight recorder lane lock");
            recorded += ring.total;
            events.extend(ring.ordered());
        }
        events.sort_by_key(|e| (e.ts_us, e.lane));
        let dropped = recorded - events.len() as u64;
        let events = events
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("ts_us".to_string(), Value::Int(e.ts_us as i64)),
                    ("lane".to_string(), Value::Int(e.lane as i64)),
                    ("kind".to_string(), Value::Str(e.kind.name().to_string())),
                    ("a".to_string(), Value::Int(e.a as i64)),
                    ("b".to_string(), Value::Int(e.b as i64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("capacity".to_string(), Value::Int(self.capacity as i64)),
            ("lanes".to_string(), Value::Int(self.lanes.len() as i64)),
            ("recorded".to_string(), Value::Int(recorded as i64)),
            ("dropped".to_string(), Value::Int(dropped as i64)),
            ("events".to_string(), Value::Arr(events)),
        ])
    }

    /// [`FlightRecorder::dump`] rendered to a JSON string.
    pub fn dump_json(&self) -> String {
        self.dump().to_json()
    }
}

/// A borrowed recording window into a [`FlightRecorder`], offset by a lane
/// base. `Copy`, so pool code can pass it around freely; recording at view
/// lane `w` lands on recorder lane `base + w`.
#[derive(Debug, Clone, Copy)]
pub struct FlightView<'a> {
    rec: &'a FlightRecorder,
    base: u32,
}

impl FlightView<'_> {
    /// Whether the underlying recorder records.
    pub fn enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Records on recorder lane `base + lane`.
    pub fn record(&self, lane: u32, kind: FlightKind, a: u64, b: u64) {
        self.rec.record(self.base + lane, kind, a, b);
    }

    /// A sub-view whose lane 0 is this view's lane `offset`.
    pub fn offset(&self, offset: u32) -> FlightView<'_> {
        FlightView {
            rec: self.rec,
            base: self.base + offset,
        }
    }

    /// The whole recorder's dump ([`FlightRecorder::dump_json`]) — a view
    /// can trigger a dump but cannot narrow it: the point of a flight
    /// record is the surrounding context, not just the failing lane.
    pub fn dump_json(&self) -> String {
        self.rec.dump_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(0, FlightKind::JobStart, 1, 0);
        rec.record(9, FlightKind::Steal, 2, 3);
        assert_eq!(rec.total_events(), 0);
        let dump = rec.dump();
        assert_eq!(dump.get("recorded").and_then(Value::as_i64), Some(0));
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        assert!(events.is_empty());
    }

    #[test]
    fn rings_wrap_and_report_drops() {
        let rec = FlightRecorder::with_capacity(1, 4);
        for i in 0..10u64 {
            rec.record(0, FlightKind::JobOk, i, 0);
        }
        assert_eq!(rec.total_events(), 10);
        let dump = rec.dump();
        assert_eq!(dump.get("recorded").and_then(Value::as_i64), Some(10));
        assert_eq!(dump.get("dropped").and_then(Value::as_i64), Some(6));
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        // The four newest survive, oldest first.
        let ids: Vec<i64> = events
            .iter()
            .map(|e| e.get("a").and_then(Value::as_i64).expect("payload a"))
            .collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn lanes_are_independent_and_merge_sorted() {
        let rec = FlightRecorder::with_capacity(3, 8);
        rec.record(2, FlightKind::Steal, 5, 1);
        rec.record(0, FlightKind::JobStart, 7, 0);
        rec.record(1, FlightKind::JobDegraded, 7, 2);
        let dump = rec.dump();
        assert_eq!(dump.get("lanes").and_then(Value::as_i64), Some(3));
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        assert_eq!(events.len(), 3);
        // Sorted by timestamp (same-lane ordering is recording order; we
        // only assert the timestamps are non-decreasing).
        let ts: Vec<i64> = events
            .iter()
            .map(|e| e.get("ts_us").and_then(Value::as_i64).expect("ts"))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| e.get("kind").and_then(Value::as_str).expect("kind"))
            .collect();
        assert!(kinds.contains(&"steal"));
        assert!(kinds.contains(&"job_degraded"));
    }

    #[test]
    fn out_of_range_lanes_clamp_instead_of_panicking() {
        let rec = FlightRecorder::with_capacity(2, 4);
        rec.record(99, FlightKind::JobPanicked, 1, 0);
        assert_eq!(rec.total_events(), 1);
        // The event's declared lane survives even though it was stored in
        // the last ring.
        let dump = rec.dump();
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        assert_eq!(events[0].get("lane").and_then(Value::as_i64), Some(99));
    }

    #[test]
    fn views_offset_lanes() {
        let rec = FlightRecorder::with_capacity(6, 8);
        let view = rec.view(2);
        assert!(view.enabled());
        view.record(0, FlightKind::JobStart, 1, 0);
        view.offset(3).record(0, FlightKind::JobOk, 1, 0);
        let dump = rec.dump();
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        let lanes: Vec<i64> = events
            .iter()
            .map(|e| e.get("lane").and_then(Value::as_i64).expect("lane"))
            .collect();
        assert_eq!(lanes, vec![2, 5]);
    }

    #[test]
    fn dump_json_round_trips() {
        let rec = FlightRecorder::new(2);
        rec.record(0, FlightKind::Submit, 0, 0);
        rec.record(1, FlightKind::BackpressureEngage, 0, 0);
        rec.record(1, FlightKind::BackpressureRelease, 0, 0);
        let parsed = serde::json::parse(&rec.dump_json()).expect("dump is valid JSON");
        assert_eq!(parsed.get("recorded").and_then(Value::as_i64), Some(3));
        assert_eq!(
            parsed.get("capacity").and_then(Value::as_i64),
            Some(DEFAULT_FLIGHT_CAPACITY as i64)
        );
    }

    #[test]
    fn default_capacity_lane_keeps_exactly_the_newest_256() {
        // Overflow the default 256-event ring by a non-multiple of its
        // capacity so the wrap point lands mid-ring.
        let rec = FlightRecorder::new(1);
        let total = DEFAULT_FLIGHT_CAPACITY as u64 * 2 + 37;
        for i in 0..total {
            rec.record(0, FlightKind::JobOk, i, 0);
        }
        assert_eq!(rec.total_events(), total);
        let dump = rec.dump();
        assert_eq!(
            dump.get("recorded").and_then(Value::as_i64),
            Some(total as i64)
        );
        assert_eq!(
            dump.get("dropped").and_then(Value::as_i64),
            Some((total - DEFAULT_FLIGHT_CAPACITY as u64) as i64)
        );
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        assert_eq!(events.len(), DEFAULT_FLIGHT_CAPACITY);
        // Exactly the newest 256 survive, oldest first and contiguous.
        let ids: Vec<u64> = events
            .iter()
            .map(|e| e.get("a").and_then(Value::as_i64).expect("payload a") as u64)
            .collect();
        let expected: Vec<u64> = (total - DEFAULT_FLIGHT_CAPACITY as u64..total).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn concurrent_single_writer_lanes_stay_ordered_and_lose_only_the_oldest() {
        // The single-writer-per-lane invariant: each thread owns one lane
        // and records a strictly increasing sequence. Whatever the
        // cross-lane interleaving, every lane's retained events must be a
        // contiguous, in-order suffix of what its owner wrote — a torn or
        // reordered ring would break all of flight-dump forensics.
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 700; // > 2 × capacity: every lane wraps.
        let rec = std::sync::Arc::new(FlightRecorder::new(WRITERS));
        let mut handles = Vec::new();
        for lane in 0..WRITERS as u32 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record(lane, FlightKind::JobOk, i, u64::from(lane));
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(rec.total_events(), WRITERS as u64 * PER_WRITER);
        let dump = rec.dump();
        let Some(Value::Arr(events)) = dump.get("events") else {
            panic!("dump has an events array");
        };
        for lane in 0..WRITERS as i64 {
            let ids: Vec<u64> = events
                .iter()
                .filter(|e| e.get("lane").and_then(Value::as_i64) == Some(lane))
                .map(|e| e.get("a").and_then(Value::as_i64).expect("payload a") as u64)
                .collect();
            assert_eq!(ids.len(), DEFAULT_FLIGHT_CAPACITY, "lane {lane}");
            let expected: Vec<u64> =
                (PER_WRITER - DEFAULT_FLIGHT_CAPACITY as u64..PER_WRITER).collect();
            assert_eq!(ids, expected, "lane {lane}: newest suffix, in order");
        }
    }
}
