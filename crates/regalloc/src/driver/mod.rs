//! The concurrency subsystem: parallel per-function allocation and the
//! batch service front-end.
//!
//! Register allocation is embarrassingly parallel at function granularity —
//! each function's webs, interference graph, and SC/BS/PR decisions are
//! self-contained; only the frequency weights are whole-program, and those
//! are read-only by allocation time. This module family exploits that on
//! `std` alone (the offline environment vendors no concurrency crates):
//!
//! * [`pool`] — a scoped thread pool with per-worker deques and work
//!   stealing, absorbing the wild per-function cost variance;
//! * [`ParallelDriver`] — shards a [`ccra_ir::Program`] into per-function
//!   jobs and merges results **deterministically**: byte-identical output
//!   at any worker count, equal to the serial pipeline, with telemetry
//!   fanned in function order and per-job failures (errors *and* panics)
//!   degraded in place instead of killing the batch;
//! * [`BatchService`] — submit many programs against a bounded queue with
//!   backpressure, collect per-job statuses; jobs carry a priority and an
//!   optional deadline (EDF within priority class), can be cancelled while
//!   queued, and are bounded by an optional service-time watchdog;
//! * [`admission`] — the latency-aware AIMD admission limiter in front of
//!   the queue: when observed end-to-end latency blows the SLO, `submit`
//!   sheds with a typed rejection and retry-after hint instead of
//!   blocking;
//! * [`chaos`] — deterministic seed-driven fault injection (per-job
//!   panics, allocator errors, latency spikes) for overload testing;
//! * [`queue`] — the bounded MPMC queue underneath the service;
//! * [`timeline`] — per-worker span/instant/counter collection for the
//!   pool and driver (exported as a Chrome trace by
//!   [`crate::trace::chrometrace`]);
//! * [`flightrec`] — the always-on flight recorder: fixed-size per-lane
//!   rings of recent compact scheduling events, dumped as JSON when a job
//!   degrades or panics;
//! * [`status`] — a std-only HTTP endpoint serving a live
//!   [`BatchHandle`] view (`/metrics`, `/healthz`, `/status`, per-request
//!   `/trace/<id>`, `/debug/flightrec`).
//!
//! The `ccra-eval` `par` binary sweeps worker counts over the perf
//! workloads with the driver and records the speedup into the
//! `BENCH_8.json` snapshot; the `timeline` binary captures one traced
//! batch as a Perfetto-loadable timeline; the `loadgen` binary drives the
//! batch service open-loop (`--chaos` adds a seeded overload storm) and
//! records the latency and admission sections of the same snapshot.

pub mod admission;
pub mod batch;
pub mod chaos;
pub mod flightrec;
mod parallel;
pub mod pool;
pub mod queue;
pub mod status;
pub mod timeline;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionSnapshot};
pub use batch::{
    per_priority_latency, BatchConfig, BatchHandle, BatchJob, BatchResult, BatchService,
    BatchStatus, CancelOutcome, DegradeCause, Priority, RejectCause, RequestTrace, SubmitError,
    STATUS_SCHEMA_VERSION,
};
pub use chaos::{ChaosConfig, ChaosJob, Fault};
pub use flightrec::{FlightEvent, FlightKind, FlightRecorder, FlightView};
pub use parallel::{
    AllocJob, AllocRequest, DefaultJob, DriverReport, DriverSummary, JobCtx, JobStatus,
    ParallelDriver, TimeoutJob,
};
pub use pool::{run_jobs, run_jobs_observed, JobOutcome, PoolStats, WorkerScratch};
pub use queue::{BoundedQueue, PushError, QueueStats};
pub use status::StatusServer;
pub use timeline::{Timeline, TimelineCollector, TimelineEvent, TimelineSummary};
