//! The concurrency subsystem: parallel per-function allocation and the
//! batch service front-end.
//!
//! Register allocation is embarrassingly parallel at function granularity —
//! each function's webs, interference graph, and SC/BS/PR decisions are
//! self-contained; only the frequency weights are whole-program, and those
//! are read-only by allocation time. This module family exploits that on
//! `std` alone (the offline environment vendors no concurrency crates):
//!
//! * [`pool`] — a scoped thread pool with per-worker deques and work
//!   stealing, absorbing the wild per-function cost variance;
//! * [`ParallelDriver`] — shards a [`ccra_ir::Program`] into per-function
//!   jobs and merges results **deterministically**: byte-identical output
//!   at any worker count, equal to the serial pipeline, with telemetry
//!   fanned in function order and per-job failures (errors *and* panics)
//!   degraded in place instead of killing the batch;
//! * [`BatchService`] — submit many programs against a bounded queue with
//!   backpressure, collect per-job statuses;
//! * [`queue`] — the bounded MPMC queue underneath the service;
//! * [`timeline`] — per-worker span/instant/counter collection for the
//!   pool and driver (exported as a Chrome trace by
//!   [`crate::trace::chrometrace`]);
//! * [`flightrec`] — the always-on flight recorder: fixed-size per-lane
//!   rings of recent compact scheduling events, dumped as JSON when a job
//!   degrades or panics;
//! * [`status`] — a std-only HTTP endpoint serving a live
//!   [`BatchHandle`] view (`/metrics`, `/healthz`, `/status`, per-request
//!   `/trace/<id>`, `/debug/flightrec`).
//!
//! The `ccra-eval` `par` binary sweeps worker counts over the perf
//! workloads with the driver and records the speedup into the
//! `BENCH_4.json` snapshot; the `timeline` binary captures one traced
//! batch as a Perfetto-loadable timeline; the `loadgen` binary drives the
//! batch service open-loop and records the latency section of the same
//! snapshot.

pub mod batch;
pub mod flightrec;
mod parallel;
pub mod pool;
pub mod queue;
pub mod status;
pub mod timeline;

pub use batch::{
    BatchConfig, BatchHandle, BatchJob, BatchResult, BatchService, BatchStatus, RequestTrace,
};
pub use flightrec::{FlightEvent, FlightKind, FlightRecorder, FlightView};
pub use parallel::{
    AllocJob, AllocRequest, DefaultJob, DriverReport, DriverSummary, JobCtx, JobStatus,
    ParallelDriver,
};
pub use pool::{run_jobs, run_jobs_observed, JobOutcome, PoolStats, WorkerScratch};
pub use queue::{BoundedQueue, PushError, QueueStats};
pub use status::StatusServer;
pub use timeline::{Timeline, TimelineCollector, TimelineEvent, TimelineSummary};
