//! The parallel allocation driver: shard a [`Program`] into per-function
//! jobs, allocate them on the work-stealing pool, and merge the results
//! deterministically.
//!
//! # Determinism
//!
//! Per-function allocation is a pure function of `(function, frequencies,
//! register file, config, cost model)` — exactly the property the serial
//! pipeline already has — so the driver recovers byte-identical output at
//! any worker count by confining nondeterminism to *scheduling* and
//! merging in **function-id order** (a documented invariant of
//! [`Program`]: ids are dense and in insertion order):
//!
//! * rewritten bodies and [`FuncAllocation`]s are placed by id, so the
//!   result equals [`crate::allocate_program_instrumented`]'s exactly;
//! * each job records telemetry into a private [`RecordingSink`] and a
//!   private [`MetricsRegistry`]; the driver fans events into the program
//!   sink and merges registries in id order, so the merged event stream
//!   (wall-clock normalized) and every merged counter equal the serial
//!   run's;
//! * scheduling facts (which worker ran what, steal counts, scheduler
//!   metrics, the timeline) never touch the allocation result or the
//!   program registry — they live in [`DriverReport`] and the returned
//!   [`Timeline`] only.
//!
//! # Observation
//!
//! [`ParallelDriver::allocate_program_traced`] runs the same batch with a
//! [`TimelineCollector`] tap: each worker records job/steal/idle spans on
//! a private lane (see [`crate::driver::timeline`]), each job's
//! [`PhaseSpan`] events are mirrored as nested phase spans on the worker's
//! lane, and the drained scheduler-metric shards merge into
//! [`DriverReport::scheduler`]. The untraced entry points delegate with a
//! disabled collector, so they pay one branch per event site.
//!
//! [`ParallelDriver::allocate_program_observed`] additionally threads a
//! [`FlightView`] through the pool: job start/end, steal, and degrade
//! events land in the always-on flight recorder, and a batch in which any
//! job degraded snapshots the recorder into [`DriverReport::flight_dump`]
//! as JSON. Like the timeline, flight data is scheduling quarantine — it
//! never touches allocation results.
//!
//! # Failure isolation
//!
//! A job whose strict allocation returns an [`AllocError`] falls back to
//! [`crate::degraded_allocation`] *inside the job*, exactly like the
//! serial driver. A job that **panics** is caught by the pool; the driver
//! then runs the degraded fallback for that function on the calling
//! thread. Either way the function is flagged ([`JobStatus::Degraded`],
//! plus the usual `degraded` telemetry event) and every sibling job
//! completes untouched. Only a failure of the fallback itself — a register
//! file below the ABI minimum — aborts the batch, mirroring the serial
//! contract.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use ccra_analysis::{FrequencyInfo, FuncFreq};
use ccra_ir::{Function, Program};
use ccra_machine::{CostModel, RegisterFile};

use crate::cache::{config_fingerprint, file_fingerprint, AllocCache, CacheKey};
use crate::driver::flightrec::{FlightKind, FlightRecorder, FlightView};
use crate::driver::pool::{run_jobs_observed, JobOutcome};
use crate::driver::timeline::{Lane, SpanKind, Timeline, TimelineCollector};
use crate::error::AllocError;
use crate::metrics::MetricsRegistry;
use crate::pipeline::{
    allocate_function_instrumented, degraded_allocation_instrumented, FuncAllocation,
    ProgramAllocation,
};
use crate::trace::{
    span_start, AllocEvent, AllocSink, DegradedInfo, NoopSink, PhaseSpan, ProgramSummary,
    RecordingSink,
};
use crate::types::{AllocatorConfig, Overhead};

/// Everything one per-function job needs, bundled so job implementations
/// stay readable (and clippy-clean).
pub struct JobCtx<'a> {
    /// The function to allocate.
    pub func: &'a Function,
    /// Its execution frequencies.
    pub freq: &'a FuncFreq,
    /// The register file.
    pub file: &'a RegisterFile,
    /// The allocator configuration.
    pub config: &'a AllocatorConfig,
    /// The cost model.
    pub cost: &'a CostModel,
}

/// The strict per-function allocation one driver job runs.
///
/// The default ([`DefaultJob`]) is [`crate::allocate_function_instrumented`];
/// tests and experiments plug alternatives in through
/// [`ParallelDriver::allocate_program_with_job`] — most usefully jobs that
/// *fail* on selected functions, which is how the fault-isolation tests
/// exercise the degraded path without a contrived register file.
///
/// An `Err` triggers the degraded fallback for that function; a panic is
/// caught by the pool and triggers the same fallback.
pub trait AllocJob: Sync {
    /// Allocates one function, emitting telemetry into job-local layers.
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(Function, FuncAllocation), AllocError>;
}

impl<F> AllocJob for F
where
    F: Fn(
            &JobCtx<'_>,
            &mut dyn AllocSink,
            &mut MetricsRegistry,
        ) -> Result<(Function, FuncAllocation), AllocError>
        + Sync,
{
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(Function, FuncAllocation), AllocError> {
        self(ctx, sink, metrics)
    }
}

/// The default job: the strict serial pipeline,
/// [`crate::allocate_function_instrumented`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultJob;

impl AllocJob for DefaultJob {
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(Function, FuncAllocation), AllocError> {
        allocate_function_instrumented(
            ctx.func, ctx.freq, ctx.file, ctx.config, ctx.cost, sink, metrics,
        )
    }
}

/// An [`AllocJob`] wrapper enforcing a service-time watchdog: once the
/// wall-clock deadline passes, every remaining function fails with
/// [`AllocError::DeadlineExceeded`] instead of running — which the driver
/// turns into the spill-everything degraded fallback, so an overrunning
/// job finishes *degraded, fast, and accounted for* rather than holding a
/// worker indefinitely.
///
/// The check is cooperative and per-function: functions already allocated
/// when the deadline fires keep their strict results (the degraded
/// fallback is per-function, not per-job). [`TimeoutJob::fired`] reports
/// whether the watchdog tripped, so the batch layer can label the result's
/// degradation cause `Timeout` without parsing reason strings.
pub struct TimeoutJob<'a> {
    inner: &'a dyn AllocJob,
    deadline: Instant,
    fired: AtomicBool,
}

impl<'a> TimeoutJob<'a> {
    /// Wraps `inner` with a wall-clock deadline.
    pub fn new(inner: &'a dyn AllocJob, deadline: Instant) -> Self {
        TimeoutJob {
            inner,
            deadline,
            fired: AtomicBool::new(false),
        }
    }

    /// Whether any function hit the deadline.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }
}

impl AllocJob for TimeoutJob<'_> {
    fn run(
        &self,
        ctx: &JobCtx<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(Function, FuncAllocation), AllocError> {
        if Instant::now() >= self.deadline {
            self.fired.store(true, Ordering::Relaxed);
            return Err(AllocError::DeadlineExceeded {
                func: ctx.func.name().to_string(),
            });
        }
        self.inner.run(ctx, sink, metrics)
    }
}

/// One whole-program allocation request — the inputs
/// [`crate::allocate_program_with`] takes, bundled.
pub struct AllocRequest<'a> {
    /// The program to allocate.
    pub program: &'a Program,
    /// Whole-program execution frequencies.
    pub freq: &'a FrequencyInfo,
    /// The register file.
    pub file: RegisterFile,
    /// The allocator configuration.
    pub config: &'a AllocatorConfig,
    /// The cost model.
    pub cost: &'a CostModel,
}

/// How one function's job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The strict allocator succeeded.
    Ok,
    /// The function fell back to the degraded spill-everything allocation.
    Degraded {
        /// The strict failure (an [`AllocError`] rendering, or
        /// `"worker panicked: …"`).
        reason: String,
    },
}

impl JobStatus {
    /// Whether this job degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, JobStatus::Degraded { .. })
    }

    /// Whether this job degraded because its worker panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, JobStatus::Degraded { reason } if reason.starts_with("worker panicked"))
    }
}

/// What the driver did, beyond the allocation itself: per-job statuses
/// (deterministic, in function-id order) and the scheduling facts
/// (nondeterministic — diagnostics only).
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Worker threads actually used.
    pub workers: usize,
    /// Jobs each worker executed.
    pub jobs_per_worker: Vec<u64>,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Per-function outcome, indexed by function id.
    pub statuses: Vec<JobStatus>,
    /// Scheduler metrics (the `driver_*` names of [`crate::driver::pool`]),
    /// merged across worker shards, plus the run's `cache_*` traffic
    /// counters when a memo cache was consulted. Empty unless the batch
    /// ran traced or cached. Scheduling-dependent, like everything else
    /// here except `statuses` and the cache counters (hits and misses are
    /// a pure function of cache state and program content) — keep it out
    /// of merged program metrics.
    pub scheduler: MetricsRegistry,
    /// A JSON flight-record dump, captured automatically when any job
    /// degraded (or panicked) and the batch ran with an enabled
    /// [`crate::driver::FlightRecorder`]. Scheduling-dependent quarantine,
    /// like the rest of the report.
    pub flight_dump: Option<String>,
}

impl DriverReport {
    /// How many functions degraded.
    pub fn degraded_funcs(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_degraded()).count()
    }

    /// The report folded into a [`DriverSummary`].
    ///
    /// `total_jobs`, `panics`, and `degraded` are deterministic (they
    /// derive from the per-function statuses, which are merged in id
    /// order) and safe to assert exactly in tests; `steals` is a
    /// scheduling fact and only safe to assert loosely.
    pub fn summary(&self) -> DriverSummary {
        DriverSummary {
            workers: self.workers,
            total_jobs: self.statuses.len() as u64,
            degraded: self.degraded_funcs(),
            panics: self.statuses.iter().filter(|s| s.is_panicked()).count(),
            steals: self.steals,
        }
    }
}

/// A [`DriverReport`] folded down to the numbers worth printing after a
/// batch (see [`DriverReport::summary`] for which are deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverSummary {
    /// Worker threads actually used.
    pub workers: usize,
    /// Functions allocated.
    pub total_jobs: u64,
    /// Functions that fell back to the degraded allocation (includes the
    /// panicked ones).
    pub degraded: usize,
    /// Functions whose job panicked (a subset of `degraded`).
    pub panics: usize,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
}

impl std::fmt::Display for DriverSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} job(s) on {} worker(s): {} degraded ({} panicked), {} steal(s)",
            self.total_jobs, self.workers, self.degraded, self.panics, self.steals
        )
    }
}

/// What one job sends back to the merge: its result (or the fallback's
/// own failure), its recorded event substream, and its metrics.
struct JobReturn {
    result: Result<(Function, FuncAllocation, JobStatus), AllocError>,
    events: Vec<AllocEvent>,
    metrics: MetricsRegistry,
}

/// An [`AllocSink`] shim that mirrors [`PhaseSpan`] events onto a timeline
/// lane as nested phase spans (back-dated: the event is emitted right as
/// the phase ends, so `start = now - micros`) while forwarding everything
/// to the job's recorder, if any.
struct PhaseTap<'a> {
    inner: Option<&'a mut RecordingSink>,
    lane: &'a mut Lane,
}

impl AllocSink for PhaseTap<'_> {
    fn enabled(&self) -> bool {
        self.inner.is_some() || self.lane.enabled()
    }

    fn emit(&mut self, event: AllocEvent) {
        if self.lane.enabled() {
            if let AllocEvent::Phase(PhaseSpan {
                phase,
                round,
                micros,
                ..
            }) = &event
            {
                let (phase, round, micros) = (phase.clone(), *round, *micros);
                self.lane.backdated_span(
                    SpanKind::Phase,
                    micros,
                    || phase,
                    || Some(format!("round {round}")),
                );
            }
        }
        if let Some(r) = self.inner.as_mut() {
            r.emit(event);
        }
    }
}

/// The parallel allocation driver (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ParallelDriver {
    workers: usize,
}

impl ParallelDriver {
    /// A driver using up to `workers` threads (clamped to ≥ 1; also
    /// clamped per batch to the function count).
    pub fn new(workers: usize) -> Self {
        ParallelDriver {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Allocates every function of a program in parallel with the paper's
    /// cost model. Mirrors [`crate::allocate_program`].
    ///
    /// # Errors
    ///
    /// Only a failure of the degraded fallback itself surfaces (see the
    /// module docs).
    pub fn allocate_program(
        &self,
        program: &Program,
        freq: &FrequencyInfo,
        file: RegisterFile,
        config: &AllocatorConfig,
    ) -> Result<ProgramAllocation, AllocError> {
        self.allocate_program_with(program, freq, file, config, &CostModel::paper())
    }

    /// Like [`ParallelDriver::allocate_program`] with an explicit cost
    /// model. Mirrors [`crate::allocate_program_with`].
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program`].
    pub fn allocate_program_with(
        &self,
        program: &Program,
        freq: &FrequencyInfo,
        file: RegisterFile,
        config: &AllocatorConfig,
        cost: &CostModel,
    ) -> Result<ProgramAllocation, AllocError> {
        let req = AllocRequest {
            program,
            freq,
            file,
            config,
            cost,
        };
        self.allocate_program_instrumented(&req, &mut NoopSink, &mut MetricsRegistry::disabled())
    }

    /// Like [`ParallelDriver::allocate_program_with`] (built from an
    /// [`AllocRequest`]), additionally scoring the merged allocation
    /// through the quality observatory ([`crate::quality::score_program`]
    /// under `cycles`).
    ///
    /// Scoring is a pure post-pass over the deterministically merged
    /// result, so the report is byte-identical at any worker count — the
    /// determinism oracle extends to quality scoring for free.
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program`].
    pub fn allocate_program_scored(
        &self,
        req: &AllocRequest<'_>,
        cycles: &ccra_machine::CycleModel,
    ) -> Result<(ProgramAllocation, crate::quality::QualityReport), AllocError> {
        let alloc = self.allocate_program_instrumented(
            req,
            &mut NoopSink,
            &mut MetricsRegistry::disabled(),
        )?;
        let report = crate::quality::score_program(&alloc, req.freq, &req.config.label(), cycles);
        Ok((alloc, report))
    }

    /// Like [`ParallelDriver::allocate_program_with`], emitting telemetry
    /// through `sink` and aggregating into `metrics`. Mirrors
    /// [`crate::allocate_program_instrumented`]: the merged event stream
    /// (wall-clock normalized) and the merged counters equal the serial
    /// run's.
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program`].
    pub fn allocate_program_instrumented(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<ProgramAllocation, AllocError> {
        self.allocate_program_detailed(req, sink, metrics)
            .map(|(alloc, _)| alloc)
    }

    /// Like [`ParallelDriver::allocate_program_instrumented`], also
    /// returning the [`DriverReport`].
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program`].
    pub fn allocate_program_detailed(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
    ) -> Result<(ProgramAllocation, DriverReport), AllocError> {
        self.allocate_program_with_job(req, sink, metrics, &DefaultJob)
    }

    /// Allocates with a custom per-function [`AllocJob`]. Delegates to
    /// [`ParallelDriver::allocate_program_traced`] with a disabled
    /// collector, discarding the (empty) timeline.
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program_traced`].
    pub fn allocate_program_with_job(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
        job: &dyn AllocJob,
    ) -> Result<(ProgramAllocation, DriverReport), AllocError> {
        let collector = TimelineCollector::disabled();
        self.allocate_program_traced(req, sink, metrics, job, &collector)
            .map(|(alloc, report, _)| (alloc, report))
    }

    /// Like [`ParallelDriver::allocate_program_observed`] without a flight
    /// recorder (a disabled one is supplied), for callers that only want
    /// the timeline.
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program_observed`].
    pub fn allocate_program_traced(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
        job: &dyn AllocJob,
        collector: &TimelineCollector,
    ) -> Result<(ProgramAllocation, DriverReport, Timeline), AllocError> {
        let flight = FlightRecorder::disabled();
        self.allocate_program_observed(req, sink, metrics, job, collector, flight.view(0))
    }

    /// Like [`ParallelDriver::allocate_program_cached`] without a memo
    /// cache: every function is allocated fresh. This was the most general
    /// entry point before the cache existed; callers that don't memoize
    /// keep using it unchanged.
    ///
    /// # Errors
    ///
    /// See [`ParallelDriver::allocate_program_cached`].
    pub fn allocate_program_observed(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
        job: &dyn AllocJob,
        collector: &TimelineCollector,
        flight: FlightView<'_>,
    ) -> Result<(ProgramAllocation, DriverReport, Timeline), AllocError> {
        self.allocate_program_cached(req, sink, metrics, job, collector, flight, None)
    }

    /// The fully general entry point: allocates with a custom per-function
    /// [`AllocJob`] under a [`TimelineCollector`], a flight-recorder
    /// window, and an optional content-addressed memo cache, returning the
    /// merged driver [`Timeline`] alongside the allocation and report.
    /// Everything else on the driver delegates here.
    ///
    /// With a cache, every function is looked up before anything is
    /// scheduled: hits replay the stored rewritten body and
    /// [`FuncAllocation`] (status [`JobStatus::Ok`], no phase spans — the
    /// timeline records a [`SpanKind::CacheHit`] span instead), only
    /// misses become pool jobs, and the merge interleaves both strictly in
    /// function-id order, so output is byte-identical to a cold run at any
    /// worker count. Fresh strict results are inserted after merge;
    /// degraded results are never cached. Cache lookups happen on the
    /// calling thread, so their flight events ([`FlightKind::CacheHit`],
    /// [`FlightKind::CacheMiss`], [`FlightKind::CacheEvict`]) land on view
    /// lane 0. Per-run hit/miss/eviction counts drain into the
    /// [`DriverReport::scheduler`] quarantine (never the allocation
    /// metrics), and `alloc_functions_total` counts only functions
    /// actually allocated.
    ///
    /// Worker lanes are `0..workers`; the driver thread's merge span lands
    /// on lane `workers`. With a disabled collector the timeline comes
    /// back empty and [`DriverReport::scheduler`] stays empty. Flight
    /// lanes mirror timeline lanes (worker `w` records on view lane `w`);
    /// when any job degrades under an enabled recorder, the run's flight
    /// record is dumped into [`DriverReport::flight_dump`] automatically.
    ///
    /// # Errors
    ///
    /// Propagates the first (in function-id order) failure of the degraded
    /// fallback; strict-allocation failures and job panics degrade instead
    /// (see the module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate_program_cached(
        &self,
        req: &AllocRequest<'_>,
        sink: &mut dyn AllocSink,
        metrics: &mut MetricsRegistry,
        job: &dyn AllocJob,
        collector: &TimelineCollector,
        flight: FlightView<'_>,
        cache: Option<&AllocCache>,
    ) -> Result<(ProgramAllocation, DriverReport, Timeline), AllocError> {
        let start = span_start(sink);
        let prog_timer = metrics.timer();
        let sink_on = sink.enabled();
        let metrics_on = metrics.enabled();
        let program = req.program;
        let all_ids: Vec<ccra_ir::FuncId> = program.func_ids().collect();

        // Consult the memo cache before scheduling anything. `replayed`
        // and `miss_keys` are parallel to `all_ids`; only misses reach the
        // pool.
        let mut replayed: Vec<Option<(Function, FuncAllocation)>>;
        let mut miss_keys: Vec<Option<CacheKey>>;
        let mut run_hits = 0u64;
        let mut run_evictions = 0u64;
        let miss_ids: Vec<ccra_ir::FuncId>;
        if let Some(cache) = cache {
            let cfg_fp = config_fingerprint(req.config, req.cost);
            let file_fp = file_fingerprint(&req.file);
            replayed = Vec::with_capacity(all_ids.len());
            miss_keys = Vec::with_capacity(all_ids.len());
            let mut misses = Vec::new();
            for &id in &all_ids {
                let key = cache.key(
                    program.function(id),
                    req.freq.mode(),
                    req.freq.func(id),
                    cfg_fp,
                    file_fp,
                );
                match cache.get(&key) {
                    Some(entry) => {
                        flight.record(0, FlightKind::CacheHit, u64::from(id.0), 0);
                        run_hits += 1;
                        replayed.push(Some(entry));
                        miss_keys.push(None);
                    }
                    None => {
                        flight.record(0, FlightKind::CacheMiss, u64::from(id.0), 0);
                        replayed.push(None);
                        miss_keys.push(Some(key));
                        misses.push(id);
                    }
                }
            }
            miss_ids = misses;
        } else {
            replayed = vec![None; all_ids.len()];
            miss_keys = vec![None; all_ids.len()];
            miss_ids = all_ids.clone();
        }

        let (outcomes, stats, scratches) = run_jobs_observed(
            self.workers,
            &miss_ids,
            collector,
            flight,
            |index, &id, scratch| {
                let func = program.function(id);
                let tid = scratch.lane.tid();
                if scratch.lane.enabled() {
                    scratch.job_label = Some(func.name().to_string());
                }
                let ctx = JobCtx {
                    func,
                    freq: req.freq.func(id),
                    file: &req.file,
                    config: req.config,
                    cost: req.cost,
                };
                let mut recorder = sink_on.then(RecordingSink::new);
                let mut tap = PhaseTap {
                    inner: recorder.as_mut(),
                    lane: &mut scratch.lane,
                };
                let mut job_metrics = if metrics_on {
                    MetricsRegistry::new()
                } else {
                    MetricsRegistry::disabled()
                };
                let result = match job.run(&ctx, &mut tap, &mut job_metrics) {
                    Ok((body, alloc)) => Ok((body, alloc, JobStatus::Ok)),
                    Err(err) => {
                        let reason = err.to_string();
                        flight.record(tid, FlightKind::JobDegraded, index as u64, 0);
                        if tap.enabled() {
                            tap.emit(AllocEvent::Degraded(DegradedInfo {
                                func: func.name().to_string(),
                                reason: reason.clone(),
                            }));
                        }
                        degraded_allocation_instrumented(
                            func,
                            ctx.freq,
                            ctx.file,
                            ctx.cost,
                            &mut tap,
                            &mut job_metrics,
                        )
                        .map(|(body, alloc)| (body, alloc, JobStatus::Degraded { reason }))
                    }
                };
                JobReturn {
                    result,
                    events: recorder.map(|r| r.events).unwrap_or_default(),
                    metrics: job_metrics,
                }
            },
        );

        // The scheduling facts drain into the report's quarantine. A
        // cached run always gets a live registry: its cache_* counters
        // must be reportable even untraced.
        let mut scheduler = if collector.is_enabled() || cache.is_some() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let mut lanes: Vec<Vec<_>> = Vec::with_capacity(scratches.len() + 1);
        for scratch in scratches {
            scheduler.merge(&scratch.scheduler);
            lanes.push(scratch.lane.into_events());
        }
        let mut driver_lane = collector.lane(stats.workers as u32);
        let merge_span = driver_lane.start();

        // Deterministic merge: strictly in function-id order, regardless
        // of which worker finished when, interleaving cache replays with
        // fresh pool results.
        let mut rewritten = Program::new();
        let mut per_func = Vec::with_capacity(all_ids.len());
        let mut statuses = Vec::with_capacity(all_ids.len());
        let mut overhead = Overhead::zero();
        let mut fresh = miss_ids.iter().zip(outcomes);
        for (pos, &id) in all_ids.iter().enumerate() {
            let (body, alloc, status) = if let Some((body, alloc)) = replayed[pos].take() {
                driver_lane.backdated_span(
                    SpanKind::CacheHit,
                    0,
                    || program.function(id).name().to_string(),
                    || None,
                );
                (body, alloc, JobStatus::Ok)
            } else {
                let (&miss_id, outcome) = fresh.next().expect("one pool outcome per miss");
                debug_assert_eq!(miss_id, id);
                let (body, alloc, status) = match outcome {
                    JobOutcome::Completed(ret) => {
                        for event in ret.events {
                            sink.emit(event);
                        }
                        metrics.merge(&ret.metrics);
                        ret.result?
                    }
                    JobOutcome::Panicked(msg) => {
                        // The job's partial telemetry died with it; recover on
                        // the calling thread against the program-level layers.
                        let func = program.function(id);
                        let reason = format!("worker panicked: {msg}");
                        if sink.enabled() {
                            sink.emit(AllocEvent::Degraded(DegradedInfo {
                                func: func.name().to_string(),
                                reason: reason.clone(),
                            }));
                        }
                        let (body, alloc) = degraded_allocation_instrumented(
                            func,
                            req.freq.func(id),
                            &req.file,
                            req.cost,
                            sink,
                            metrics,
                        )?;
                        (body, alloc, JobStatus::Degraded { reason })
                    }
                };
                // Memoize only strict results: a degraded allocation is a
                // recovery artifact, not the pure function's value.
                if let (Some(cache), Some(key), JobStatus::Ok) = (cache, miss_keys[pos], &status) {
                    let ins = cache.insert(key, &body, &alloc);
                    if ins.evicted > 0 {
                        flight.record(0, FlightKind::CacheEvict, u64::from(id.0), ins.evicted);
                        run_evictions += ins.evicted;
                    }
                }
                (body, alloc, status)
            };
            overhead += alloc.overhead;
            rewritten.add_function(body);
            per_func.push(alloc);
            statuses.push(status);
        }
        if cache.is_some() {
            // Per-run cache traffic: scheduling facts, quarantined with
            // the rest of the scheduler registry.
            scheduler.add("cache_hits_total", run_hits);
            scheduler.add("cache_misses_total", miss_ids.len() as u64);
            scheduler.add("cache_evictions_total", run_evictions);
        }
        if let Some(main) = program.main() {
            rewritten.set_main(main);
        }
        metrics.inc("alloc_programs_total");
        metrics.observe_elapsed("program_alloc_micros", prog_timer);
        if let Some(t) = start {
            sink.emit(AllocEvent::Program(ProgramSummary {
                config: req.config.label(),
                funcs: per_func.len(),
                spill: overhead.spill,
                caller_save: overhead.caller_save,
                callee_save: overhead.callee_save,
                shuffle: overhead.shuffle,
                micros: t.elapsed().as_micros() as u64,
            }));
        }
        driver_lane.end_span(merge_span, SpanKind::Merge, || "merge".to_string());
        lanes.push(driver_lane.into_events());
        // Something degraded under an enabled recorder: snapshot the
        // flight record now, while the batch's history is still in the
        // rings.
        let flight_dump = (flight.enabled() && statuses.iter().any(JobStatus::is_degraded))
            .then(|| flight.dump_json());
        Ok((
            ProgramAllocation {
                program: rewritten,
                per_func,
                overhead,
            },
            DriverReport {
                workers: stats.workers,
                jobs_per_worker: stats.jobs_per_worker,
                steals: stats.steals,
                statuses,
                scheduler,
                flight_dump,
            },
            Timeline::merge(stats.workers, lanes),
        ))
    }
}
