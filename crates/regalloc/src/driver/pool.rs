//! A dependency-free scoped thread pool with per-worker deques and work
//! stealing.
//!
//! The pool exists for one job shape: a fixed batch of independent items,
//! each producing one result, with wildly varying per-item cost — exactly
//! what per-function register allocation looks like (the spill-everywhere
//! complexity results remind us that per-function worst cases differ by
//! orders of magnitude). Items are dealt round-robin onto per-worker
//! deques; a worker pops its own deque LIFO (newest first, for cache
//! warmth) and, when empty, steals FIFO from its neighbours (oldest first,
//! so the largest unstarted chunks migrate).
//!
//! Two properties the drivers build on:
//!
//! * **Deterministic results.** [`run_jobs`] returns outcomes indexed by
//!   item position, independent of which worker ran what and in which
//!   order. Scheduling nondeterminism is confined to [`PoolStats`].
//! * **Panic isolation.** A panicking job is caught ([`std::panic::catch_unwind`])
//!   and surfaces as [`JobOutcome::Panicked`] with the panic message; the
//!   worker and every sibling job keep running.
//!
//! With one worker (or one item) the pool runs inline on the calling
//! thread — no threads are spawned, so `workers = 1` costs only the
//! per-job `catch_unwind`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What one job produced.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// The job ran to completion.
    Completed(R),
    /// The job panicked; the payload is the panic message (or a
    /// placeholder for non-string payloads).
    Panicked(String),
}

impl<R> JobOutcome<R> {
    /// The completed result, if the job did not panic.
    pub fn completed(self) -> Option<R> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            JobOutcome::Panicked(_) => None,
        }
    }
}

/// Scheduling statistics of one [`run_jobs`] batch.
///
/// Everything here is scheduling-dependent and therefore nondeterministic
/// across runs — it must never feed into allocation results or merged
/// metrics, only into diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (clamped to the item count).
    pub workers: usize,
    /// Jobs each worker executed (sums to the item count).
    pub jobs_per_worker: Vec<u64>,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one<T, R>(job: &(impl Fn(usize, &T) -> R + Sync), index: usize, item: &T) -> JobOutcome<R> {
    match catch_unwind(AssertUnwindSafe(|| job(index, item))) {
        Ok(r) => JobOutcome::Completed(r),
        Err(payload) => JobOutcome::Panicked(panic_message(payload)),
    }
}

/// Pops work for worker `w`: its own deque first (LIFO), then a steal
/// sweep over the other workers' deques (FIFO). Returns `None` when every
/// deque is empty — jobs never enqueue new jobs, so an empty sweep means
/// the batch is drained.
fn pop_or_steal(deques: &[Mutex<VecDeque<usize>>], w: usize, steals: &AtomicU64) -> Option<usize> {
    if let Some(i) = deques[w].lock().expect("pool deque lock").pop_back() {
        return Some(i);
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = deques[victim].lock().expect("pool deque lock").pop_front() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
    }
    None
}

/// Runs `job` over every item on up to `workers` threads, returning one
/// [`JobOutcome`] per item **in item order** plus the batch's
/// [`PoolStats`].
///
/// The worker count is clamped to `[1, items.len()]`; at one worker the
/// batch runs inline on the calling thread. The outcome vector is
/// byte-for-byte independent of the worker count whenever `job` is a pure
/// function of `(index, item)`.
pub fn run_jobs<T, R, F>(workers: usize, items: &[T], job: F) -> (Vec<JobOutcome<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        let outcomes = items
            .iter()
            .enumerate()
            .map(|(i, item)| run_one(&job, i, item))
            .collect();
        return (
            outcomes,
            PoolStats {
                workers: 1,
                jobs_per_worker: vec![items.len() as u64],
                steals: 0,
            },
        );
    }

    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items.len() {
        deques[i % workers]
            .lock()
            .expect("pool deque lock")
            .push_back(i);
    }
    let steals = AtomicU64::new(0);

    let per_worker: Vec<Vec<(usize, JobOutcome<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let steals = &steals;
                let job = &job;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    while let Some(i) = pop_or_steal(deques, w, steals) {
                        done.push((i, run_one(job, i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool workers catch job panics"))
            .collect()
    });

    let jobs_per_worker = per_worker.iter().map(|v| v.len() as u64).collect();
    let mut outcomes: Vec<Option<JobOutcome<R>>> = (0..items.len()).map(|_| None).collect();
    for (i, outcome) in per_worker.into_iter().flatten() {
        debug_assert!(outcomes[i].is_none(), "job {i} ran twice");
        outcomes[i] = Some(outcome);
    }
    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| unreachable!("job {i} never ran")))
        .collect();
    (
        outcomes,
        PoolStats {
            workers,
            jobs_per_worker,
            steals: steals.into_inner(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_item_order_at_every_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 4, 8, 200] {
            let (outcomes, stats) = run_jobs(workers, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let got: Vec<u64> = outcomes
                .into_iter()
                .map(|o| o.completed().expect("no panic"))
                .collect();
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(stats.jobs_per_worker.iter().sum::<u64>(), 97);
            assert!(stats.workers <= 97);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let items: Vec<u32> = Vec::new();
        let (outcomes, stats) = run_jobs(4, &items, |_, &x| x);
        assert!(outcomes.is_empty());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let items: Vec<u32> = (0..10).collect();
        let (outcomes, _) = run_jobs(4, &items, |_, &x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x + 1
        });
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                JobOutcome::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("boom on 3"), "{msg}");
                }
                JobOutcome::Completed(r) => assert_eq!(r, i as u32 + 1),
            }
        }
    }

    #[test]
    fn uneven_jobs_all_complete() {
        // One item is ~1000x the work of the rest; stealing (or not) must
        // never change the result vector.
        let items: Vec<u64> = (0..33).collect();
        let work = |_, &x: &u64| -> u64 {
            let spins = if x == 0 { 200_000 } else { 200 };
            (0..spins).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        };
        let (serial, _) = run_jobs(1, &items, work);
        let (parallel, stats) = run_jobs(8, &items, work);
        let serial: Vec<u64> = serial.into_iter().map(|o| o.completed().unwrap()).collect();
        let parallel: Vec<u64> = parallel
            .into_iter()
            .map(|o| o.completed().unwrap())
            .collect();
        assert_eq!(serial, parallel);
        assert_eq!(stats.workers, 8);
        assert_eq!(stats.jobs_per_worker.iter().sum::<u64>(), 33);
    }
}
