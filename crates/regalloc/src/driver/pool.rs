//! A dependency-free scoped thread pool with per-worker deques and work
//! stealing.
//!
//! The pool exists for one job shape: a fixed batch of independent items,
//! each producing one result, with wildly varying per-item cost — exactly
//! what per-function register allocation looks like (the spill-everywhere
//! complexity results remind us that per-function worst cases differ by
//! orders of magnitude). Items are dealt round-robin onto per-worker
//! deques; a worker pops its own deque LIFO (newest first, for cache
//! warmth) and, when empty, steals FIFO from its neighbours (oldest first,
//! so the largest unstarted chunks migrate).
//!
//! Two properties the drivers build on:
//!
//! * **Deterministic results.** [`run_jobs`] returns outcomes indexed by
//!   item position, independent of which worker ran what and in which
//!   order. Scheduling nondeterminism is confined to [`PoolStats`] (and,
//!   when observing, to [`WorkerScratch`]).
//! * **Panic isolation.** A panicking job is caught ([`std::panic::catch_unwind`])
//!   and surfaces as [`JobOutcome::Panicked`] with the panic message; the
//!   worker and every sibling job keep running.
//!
//! With one worker (or one item) the pool runs inline on the calling
//! thread — no threads are spawned, so `workers = 1` costs only the
//! per-job `catch_unwind`.
//!
//! # Observation
//!
//! [`run_jobs_observed`] is the same scheduler with a telemetry tap: each
//! worker owns a [`WorkerScratch`] — a timeline [`Lane`] plus a
//! scheduler-side [`MetricsRegistry`] shard — written with zero
//! cross-thread contention and merged by the caller after the pool joins.
//! [`run_jobs`] delegates to it with a disabled collector, so the
//! unobserved path stays one branch per event site. The pool never parks:
//! a worker that runs out of local work sweeps the other deques and exits
//! when the sweep comes up empty, so "idle" spans measure work-search
//! (steal-sweep and final-drain) time, not blocking.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::flightrec::{FlightKind, FlightRecorder, FlightView};
use super::timeline::{InstantKind, Lane, SpanKind, TimelineCollector};
use crate::metrics::MetricsRegistry;

/// Scheduler counter: jobs taken from another worker's deque.
pub const METRIC_STEALS: &str = "driver_steals_total";
/// Scheduler counter: steal sweeps that found every deque empty.
pub const METRIC_STEAL_MISSES: &str = "driver_steal_misses_total";
/// Scheduler counter: jobs executed.
pub const METRIC_JOBS: &str = "driver_jobs_total";
/// Scheduler gauge: highest own-deque depth any worker observed.
pub const METRIC_QUEUE_HIGH_WATER: &str = "driver_queue_depth_high_water";
/// Scheduler histogram: microseconds a job waited between batch start and
/// being popped by a worker.
pub const METRIC_JOB_WAIT: &str = "driver_job_wait_micros";
/// Scheduler histogram: microseconds a job spent running.
pub const METRIC_JOB_RUN: &str = "driver_job_run_micros";

/// What one job produced.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// The job ran to completion.
    Completed(R),
    /// The job panicked; the payload is the panic message (or a
    /// placeholder for non-string payloads).
    Panicked(String),
}

impl<R> JobOutcome<R> {
    /// The completed result, if the job did not panic.
    pub fn completed(self) -> Option<R> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            JobOutcome::Panicked(_) => None,
        }
    }
}

/// Scheduling statistics of one [`run_jobs`] batch.
///
/// Everything here is scheduling-dependent and therefore nondeterministic
/// across runs — it must never feed into allocation results or merged
/// metrics, only into diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (clamped to the item count).
    pub workers: usize,
    /// Jobs each worker executed (sums to the item count).
    pub jobs_per_worker: Vec<u64>,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

/// One worker's private telemetry buffers, handed to the job closure and
/// returned (in worker-id order) by [`run_jobs_observed`].
///
/// Both halves follow the lane discipline: exactly one worker writes a
/// scratch, so recording never contends, and everything gates on the
/// collector's enabled flag, so the disabled path performs no timing, no
/// formatting, and no allocation.
#[derive(Debug)]
pub struct WorkerScratch {
    /// The worker's timeline lane.
    pub lane: Lane,
    /// The worker's scheduler-metrics shard (counters/histograms named by
    /// the `METRIC_*` constants in this module). Enabled iff the batch's
    /// [`TimelineCollector`] is. Callers merge shards with
    /// [`MetricsRegistry::merge`]; scheduler metrics are nondeterministic
    /// scheduling facts and must stay out of merged program metrics.
    pub scheduler: MetricsRegistry,
    /// A label the job closure may set while running; the pool names the
    /// job's timeline span with it (falling back to `"job <index>"`) and
    /// clears it between jobs.
    pub job_label: Option<String>,
}

impl WorkerScratch {
    fn new(collector: &TimelineCollector, tid: u32) -> Self {
        WorkerScratch {
            lane: collector.lane(tid),
            scheduler: if collector.is_enabled() {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::disabled()
            },
            job_label: None,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job under `catch_unwind`, recording its span (named by
/// whatever label the closure left in the scratch), its run-time histogram
/// sample, and its start/end flight-recorder events.
fn run_one<T, R>(
    job: &(impl Fn(usize, &T, &mut WorkerScratch) -> R + Sync),
    index: usize,
    item: &T,
    scratch: &mut WorkerScratch,
    flight: FlightView<'_>,
) -> JobOutcome<R> {
    scratch.job_label = None;
    let tid = scratch.lane.tid();
    flight.record(tid, FlightKind::JobStart, index as u64, 0);
    let span = scratch.lane.start();
    let timer = scratch.scheduler.timer();
    let outcome = match catch_unwind(AssertUnwindSafe(|| job(index, item, &mut *scratch))) {
        Ok(r) => JobOutcome::Completed(r),
        Err(payload) => JobOutcome::Panicked(panic_message(payload)),
    };
    scratch.scheduler.observe_elapsed(METRIC_JOB_RUN, timer);
    scratch.scheduler.inc(METRIC_JOBS);
    let label = scratch.job_label.take();
    let panicked = matches!(outcome, JobOutcome::Panicked(_));
    scratch.lane.end_span_detailed(
        span,
        SpanKind::Job,
        || label.unwrap_or_else(|| format!("job {index}")),
        || panicked.then(|| "panicked".to_string()),
    );
    let kind = if panicked {
        FlightKind::JobPanicked
    } else {
        FlightKind::JobOk
    };
    flight.record(tid, kind, index as u64, 0);
    outcome
}

/// Pops the worker's own deque (LIFO), reporting the depth left behind so
/// the caller can sample it as a counter series.
fn pop_own(deques: &[Mutex<VecDeque<usize>>], w: usize) -> (Option<usize>, usize) {
    let mut d = deques[w].lock().expect("pool deque lock");
    let popped = d.pop_back();
    (popped, d.len())
}

/// Sweeps the other workers' deques FIFO. Returns the stolen index and its
/// victim, or `None` when every deque is empty — jobs never enqueue new
/// jobs, so an empty sweep means the batch is drained.
fn steal_sweep(
    deques: &[Mutex<VecDeque<usize>>],
    w: usize,
    steals: &AtomicU64,
) -> Option<(usize, usize)> {
    let n = deques.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = deques[victim].lock().expect("pool deque lock").pop_front() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some((i, victim));
        }
    }
    None
}

/// One worker's drain loop: pop own work, steal when dry, record the
/// scheduling facts into the worker's scratch.
#[allow(clippy::too_many_arguments)]
fn drain_worker<T, R>(
    deques: &[Mutex<VecDeque<usize>>],
    w: usize,
    steals: &AtomicU64,
    batch_start: std::time::Instant,
    items: &[T],
    job: &(impl Fn(usize, &T, &mut WorkerScratch) -> R + Sync),
    scratch: &mut WorkerScratch,
    flight: FlightView<'_>,
) -> Vec<(usize, JobOutcome<R>)> {
    let worker_span = scratch.lane.start();
    let mut done = Vec::new();
    loop {
        let (own, depth) = pop_own(deques, w);
        if scratch.lane.enabled() {
            scratch
                .lane
                .counter(|| format!("queue depth w{w}"), depth as u64);
            scratch
                .scheduler
                .gauge_max(METRIC_QUEUE_HIGH_WATER, depth as f64);
        }
        let index = match own {
            Some(i) => i,
            None => {
                // Own deque dry: the time from here until we find (or fail
                // to find) work elsewhere is the worker's idle span.
                let idle = scratch.lane.start();
                let stolen = steal_sweep(deques, w, steals);
                scratch
                    .lane
                    .end_span(idle, SpanKind::Idle, || "find work".to_string());
                match stolen {
                    Some((i, victim)) => {
                        scratch.scheduler.inc(METRIC_STEALS);
                        flight.record(w as u32, FlightKind::Steal, i as u64, victim as u64);
                        scratch
                            .lane
                            .instant(InstantKind::Steal, || format!("steal <- w{victim}"));
                        i
                    }
                    None => {
                        scratch.scheduler.inc(METRIC_STEAL_MISSES);
                        flight.record(w as u32, FlightKind::StealMiss, w as u64, 0);
                        scratch
                            .lane
                            .instant(InstantKind::StealMiss, || "batch drained".to_string());
                        break;
                    }
                }
            }
        };
        if scratch.scheduler.enabled() {
            scratch
                .scheduler
                .observe(METRIC_JOB_WAIT, batch_start.elapsed().as_micros() as u64);
        }
        done.push((index, run_one(job, index, &items[index], scratch, flight)));
    }
    scratch
        .lane
        .end_span(worker_span, SpanKind::Worker, || format!("worker {w}"));
    done
}

/// Runs `job` over every item on up to `workers` threads, returning one
/// [`JobOutcome`] per item **in item order** plus the batch's
/// [`PoolStats`].
///
/// The worker count is clamped to `[1, items.len()]`; at one worker the
/// batch runs inline on the calling thread. The outcome vector is
/// byte-for-byte independent of the worker count whenever `job` is a pure
/// function of `(index, item)`.
pub fn run_jobs<T, R, F>(workers: usize, items: &[T], job: F) -> (Vec<JobOutcome<R>>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let collector = TimelineCollector::disabled();
    let flight = FlightRecorder::disabled();
    let (outcomes, stats, _) = run_jobs_observed(
        workers,
        items,
        &collector,
        flight.view(0),
        |i, item, _scratch| job(i, item),
    );
    (outcomes, stats)
}

/// [`run_jobs`] with a telemetry tap: every worker records its scheduling
/// events into a private [`WorkerScratch`] created from `collector`, and
/// the scratches come back in worker-id order for the caller to merge.
///
/// The job closure receives its worker's scratch — to set
/// [`WorkerScratch::job_label`], to record nested timeline spans on the
/// worker's lane, or to add scheduler metrics. With a
/// [`TimelineCollector::disabled`] collector every recording site reduces
/// to one branch, which is how [`run_jobs`] keeps the unobserved path
/// inside the workers=1 overhead gate.
///
/// `flight` is the batch's always-on flight-recorder window: worker `w`
/// records job start/end, panic, and steal events on view lane `w`
/// (compact events, no allocation — see [`crate::driver::flightrec`]).
/// Pass a view of a [`FlightRecorder::disabled`] recorder to opt out at
/// one branch per event.
pub fn run_jobs_observed<T, R, F>(
    workers: usize,
    items: &[T],
    collector: &TimelineCollector,
    flight: FlightView<'_>,
    job: F,
) -> (Vec<JobOutcome<R>>, PoolStats, Vec<WorkerScratch>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &mut WorkerScratch) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    let batch_start = std::time::Instant::now();
    if workers == 1 {
        let mut scratch = WorkerScratch::new(collector, 0);
        let worker_span = scratch.lane.start();
        let outcomes = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if scratch.scheduler.enabled() {
                    scratch
                        .scheduler
                        .observe(METRIC_JOB_WAIT, batch_start.elapsed().as_micros() as u64);
                    scratch
                        .scheduler
                        .gauge_max(METRIC_QUEUE_HIGH_WATER, (items.len() - 1 - i) as f64);
                }
                if scratch.lane.enabled() {
                    scratch.lane.counter(
                        || "queue depth w0".to_string(),
                        (items.len() - 1 - i) as u64,
                    );
                }
                run_one(&job, i, item, &mut scratch, flight)
            })
            .collect();
        scratch
            .lane
            .end_span(worker_span, SpanKind::Worker, || "worker 0".to_string());
        return (
            outcomes,
            PoolStats {
                workers: 1,
                jobs_per_worker: vec![items.len() as u64],
                steals: 0,
            },
            vec![scratch],
        );
    }

    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..items.len() {
        deques[i % workers]
            .lock()
            .expect("pool deque lock")
            .push_back(i);
    }
    let steals = AtomicU64::new(0);

    type WorkerDone<R> = (Vec<(usize, JobOutcome<R>)>, WorkerScratch);
    let per_worker: Vec<WorkerDone<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let steals = &steals;
                let job = &job;
                let mut scratch = WorkerScratch::new(collector, w as u32);
                scope.spawn(move || {
                    let done = drain_worker(
                        deques,
                        w,
                        steals,
                        batch_start,
                        items,
                        job,
                        &mut scratch,
                        flight,
                    );
                    (done, scratch)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool workers catch job panics"))
            .collect()
    });

    let jobs_per_worker = per_worker.iter().map(|(v, _)| v.len() as u64).collect();
    let mut scratches = Vec::with_capacity(workers);
    let mut outcomes: Vec<Option<JobOutcome<R>>> = (0..items.len()).map(|_| None).collect();
    for (done, scratch) in per_worker {
        scratches.push(scratch);
        for (i, outcome) in done {
            debug_assert!(outcomes[i].is_none(), "job {i} ran twice");
            outcomes[i] = Some(outcome);
        }
    }
    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| o.unwrap_or_else(|| unreachable!("job {i} never ran")))
        .collect();
    (
        outcomes,
        PoolStats {
            workers,
            jobs_per_worker,
            steals: steals.into_inner(),
        },
        scratches,
    )
}

#[cfg(test)]
mod tests {
    use super::super::timeline::{Timeline, TimelineEvent};
    use super::*;

    #[test]
    fn results_arrive_in_item_order_at_every_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 4, 8, 200] {
            let (outcomes, stats) = run_jobs(workers, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let got: Vec<u64> = outcomes
                .into_iter()
                .map(|o| o.completed().expect("no panic"))
                .collect();
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(stats.jobs_per_worker.iter().sum::<u64>(), 97);
            assert!(stats.workers <= 97);
        }
    }

    #[test]
    fn empty_batches_are_fine() {
        let items: Vec<u32> = Vec::new();
        let (outcomes, stats) = run_jobs(4, &items, |_, &x| x);
        assert!(outcomes.is_empty());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let items: Vec<u32> = (0..10).collect();
        let (outcomes, _) = run_jobs(4, &items, |_, &x| {
            if x == 3 {
                panic!("boom on {x}");
            }
            x + 1
        });
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                JobOutcome::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("boom on 3"), "{msg}");
                }
                JobOutcome::Completed(r) => assert_eq!(r, i as u32 + 1),
            }
        }
    }

    #[test]
    fn uneven_jobs_all_complete() {
        // One item is ~1000x the work of the rest; stealing (or not) must
        // never change the result vector.
        let items: Vec<u64> = (0..33).collect();
        let work = |_, &x: &u64| -> u64 {
            let spins = if x == 0 { 200_000 } else { 200 };
            (0..spins).fold(x, |acc, v| acc.wrapping_mul(31).wrapping_add(v))
        };
        let (serial, _) = run_jobs(1, &items, work);
        let (parallel, stats) = run_jobs(8, &items, work);
        let serial: Vec<u64> = serial.into_iter().map(|o| o.completed().unwrap()).collect();
        let parallel: Vec<u64> = parallel
            .into_iter()
            .map(|o| o.completed().unwrap())
            .collect();
        assert_eq!(serial, parallel);
        assert_eq!(stats.workers, 8);
        assert_eq!(stats.jobs_per_worker.iter().sum::<u64>(), 33);
    }

    #[test]
    fn disabled_collector_leaves_no_events_and_no_metrics() {
        let items: Vec<u32> = (0..16).collect();
        let collector = TimelineCollector::disabled();
        let flight = FlightRecorder::disabled();
        let (_, _, scratches) =
            run_jobs_observed(4, &items, &collector, flight.view(0), |_, &x, scratch| {
                assert!(!scratch.lane.enabled());
                x
            });
        assert_eq!(scratches.len(), 4);
        for s in scratches {
            assert!(s.lane.is_empty());
            assert!(s.scheduler.is_empty());
        }
        assert_eq!(flight.total_events(), 0);
    }

    #[test]
    fn observed_batches_record_job_spans_per_worker() {
        let items: Vec<u32> = (0..24).collect();
        let collector = TimelineCollector::enabled();
        let flight = FlightRecorder::new(4);
        let (outcomes, stats, scratches) =
            run_jobs_observed(4, &items, &collector, flight.view(0), |i, &x, scratch| {
                scratch.job_label = Some(format!("item {x}"));
                (0..500u64).fold(i as u64, |a, v| a.wrapping_add(v))
            });
        // Every job start/end landed in the flight recorder (plus however
        // many steal/miss events scheduling produced).
        assert!(flight.total_events() >= 48);
        assert_eq!(outcomes.len(), 24);
        assert_eq!(stats.workers, 4);
        assert_eq!(scratches.len(), 4);

        let mut scheduler = MetricsRegistry::new();
        for s in &scratches {
            scheduler.merge(&s.scheduler);
        }
        assert_eq!(scheduler.counter(METRIC_JOBS), 24);
        assert_eq!(
            scheduler.histogram(METRIC_JOB_RUN).map(|h| h.count()),
            Some(24)
        );
        assert_eq!(
            scheduler.histogram(METRIC_JOB_WAIT).map(|h| h.count()),
            Some(24)
        );

        let timeline = Timeline::merge(
            4,
            scratches
                .into_iter()
                .map(|s| s.lane.into_events())
                .collect(),
        );
        assert_eq!(timeline.lane_ids(), vec![0, 1, 2, 3]);
        let job_spans = timeline
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TimelineEvent::Span {
                        kind: SpanKind::Job,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(job_spans, 24);
        let labelled = timeline
            .events
            .iter()
            .any(|e| matches!(e, TimelineEvent::Span { name, .. } if name.starts_with("item ")));
        assert!(labelled, "job_label names the job span");
        let summary = timeline.summary();
        assert_eq!(summary.lanes.iter().map(|l| l.jobs).sum::<u64>(), 24);
        assert!(summary.slowest_job.is_some());
    }

    #[test]
    fn workers1_observed_records_a_single_lane() {
        let items: Vec<u32> = (0..5).collect();
        let collector = TimelineCollector::enabled();
        let flight = FlightRecorder::new(1);
        let (_, stats, scratches) =
            run_jobs_observed(1, &items, &collector, flight.view(0), |_, &x, _scratch| x);
        // The inline path records the same start/ok pairs as the pool.
        assert_eq!(flight.total_events(), 10);
        assert_eq!(stats.workers, 1);
        assert_eq!(scratches.len(), 1);
        let scheduler = &scratches[0].scheduler;
        assert_eq!(scheduler.counter(METRIC_JOBS), 5);
        assert_eq!(scheduler.counter(METRIC_STEALS), 0);
        let timeline = Timeline::merge(
            1,
            scratches
                .into_iter()
                .map(|s| s.lane.into_events())
                .collect(),
        );
        assert_eq!(timeline.lane_ids(), vec![0]);
        assert_eq!(timeline.summary().lanes[0].jobs, 5);
    }

    #[test]
    fn steals_show_up_as_instants_and_metrics() {
        // Deal everything heavy to worker 0's deque position by making one
        // item dominate: with 8 workers and 9 items, workers finishing
        // early must steal or miss, so some instant event appears.
        let items: Vec<u64> = (0..64).collect();
        let collector = TimelineCollector::enabled();
        let flight = FlightRecorder::new(8);
        let (_, stats, scratches) =
            run_jobs_observed(8, &items, &collector, flight.view(0), |_, &x, _s| {
                let spins = if x % 8 == 0 { 50_000 } else { 50 };
                (0..spins).fold(x, |a, v| a.wrapping_mul(31).wrapping_add(v))
            });
        let mut scheduler = MetricsRegistry::new();
        let mut lanes = Vec::new();
        for s in scratches {
            scheduler.merge(&s.scheduler);
            lanes.push(s.lane.into_events());
        }
        // Scheduler metrics agree with the pool's own steal count.
        assert_eq!(scheduler.counter(METRIC_STEALS), stats.steals);
        // Every worker that drained records a miss when the batch empties.
        assert!(scheduler.counter(METRIC_STEAL_MISSES) >= 1);
        let timeline = Timeline::merge(8, lanes);
        let steal_instants = timeline
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TimelineEvent::Instant {
                        kind: InstantKind::Steal,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(steal_instants, stats.steals);
    }
}
