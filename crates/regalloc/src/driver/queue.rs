//! A bounded MPMC queue with blocking backpressure, built on
//! `Mutex` + `Condvar` only.
//!
//! This is the [`crate::driver::BatchService`] front door: producers block
//! in [`BoundedQueue::push`] while the queue is at capacity (backpressure
//! instead of unbounded memory growth under heavy traffic), or take the
//! non-blocking [`BoundedQueue::try_push`] and shed load themselves.
//! Consumers block in [`BoundedQueue::pop`] until an item arrives or the
//! queue is closed *and* drained.
//!
//! Closing is one-way: after [`BoundedQueue::close`], pushes fail
//! immediately (returning the rejected item to the caller) and pops drain
//! what remains before returning `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected. The rejected item rides along so the caller
/// can retry or report it — nothing is silently dropped.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (only [`BoundedQueue::try_push`] returns
    /// this; the blocking push waits instead).
    Full(T),
    /// The queue was closed.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

/// A point-in-time snapshot of a queue's traffic counters (see
/// [`BoundedQueue::stats`]).
///
/// Counters are updated under the queue lock, so a snapshot is internally
/// consistent; they are always on — each costs one integer bump under a
/// lock the operation already holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items currently queued.
    pub depth: usize,
    /// The queue's capacity.
    pub capacity: usize,
    /// Successful pushes (blocking and non-blocking).
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Blocking pushes that found the queue at capacity and had to wait
    /// (counted once per push, not per wakeup).
    pub blocked_pushes: u64,
    /// The highest depth the queue ever reached.
    pub high_water: usize,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    pushes: u64,
    pops: u64,
    blocked_pushes: u64,
    high_water: usize,
}

impl<T> State<T> {
    fn note_push(&mut self) {
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
    }
}

/// A bounded blocking queue (see the module docs).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                pushes: 0,
                pops: 0,
                blocked_pushes: 0,
                high_water: 0,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an item, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Closed`] (with the item) if the queue is — or
    /// becomes, while waiting — closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        let mut counted_block = false;
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                state.note_push();
                self.not_empty.notify_one();
                return Ok(());
            }
            if !counted_block {
                state.blocked_pushes += 1;
                counted_block = true;
            }
            state = self.not_full.wait(state).expect("queue lock");
        }
    }

    /// Enqueues an item without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`PushError::Full`] when at capacity or
    /// [`PushError::Closed`] after [`BoundedQueue::close`], with the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.note_push();
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                state.pops += 1;
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the item whose `key` is smallest, blocking while the
    /// queue is empty. Returns `None` once the queue is closed and fully
    /// drained.
    ///
    /// This is the scheduling pop of the batch service: the key encodes
    /// (priority, deadline, estimated cost, id), so the queue doubles as
    /// a small priority queue without giving up the bounded/blocking
    /// contract. Selection scans the whole queue under the lock — O(depth)
    /// per pop, which at serving-queue capacities (tens of slots) is
    /// noise next to one allocation. Ties keep the oldest minimal item
    /// ([`Iterator::min_by_key`] returns the first minimum), so equal
    /// keys degrade gracefully to FIFO.
    pub fn pop_min_by_key<K: Ord>(&self, key: impl Fn(&T) -> K) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if !state.items.is_empty() {
                let best = state
                    .items
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, item)| key(item))
                    .map(|(i, _)| i)
                    .expect("non-empty queue has a minimum");
                let item = state.items.remove(best).expect("selected index in range");
                state.pops += 1;
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// A consistent snapshot of the queue's traffic counters.
    pub fn stats(&self) -> QueueStats {
        let state = self.state.lock().expect("queue lock");
        QueueStats {
            depth: state.items.len(),
            capacity: self.capacity,
            pushes: state.pushes,
            pops: state.pops,
            blocked_pushes: state.blocked_pushes,
            high_water: state.high_water,
        }
    }

    /// Closes the queue: wakes every blocked producer and consumer;
    /// further pushes fail, pops drain the remainder.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(3);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_reports_full_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").expect("fits");
        q.try_push("b").expect("fits");
        match q.try_push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => unreachable!("expected Full, got {other:?}"),
        }
        // Draining one slot unblocks the next try_push.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").expect("fits after a pop");
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(10).expect("fits");
        q.close();
        match q.try_push(11) {
            Err(PushError::Closed(item)) => assert_eq!(item, 11),
            other => unreachable!("expected Closed, got {other:?}"),
        }
        match q.push(12) {
            Err(PushError::Closed(item)) => assert_eq!(item, 12),
            other => unreachable!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(10), "close drains what was queued");
        assert_eq!(q.pop(), None, "then reports exhaustion");
        assert_eq!(PushError::Full(7).into_inner(), 7);
    }

    #[test]
    fn pop_min_by_key_selects_by_key_and_falls_back_to_fifo_on_ties() {
        let q = BoundedQueue::new(8);
        for item in [(1u8, 'a'), (0, 'b'), (2, 'c'), (0, 'd')] {
            q.try_push(item).expect("fits");
        }
        // Smallest key first; the two zero-keyed items come out in
        // arrival order.
        assert_eq!(q.pop_min_by_key(|&(k, _)| k), Some((0, 'b')));
        assert_eq!(q.pop_min_by_key(|&(k, _)| k), Some((0, 'd')));
        assert_eq!(q.pop_min_by_key(|&(k, _)| k), Some((1, 'a')));
        assert_eq!(q.pop_min_by_key(|&(k, _)| k), Some((2, 'c')));
        assert_eq!(q.stats().pops, 4);
    }

    #[test]
    fn pop_min_by_key_blocks_until_an_item_arrives_and_drains_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_min_by_key(|&x| x))
        };
        q.try_push(9).expect("fits");
        assert_eq!(consumer.join().expect("consumer finishes"), Some(9));
        q.try_push(5).expect("fits");
        q.close();
        assert_eq!(q.pop_min_by_key(|&x| x), Some(5), "close drains");
        assert_eq!(q.pop_min_by_key(|&x| x), None, "then reports exhaustion");
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = BoundedQueue::<u8>::new(0);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).expect("fits");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).map_err(|_| ()).expect("space opens up"))
        };
        // The producer is (very likely) blocked; popping must release it.
        assert_eq!(q.pop(), Some(0));
        producer.join().expect("producer finishes");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn stats_count_traffic_and_high_water() {
        let q = BoundedQueue::new(2);
        assert_eq!(
            q.stats(),
            QueueStats {
                capacity: 2,
                ..QueueStats::default()
            }
        );
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        let _ = q.try_push(3); // Full: not a push, not a blocked push.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).expect("fits after a pop");
        let s = q.stats();
        assert_eq!(s.depth, 2);
        assert_eq!(s.pushes, 3);
        assert_eq!(s.pops, 1);
        assert_eq!(s.blocked_pushes, 0);
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn blocking_pushes_count_once() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).expect("fits");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).map_err(|_| ()).expect("space opens up"))
        };
        // Wait until the producer has registered its blocked push, then
        // release it.
        while q.stats().blocked_pushes == 0 {
            std::thread::yield_now();
        }
        assert_eq!(q.pop(), Some(0));
        producer.join().expect("producer finishes");
        let s = q.stats();
        assert_eq!(s.blocked_pushes, 1);
        assert_eq!(s.pushes, 2);
        assert_eq!(s.high_water, 1);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(consumer.join().expect("consumer finishes"), None);
    }
}
