//! A live status endpoint for [`BatchService`]: a minimal HTTP/1.0 server
//! on `std::net::TcpListener` alone.
//!
//! The server wraps a [`BatchHandle`] and answers these `GET` routes:
//!
//! * `/healthz` — `200 text/plain`, body `ok`; `503` with a body naming
//!   the rule while any critical observatory alert is firing;
//! * `/metrics` — the service metrics plus scrape-time gauges in the
//!   Prometheus text exposition format
//!   ([`BatchHandle::metrics_text`]);
//! * `/status` — a JSON document with the live queue depth, in-flight
//!   count, per-job [`BatchStatus`], degraded-function total, the
//!   queue-wait / service / end-to-end latency quantiles, and an
//!   `admission` object (limiter window and admitted count, shed /
//!   expired / cancelled / timeout totals, per-priority e2e p50/p99)
//!   ([`BatchHandle::status_value`]);
//! * `/trace/<id>` — one request's Chrome-trace JSON
//!   ([`BatchHandle::trace_chrome_json`]; `<id>` is the submission id,
//!   with or without the `req-` prefix); `404` when the trace is gone or
//!   was never recorded;
//! * `/debug/flightrec` — the flight recorder: live rings plus retained
//!   automatic dumps ([`BatchHandle::flightrec_value`]);
//! * `/history?series=<name>&tier=<raw|ds>` — one observatory series'
//!   retained points as JSON `{ts_us, value}` pairs (`tier` defaults to
//!   `raw`; `404` without an observatory or for an unknown series);
//! * `/alerts` — observatory alert rule states plus the recent
//!   transition log (`404` without an observatory).
//!
//! Anything else is `404`; non-`GET` methods are `405`; a request head
//! larger than [`MAX_REQUEST_BYTES`] is `431`. Every response closes the
//! connection (`Connection: close`), which is all HTTP/1.0 promises
//! anyway — no keep-alive, no chunking, no TLS. That is exactly enough
//! for `curl` and a Prometheus scraper, and it keeps the server at one
//! short, auditable accept loop.
//!
//! Bind to port 0 for an ephemeral port (tests do); read the actual
//! address back with [`StatusServer::local_addr`]. Shutdown is graceful
//! and idempotent: [`StatusServer::shutdown`] (or drop) sets a stop flag,
//! wakes the accept loop with a self-connection, and joins the thread.
//!
//! [`BatchService`]: crate::driver::BatchService
//! [`BatchStatus`]: crate::driver::BatchStatus

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::driver::batch::BatchHandle;
use crate::obsv::Tier;

/// How long a connection may dribble its request before being dropped.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// The most request-head bytes (request line + headers) the server reads;
/// anything longer is answered `431` and dropped — an unbounded
/// `read_line` on an untrusted socket is an allocation amplifier.
pub const MAX_REQUEST_BYTES: u64 = 8 * 1024;

/// How much of an oversized request the server reads off the wire before
/// answering `431`. Closing a socket with unread data sends a TCP reset,
/// which can destroy the rejection response before the client reads it;
/// draining a bounded tail lets well-meaning-but-oversized clients see
/// the `431`. Past this, the reset is the answer.
const DRAIN_LIMIT: u64 = 64 * 1024;

/// The status HTTP server (see the module docs).
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `handle` on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(handle: BatchHandle, addr: &str) -> io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &handle, &stop))
        };
        Ok(StatusServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address actually bound (the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins the server
    /// thread. Called by drop too; explicit shutdown just makes the join
    /// visible in the caller.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag between connections;
        // poke it with one so it observes it now.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, handle: &BatchHandle, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A failed accept or a misbehaving client never kills the server.
        if let Ok(stream) = stream {
            let _ = serve_connection(stream, handle);
        }
    }
}

/// Reads one request, writes one response, closes.
fn serve_connection(stream: TcpStream, handle: &BatchHandle) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    // Cap the request head: past MAX_REQUEST_BYTES, read_line sees EOF.
    let mut reader = BufReader::new(stream).take(MAX_REQUEST_BYTES);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; HTTP/1.0 GETs carry no body.
    let mut truncated = !request_line.ends_with('\n');
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            truncated = truncated || reader.limit() == 0;
            break;
        }
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner().into_inner();
    if truncated {
        let mut sink = [0u8; 4096];
        let mut drained = 0u64;
        while drained < DRAIN_LIMIT {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n as u64,
            }
        }
        return respond(&mut stream, 431, "text/plain", "request too large\n");
    }

    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "bad request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    if let Some(id) = path.strip_prefix("/trace/") {
        return match parse_trace_id(id).and_then(|id| handle.trace_chrome_json(id)) {
            Some(body) => respond(&mut stream, 200, "application/json", &(body + "\n")),
            None => respond(&mut stream, 404, "text/plain", "no such trace\n"),
        };
    }
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path, ""),
    };
    if route == "/history" {
        return match handle.observatory() {
            None => respond(&mut stream, 404, "text/plain", "observatory disabled\n"),
            Some(obsv) => {
                let Some(series) = query_param(query, "series") else {
                    return respond(&mut stream, 400, "text/plain", "missing series parameter\n");
                };
                let tier = match query_param(query, "tier") {
                    None => Tier::Raw,
                    Some(t) => match Tier::parse(t) {
                        Some(t) => t,
                        None => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "tier must be raw or ds\n",
                            )
                        }
                    },
                };
                match obsv.history_value(series, tier) {
                    Some(doc) => respond(
                        &mut stream,
                        200,
                        "application/json",
                        &(doc.to_json() + "\n"),
                    ),
                    None => respond(&mut stream, 404, "text/plain", "no such series\n"),
                }
            }
        };
    }
    match route {
        "/healthz" => match handle.critical_alert() {
            Some(rule) => respond(
                &mut stream,
                503,
                "text/plain",
                &format!("critical alert firing: {rule}\n"),
            ),
            None => respond(&mut stream, 200, "text/plain", "ok\n"),
        },
        "/alerts" => match handle.observatory() {
            Some(obsv) => {
                let body = obsv.alerts_value().to_json() + "\n";
                respond(&mut stream, 200, "application/json", &body)
            }
            None => respond(&mut stream, 404, "text/plain", "observatory disabled\n"),
        },
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4",
            &handle.metrics_text(),
        ),
        "/status" => {
            let body = handle.status_value().to_json() + "\n";
            respond(&mut stream, 200, "application/json", &body)
        }
        "/debug/flightrec" => {
            let body = handle.flightrec_value().to_json() + "\n";
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Parses a `/trace/<id>` path segment: a decimal submission id, with or
/// without the `req-` prefix [`crate::driver::RequestTrace::trace_id`]
/// renders.
fn parse_trace_id(segment: &str) -> Option<u64> {
    segment.strip_prefix("req-").unwrap_or(segment).parse().ok()
}

/// Finds `key=value` in a query string. No percent-decoding — series
/// names use `:` and `_`, which travel verbatim.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::batch::{BatchConfig, BatchService};

    /// A bare-hands HTTP/1.0 client: one request, the whole response.
    fn fetch(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to status server");
        stream.write_all(request.as_bytes()).expect("write request");
        let mut response = String::new();
        io::Read::read_to_string(&mut stream, &mut response).expect("read response");
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        fetch(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"))
    }

    #[test]
    fn routes_respond_and_shutdown_joins() {
        let service = BatchService::start(BatchConfig {
            workers: 1,
            queue_capacity: 4,
            ..BatchConfig::default()
        });
        let server = StatusServer::bind(service.handle(), "127.0.0.1:0").expect("bind :0");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200"), "{metrics}");
        assert!(metrics.contains("batch_queue_depth"), "{metrics}");

        let status = get(addr, "/status");
        assert!(status.contains("application/json"), "{status}");
        let body = status
            .split("\r\n\r\n")
            .nth(1)
            .expect("response has a body");
        let value = serde::json::parse(body.trim()).expect("status body parses");
        assert!(value.get("queue_depth").is_some());
        assert!(value.get("jobs").is_some());

        assert!(get(addr, "/nope").starts_with("HTTP/1.0 404"));
        let post = fetch(addr, "POST /status HTTP/1.0\r\n\r\n");
        assert!(post.starts_with("HTTP/1.0 405"), "{post}");

        server.shutdown();
        // The port stops answering (connect may still succeed briefly on
        // some stacks, but the listener is gone once shutdown returned).
        drop(service.shutdown());
    }

    #[test]
    fn history_and_alerts_routes_serve_the_observatory() {
        use crate::obsv::{Clock, ManualClock, ObsvConfig};
        use std::sync::Arc;

        let clock = Arc::new(ManualClock::new());
        let service = BatchService::start(BatchConfig {
            workers: 1,
            obsv: Some(ObsvConfig {
                clock: clock.clone() as Arc<dyn Clock>,
                sampler_thread: false,
                ..ObsvConfig::default()
            }),
            ..BatchConfig::default()
        });
        let handle = service.handle();
        let server = StatusServer::bind(handle.clone(), "127.0.0.1:0").expect("bind :0");
        let addr = server.local_addr();

        // Before any tick: /alerts answers, /history 404s unknown series.
        let alerts = get(addr, "/alerts");
        assert!(alerts.starts_with("HTTP/1.0 200"), "{alerts}");
        assert!(alerts.contains("\"rules\""), "{alerts}");
        let missing = get(addr, "/history?series=rate:nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        assert!(get(addr, "/history").starts_with("HTTP/1.0 400"));
        assert!(get(addr, "/history?series=x&tier=weekly").starts_with("HTTP/1.0 400"));

        // One manual tick makes the derived series queryable at both tiers.
        clock.set(2_000_000);
        handle.obsv_tick();
        for (path, expect_points) in [
            ("/history?series=derived:queue_delay_slope_us_per_s", true),
            (
                "/history?series=derived:queue_delay_slope_us_per_s&tier=raw",
                true,
            ),
            // ds tier exists but has no aggregated point yet: empty array.
            (
                "/history?series=derived:queue_delay_slope_us_per_s&tier=ds",
                false,
            ),
        ] {
            let resp = get(addr, path);
            assert!(resp.starts_with("HTTP/1.0 200"), "{path}: {resp}");
            let body = resp.split("\r\n\r\n").nth(1).expect("body");
            let doc = serde::json::parse(body.trim()).expect("history parses");
            let points = match doc.get("points") {
                Some(serde::json::Value::Arr(a)) => a.len(),
                other => panic!("points array expected, got {other:?}"),
            };
            assert_eq!(points > 0, expect_points, "{path}");
        }

        server.shutdown();
        drop(service.shutdown());
    }

    #[test]
    fn healthz_goes_503_naming_the_firing_critical_rule() {
        use crate::obsv::{AlertCondition, AlertRule, Clock, ManualClock, ObsvConfig};
        use std::sync::Arc;

        let clock = Arc::new(ManualClock::new());
        // A critical rule that fires on the first tick: queue occupancy is
        // always >= 0, so `above: -1` violates immediately.
        let rule = AlertRule {
            name: "always_on_probe".to_string(),
            condition: AlertCondition::Above {
                series: "gauge:batch_queue_depth".to_string(),
                above: -1.0,
                clear_below: -2.0,
            },
            pending_us: 0,
            resolve_us: 0,
            critical: true,
        };
        let service = BatchService::start(BatchConfig {
            workers: 1,
            obsv: Some(ObsvConfig {
                clock: clock.clone() as Arc<dyn Clock>,
                sampler_thread: false,
                rules: Some(vec![rule]),
                ..ObsvConfig::default()
            }),
            ..BatchConfig::default()
        });
        let handle = service.handle();
        let server = StatusServer::bind(handle.clone(), "127.0.0.1:0").expect("bind :0");
        let addr = server.local_addr();

        assert!(
            get(addr, "/healthz").starts_with("HTTP/1.0 200"),
            "healthy before any tick"
        );
        clock.set(2_000_000);
        let fired = handle.obsv_tick();
        assert_eq!(fired.len(), 1, "probe rule fires on the first tick");
        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 503"), "{health}");
        assert!(
            health.ends_with("critical alert firing: always_on_probe\n"),
            "{health}"
        );

        // /status carries uptime and the build object.
        let status = get(addr, "/status");
        let body = status.split("\r\n\r\n").nth(1).expect("body");
        let doc = serde::json::parse(body.trim()).expect("status parses");
        assert!(doc.get("uptime_us").is_some());
        let build = doc.get("build").expect("build object");
        assert_eq!(
            build
                .get("crate_version")
                .and_then(serde::json::Value::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            build
                .get("status_schema")
                .and_then(serde::json::Value::as_i64),
            Some(crate::driver::batch::STATUS_SCHEMA_VERSION as i64)
        );

        server.shutdown();
        drop(service.shutdown());
    }

    #[test]
    fn drop_is_a_graceful_shutdown_too() {
        let service = BatchService::start(BatchConfig::default());
        let addr = {
            let server = StatusServer::bind(service.handle(), "127.0.0.1:0").expect("bind :0");
            let addr = server.local_addr();
            assert!(get(addr, "/healthz").starts_with("HTTP/1.0 200"));
            addr
        };
        // Dropped: connecting may succeed at the TCP level on a reused
        // port, but the server thread has been joined — nothing serves.
        let _ = addr;
        drop(service.shutdown());
    }
}
