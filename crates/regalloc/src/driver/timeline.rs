//! Driver timeline tracing: per-worker scheduling events on a shared
//! wall-clock, buffered lane-locally with zero cross-thread contention.
//!
//! The parallel driver made allocation fast but opaque: which worker ran
//! what, how long jobs waited, where stealing paid off, and how much time
//! a worker spent sweeping empty deques are all invisible outside the
//! quarantined [`DriverReport`]. This module records those facts as a
//! *timeline* — timestamped spans and instants per worker lane — in the
//! same discipline as [`crate::trace`] and [`crate::metrics`]:
//!
//! * **No globals.** A [`TimelineCollector`] is created by the caller and
//!   threaded into the driver; lanes ([`Lane`]) are per-worker buffers
//!   created from it, so recording never takes a lock and never shares a
//!   cache line between workers. Lanes are merged once, after the pool
//!   joins, in worker-id order.
//! * **Zero cost when disabled.** Every recording method gates on
//!   [`Lane::enabled`]; a disabled lane performs no `Instant::now()`, no
//!   formatting, and no allocation. Callers whose *inputs* are expensive
//!   (e.g. a `format!` for a span name) gate on [`Lane::enabled`]
//!   themselves, exactly like [`crate::AllocSink::enabled`] sites.
//!
//! Timestamps are microseconds since the collector's epoch (its creation
//! instant), so one driver run shares a single clock across lanes and the
//! merged timeline is directly renderable as a Chrome trace (see
//! [`crate::trace::chrometrace`]).
//!
//! The timeline is a *scheduling* artifact: it is nondeterministic across
//! runs by nature and must never feed into allocation results or the
//! merged program metrics. It rides next to [`DriverReport`], never inside
//! [`crate::ProgramAllocation`].
//!
//! [`DriverReport`]: crate::driver::DriverReport

use std::time::Instant;

/// What a timeline span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A worker thread's whole lifetime within one batch.
    Worker,
    /// One job (one function's allocation), start to finish.
    Job,
    /// One pipeline phase inside a job (tapped from
    /// [`crate::trace::PhaseSpan`] events).
    Phase,
    /// Time a worker spent looking for work (its own deque was empty).
    Idle,
    /// The driver's deterministic merge of per-job results.
    Merge,
    /// Time a batch submission sat in the submission queue before a
    /// service worker picked it up.
    Queue,
    /// A batch submission's whole service time (profiling + allocation),
    /// pop to completion.
    Service,
    /// One function's allocation replayed from the memo cache — recorded
    /// in place of the [`SpanKind::Job`]/[`SpanKind::Phase`] spans the
    /// function would have produced on a cold run.
    CacheHit,
}

impl SpanKind {
    /// The category label used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Worker => "worker",
            SpanKind::Job => "job",
            SpanKind::Phase => "phase",
            SpanKind::Idle => "idle",
            SpanKind::Merge => "merge",
            SpanKind::Queue => "queue",
            SpanKind::Service => "service",
            SpanKind::CacheHit => "cache_hit",
        }
    }
}

/// What a timeline instant marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantKind {
    /// A job was taken from another worker's deque.
    Steal,
    /// A full steal sweep found every deque empty.
    StealMiss,
    /// A batch submission's result was stored — the moment a reply became
    /// visible to the submitter.
    Reply,
}

impl InstantKind {
    /// The category label used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            InstantKind::Steal => "steal",
            InstantKind::StealMiss => "steal_miss",
            InstantKind::Reply => "reply",
        }
    }
}

/// One timeline event. Timestamps are microseconds since the collector's
/// epoch; `tid` is the lane (worker index, or one past the last worker for
/// the driver thread).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineEvent {
    /// A duration on one lane.
    Span {
        /// The lane the span belongs to.
        tid: u32,
        /// What the span covers.
        kind: SpanKind,
        /// A human-readable name (function name, phase name, …).
        name: String,
        /// Free-form detail rendered into trace `args` (e.g. `"round 2"`).
        detail: Option<String>,
        /// Start, microseconds since the epoch.
        start_us: u64,
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point event on one lane.
    Instant {
        /// The lane the instant belongs to.
        tid: u32,
        /// What the instant marks.
        kind: InstantKind,
        /// A human-readable name (e.g. `"steal <- w2"`).
        name: String,
        /// Timestamp, microseconds since the epoch.
        ts_us: u64,
    },
    /// A sampled counter value (one series per `name`).
    Counter {
        /// The lane that sampled the counter.
        tid: u32,
        /// The series name (e.g. `"queue depth w0"`).
        name: String,
        /// Timestamp, microseconds since the epoch.
        ts_us: u64,
        /// The sampled value.
        value: u64,
    },
}

impl TimelineEvent {
    /// The lane this event belongs to.
    pub fn tid(&self) -> u32 {
        match self {
            TimelineEvent::Span { tid, .. }
            | TimelineEvent::Instant { tid, .. }
            | TimelineEvent::Counter { tid, .. } => *tid,
        }
    }

    /// The event's timestamp (a span's start), microseconds since epoch.
    pub fn ts_us(&self) -> u64 {
        match self {
            TimelineEvent::Span { start_us, .. } => *start_us,
            TimelineEvent::Instant { ts_us, .. } | TimelineEvent::Counter { ts_us, .. } => *ts_us,
        }
    }
}

/// The shared clock and on/off switch of one driver run's timeline.
///
/// Create one per batch ([`TimelineCollector::enabled`] or
/// [`TimelineCollector::disabled`]) and hand per-worker [`Lane`]s out of
/// it; recording happens lane-locally, merging happens once at the end
/// ([`Timeline::merge`]).
#[derive(Debug, Clone, Copy)]
pub struct TimelineCollector {
    on: bool,
    epoch: Instant,
}

impl TimelineCollector {
    /// A collector that records.
    pub fn enabled() -> Self {
        TimelineCollector {
            on: true,
            epoch: Instant::now(),
        }
    }

    /// A recording collector whose epoch is `epoch` rather than "now" —
    /// how a request-scoped timeline starts its clock at *enqueue* time,
    /// so the queue-wait span created at pop lands at `ts = 0` and every
    /// later span reads as time-since-submission.
    pub fn enabled_since(epoch: Instant) -> Self {
        TimelineCollector { on: true, epoch }
    }

    /// A collector whose lanes drop everything at zero cost — the timeline
    /// analog of [`crate::NoopSink`].
    pub fn disabled() -> Self {
        TimelineCollector {
            on: false,
            epoch: Instant::now(),
        }
    }

    /// Whether lanes created from this collector record.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Microseconds elapsed since the collector was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// A fresh recording lane for one worker (or the driver thread).
    pub fn lane(&self, tid: u32) -> Lane {
        Lane {
            on: self.on,
            epoch: self.epoch,
            tid,
            events: Vec::new(),
        }
    }
}

/// One lane's private event buffer. `Lane` is `Send` but deliberately not
/// `Sync`: exactly one worker writes it, so recording is contention-free.
#[derive(Debug)]
pub struct Lane {
    on: bool,
    epoch: Instant,
    tid: u32,
    events: Vec<TimelineEvent>,
}

impl Lane {
    /// Whether this lane records. Call sites whose event construction is
    /// itself expensive (names built with `format!`, depth scans) must
    /// gate on this, mirroring [`crate::AllocSink::enabled`].
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// The lane id events carry.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Starts a span iff the lane records (the timeline analog of
    /// [`crate::trace::span_start`]).
    pub fn start(&self) -> Option<Instant> {
        self.on.then(Instant::now)
    }

    /// Ends a span started by [`Lane::start`].
    pub fn end_span(
        &mut self,
        start: Option<Instant>,
        kind: SpanKind,
        name: impl FnOnce() -> String,
    ) {
        self.end_span_detailed(start, kind, name, || None);
    }

    /// Ends a span started by [`Lane::start`], attaching free-form detail.
    pub fn end_span_detailed(
        &mut self,
        start: Option<Instant>,
        kind: SpanKind,
        name: impl FnOnce() -> String,
        detail: impl FnOnce() -> Option<String>,
    ) {
        let Some(t) = start else { return };
        let start_us = t.duration_since(self.epoch).as_micros() as u64;
        let dur_us = t.elapsed().as_micros() as u64;
        self.events.push(TimelineEvent::Span {
            tid: self.tid,
            kind,
            name: name(),
            detail: detail(),
            start_us,
            dur_us,
        });
    }

    /// Records a span that ends *now* and lasted `dur_us` — how
    /// [`crate::trace::PhaseSpan`] events (which carry only a duration)
    /// become child spans: the phase event is emitted right as the phase
    /// ends, so `start = now - dur` is accurate.
    pub fn backdated_span(
        &mut self,
        kind: SpanKind,
        dur_us: u64,
        name: impl FnOnce() -> String,
        detail: impl FnOnce() -> Option<String>,
    ) {
        if !self.on {
            return;
        }
        let now = self.epoch.elapsed().as_micros() as u64;
        self.events.push(TimelineEvent::Span {
            tid: self.tid,
            kind,
            name: name(),
            detail: detail(),
            start_us: now.saturating_sub(dur_us),
            dur_us,
        });
    }

    /// Records a point event.
    pub fn instant(&mut self, kind: InstantKind, name: impl FnOnce() -> String) {
        if !self.on {
            return;
        }
        self.events.push(TimelineEvent::Instant {
            tid: self.tid,
            kind,
            name: name(),
            ts_us: self.epoch.elapsed().as_micros() as u64,
        });
    }

    /// Samples a counter series.
    pub fn counter(&mut self, name: impl FnOnce() -> String, value: u64) {
        if !self.on {
            return;
        }
        self.events.push(TimelineEvent::Counter {
            tid: self.tid,
            name: name(),
            ts_us: self.epoch.elapsed().as_micros() as u64,
            value,
        });
    }

    /// The recorded events, consuming the lane.
    pub fn into_events(self) -> Vec<TimelineEvent> {
        self.events
    }

    /// How many events the lane holds.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the lane recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A merged driver timeline: every lane's events on one shared clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Worker threads the batch actually used (lane ids `0..workers`; the
    /// driver thread's lane is `workers`).
    pub workers: usize,
    /// All events, lanes concatenated in lane-id order (each lane's events
    /// stay in emission order).
    pub events: Vec<TimelineEvent>,
}

impl Timeline {
    /// An empty timeline (what a disabled collector yields).
    pub fn empty() -> Self {
        Timeline::default()
    }

    /// Merges per-worker lanes (in the order given — callers pass
    /// worker-id order) plus the driver lane into one timeline.
    pub fn merge(workers: usize, lanes: Vec<Vec<TimelineEvent>>) -> Self {
        Timeline {
            workers,
            events: lanes.into_iter().flatten().collect(),
        }
    }

    /// Whether any event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct lane ids present, sorted.
    pub fn lane_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.events.iter().map(TimelineEvent::tid).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Aggregates the per-worker busy/idle/steal breakdown and the tail
    /// latency of the slowest job.
    pub fn summary(&self) -> TimelineSummary {
        let mut lanes: Vec<LaneStats> = Vec::new();
        let mut slowest: Option<SlowestJob> = None;
        let mut end_us = 0u64;
        for e in &self.events {
            match e {
                TimelineEvent::Span {
                    tid,
                    kind,
                    name,
                    start_us,
                    dur_us,
                    ..
                } => {
                    end_us = end_us.max(start_us + dur_us);
                    let lane = lane_mut(&mut lanes, *tid);
                    match kind {
                        SpanKind::Job => {
                            lane.jobs += 1;
                            lane.busy_us += dur_us;
                            if slowest.as_ref().is_none_or(|s| *dur_us > s.dur_us) {
                                slowest = Some(SlowestJob {
                                    tid: *tid,
                                    name: name.clone(),
                                    dur_us: *dur_us,
                                });
                            }
                        }
                        SpanKind::Idle => lane.idle_us += dur_us,
                        SpanKind::Worker
                        | SpanKind::Phase
                        | SpanKind::Merge
                        | SpanKind::Queue
                        | SpanKind::Service
                        | SpanKind::CacheHit => {}
                    }
                }
                TimelineEvent::Instant {
                    tid, kind, ts_us, ..
                } => {
                    end_us = end_us.max(*ts_us);
                    let lane = lane_mut(&mut lanes, *tid);
                    match kind {
                        InstantKind::Steal => lane.steals += 1,
                        InstantKind::StealMiss => lane.steal_misses += 1,
                        InstantKind::Reply => {}
                    }
                }
                TimelineEvent::Counter { ts_us, .. } => end_us = end_us.max(*ts_us),
            }
        }
        lanes.sort_by_key(|l| l.tid);
        TimelineSummary {
            span_us: end_us,
            lanes,
            slowest_job: slowest,
        }
    }
}

fn lane_mut(lanes: &mut Vec<LaneStats>, tid: u32) -> &mut LaneStats {
    if let Some(i) = lanes.iter().position(|l| l.tid == tid) {
        &mut lanes[i]
    } else {
        lanes.push(LaneStats {
            tid,
            ..LaneStats::default()
        });
        lanes.last_mut().expect("just pushed")
    }
}

/// One lane's aggregate scheduling facts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// The lane id.
    pub tid: u32,
    /// Jobs the lane ran.
    pub jobs: u64,
    /// Microseconds spent inside job spans.
    pub busy_us: u64,
    /// Microseconds spent in idle (work-search) spans.
    pub idle_us: u64,
    /// Successful steals.
    pub steals: u64,
    /// Fully-empty steal sweeps.
    pub steal_misses: u64,
}

/// The text-summary aggregate behind `ccra-eval timeline --stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Wall-clock span of the whole timeline, microseconds.
    pub span_us: u64,
    /// Per-lane breakdown, in lane-id order.
    pub lanes: Vec<LaneStats>,
    /// The single slowest job — the batch's tail latency.
    pub slowest_job: Option<SlowestJob>,
}

/// The slowest job of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowestJob {
    /// The lane that ran it.
    pub tid: u32,
    /// The job's name (the function it allocated).
    pub name: String,
    /// Its duration, microseconds.
    pub dur_us: u64,
}

impl std::fmt::Display for TimelineSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "timeline span: {} us", self.span_us)?;
        for l in &self.lanes {
            writeln!(
                f,
                "  lane {:>2}: {:>3} job(s), busy {:>8} us, idle {:>6} us, \
                 {} steal(s), {} miss(es)",
                l.tid, l.jobs, l.busy_us, l.idle_us, l.steals, l.steal_misses
            )?;
        }
        match &self.slowest_job {
            Some(s) => write!(
                f,
                "  slowest job: {} ({} us, lane {})",
                s.name, s.dur_us, s.tid
            ),
            None => write!(f, "  slowest job: none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_lanes_record_nothing_and_never_time() {
        let tl = TimelineCollector::disabled();
        assert!(!tl.is_enabled());
        let mut lane = tl.lane(0);
        assert!(!lane.enabled());
        assert!(lane.start().is_none());
        lane.end_span(None, SpanKind::Job, || unreachable!("gated"));
        lane.backdated_span(SpanKind::Phase, 10, || unreachable!(), || unreachable!());
        lane.instant(InstantKind::Steal, || unreachable!());
        lane.counter(|| unreachable!(), 3);
        assert!(lane.is_empty());
        assert!(lane.into_events().is_empty());
    }

    #[test]
    fn spans_instants_and_counters_share_the_epoch() {
        let tl = TimelineCollector::enabled();
        let mut a = tl.lane(0);
        let mut b = tl.lane(1);
        let t = a.start();
        assert!(t.is_some());
        a.end_span_detailed(
            t,
            SpanKind::Job,
            || "f".to_string(),
            || Some("round 1".to_string()),
        );
        b.instant(InstantKind::Steal, || "steal <- w0".to_string());
        b.counter(|| "queue depth w1".to_string(), 2);
        let timeline = Timeline::merge(2, vec![a.into_events(), b.into_events()]);
        assert_eq!(timeline.events.len(), 3);
        assert_eq!(timeline.lane_ids(), vec![0, 1]);
        match &timeline.events[0] {
            TimelineEvent::Span {
                tid, kind, detail, ..
            } => {
                assert_eq!(*tid, 0);
                assert_eq!(*kind, SpanKind::Job);
                assert_eq!(detail.as_deref(), Some("round 1"));
            }
            other => unreachable!("span first, got {other:?}"),
        }
    }

    #[test]
    fn backdated_spans_end_now() {
        let tl = TimelineCollector::enabled();
        let mut lane = tl.lane(3);
        lane.backdated_span(SpanKind::Phase, 1_000_000, || "build".to_string(), || None);
        match &lane.events[0] {
            TimelineEvent::Span {
                start_us, dur_us, ..
            } => {
                assert_eq!(*dur_us, 1_000_000);
                // The epoch is recent, so a 1s-backdated span clamps to 0.
                assert_eq!(*start_us, 0);
            }
            other => unreachable!("{other:?}"),
        }
    }

    #[test]
    fn summary_aggregates_per_lane_and_finds_the_tail() {
        let events = vec![
            TimelineEvent::Span {
                tid: 0,
                kind: SpanKind::Job,
                name: "f".into(),
                detail: None,
                start_us: 0,
                dur_us: 50,
            },
            TimelineEvent::Span {
                tid: 0,
                kind: SpanKind::Idle,
                name: "steal sweep".into(),
                detail: None,
                start_us: 50,
                dur_us: 5,
            },
            TimelineEvent::Span {
                tid: 1,
                kind: SpanKind::Job,
                name: "g".into(),
                detail: None,
                start_us: 10,
                dur_us: 300,
            },
            TimelineEvent::Instant {
                tid: 1,
                kind: InstantKind::Steal,
                name: "steal <- w0".into(),
                ts_us: 8,
            },
            TimelineEvent::Counter {
                tid: 0,
                name: "queue depth w0".into(),
                ts_us: 4,
                value: 1,
            },
        ];
        let t = Timeline { workers: 2, events };
        let s = t.summary();
        assert_eq!(s.span_us, 310);
        assert_eq!(s.lanes.len(), 2);
        assert_eq!(s.lanes[0].jobs, 1);
        assert_eq!(s.lanes[0].busy_us, 50);
        assert_eq!(s.lanes[0].idle_us, 5);
        assert_eq!(s.lanes[1].steals, 1);
        let slow = s.slowest_job.as_ref().expect("a job ran");
        assert_eq!(slow.name, "g");
        assert_eq!(slow.dur_us, 300);
        let text = s.to_string();
        assert!(text.contains("slowest job: g"), "{text}");
    }

    #[test]
    fn empty_timeline_summary_is_calm() {
        let s = Timeline::empty().summary();
        assert_eq!(s.span_us, 0);
        assert!(s.lanes.is_empty());
        assert!(s.slowest_job.is_none());
        assert!(s.to_string().contains("slowest job: none"));
    }
}
